//! `nfi` — the neural fault injection command-line tool.
//!
//! ```text
//! nfi corpus list                         list the seed programs
//! nfi corpus show <name>                  print a seed program
//! nfi run --file <path>                   run a PyLite file + its test_* suite
//! nfi inject --program <name> --describe "<fault>"   one-shot injection
//! nfi session --program <name> --describe "<fault>" [--profile retry|crash] [--rounds N]
//! nfi dataset [--cap N] [--seed N] [--incidents] [--out PATH]
//! nfi serve --state-dir <dir> [--addr IP:PORT] [--lanes N]   fault injection as a service
//! nfi worker --addr IP:PORT [--token-file PATH]   remote execution node for a daemon
//! nfi store gc --state-dir <dir> [--dry-run]      prune dead store segments
//! nfi experiments [e1|e2|...|e8|all] [--quick] [--threads N]
//! nfi bench [--plans N] [--threads N] [--quick] [--out PATH]
//! ```
//!
//! Argument parsing is hand-rolled (the offline dependency set has no
//! CLI crate); every subcommand prints usage on `--help`.

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
use neural_fault_injection::core::session::run_session;
use neural_fault_injection::inject::run_suite;
use neural_fault_injection::pylite::MachineConfig;
use neural_fault_injection::rlhf::{SimulatedTester, TargetProfile};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
nfi — neural fault injection (DSN'24 reproduction)

USAGE:
  nfi corpus list
  nfi corpus show <name>
  nfi run --file <path>
  nfi inject (--program <name> | --file <path>) --describe \"<fault scenario>\"
  nfi session (--program <name> | --file <path>) --describe \"<fault scenario>\"
              [--profile retry|crash] [--rounds N]
  nfi dataset [--cap N] [--seed N] [--incidents] [--out PATH]
  nfi explore (--program <name> | --file <path>) --describe \"<fault>\" [--seeds N]
  nfi campaign plan (--program <name> | --file <path>) [--as <name>] [--seed N] [--out PATH]
  nfi campaign exec --plan PATH [--shard i/n] [--threads N] [--no-cache] [--out PATH]
  nfi campaign merge <run.jsonl>... [--out PATH]
  nfi campaign run --state-dir <dir> [--workers N] [--threads N] [--seed N] [--as <name>]
                   [--no-anchor-reuse] [--out-dir DIR] [--trace]
                   [--program <name> | --file <path> | <file>...]
  nfi serve --state-dir <dir> [--addr IP:PORT | --port N] [--workers N] [--lanes N]
            [--seed N] [--auth-token-file PATH] [--rate-limit N] [--rate-burst N]
            [--max-connections N] [--max-queue N] [--tenant-max-queued N]
            [--tenant-max-programs N] [--deadline-ms N] [--request-timeout-ms N]
            [--child-timeout-ms N] [--worker-retries N]
            [--heartbeat-timeout-ms N] [--assignment-requeues N]
            [--assignment-timeout-ms N]
            [--log-level off|error|warn|info|debug|trace]
  nfi worker --addr IP:PORT [--token <tok> | --token-file PATH] [--name <name>]
             [--threads N] [--poll-ms N]
  nfi store gc --state-dir <dir> [--dry-run]
               (--corpus | --program <name> | --file <path> | <file>...)
  nfi store inspect --state-dir <dir> [--program <name>] [--json]
  nfi experiments [e1|e2|e3|e4|e5|e6|e7|e8|all] [--quick] [--threads N]
  nfi bench [--plans N] [--threads N] [--lanes N] [--quick] [--out PATH]
";

fn main() -> ExitCode {
    // `NFI_LOG` tunes the structured-log level for every subcommand;
    // `nfi serve --log-level` can still override it later.
    nfi_telemetry::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Splits `args` into positional arguments and `--flag [value]` options.
fn parse_flags(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .map(String::as_str)
                .filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    flags.insert(name, v);
                    i += 2;
                }
                None => {
                    flags.insert(name, "true");
                    i += 1;
                }
            }
        } else {
            positional.push(a);
            i += 1;
        }
    }
    (positional, flags)
}

fn load_source(flags: &HashMap<&str, &str>) -> Result<String, String> {
    if let Some(name) = flags.get("program") {
        let program = neural_fault_injection::corpus::by_name(name)
            .ok_or_else(|| format!("unknown corpus program `{name}` (try `nfi corpus list`)"))?;
        Ok(program.source.to_string())
    } else if let Some(path) = flags.get("file") {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Err("need --program <name> or --file <path>".to_string())
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".to_string());
    };
    let rest = &args[1..];
    let (positional, flags) = parse_flags(rest);
    match command.as_str() {
        "corpus" => cmd_corpus(&positional),
        "run" => cmd_run(&flags),
        "inject" => cmd_inject(&flags),
        "session" => cmd_session(&flags),
        "dataset" => cmd_dataset(&flags),
        "explore" => cmd_explore(&flags),
        "campaign" => cmd_campaign(&positional, &flags),
        "serve" => cmd_serve(&flags),
        "worker" => cmd_worker(&flags),
        "store" => cmd_store(&positional, &flags),
        "experiments" => cmd_experiments(&positional, &flags),
        "bench" => cmd_bench(&flags),
        "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_corpus(positional: &[&str]) -> Result<(), String> {
    match positional {
        ["list"] | [] => {
            println!("{:<14} {:<16} tests  description", "name", "domain");
            for p in neural_fault_injection::corpus::all() {
                println!(
                    "{:<14} {:<16} {:<6} {}",
                    p.name,
                    p.domain,
                    p.test_names().len(),
                    p.description
                );
            }
            Ok(())
        }
        ["show", name] => {
            let p = neural_fault_injection::corpus::by_name(name)
                .ok_or_else(|| format!("unknown program `{name}`"))?;
            println!("{}", p.source);
            Ok(())
        }
        _ => Err("usage: nfi corpus [list|show <name>]".to_string()),
    }
}

fn cmd_run(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let source = load_source(flags)?;
    let module = neural_fault_injection::pylite::parse(&source).map_err(|e| e.to_string())?;
    let report = run_suite(&module, &MachineConfig::default());
    if report.tests.is_empty() {
        // No tests: just run the module body.
        let mut machine = neural_fault_injection::pylite::Machine::new(MachineConfig::default());
        let out = machine.run_module(&module).map_err(|e| e.to_string())?;
        print!("{}", out.output);
        println!("status: {:?}", out.status);
        return Ok(());
    }
    for t in &report.tests {
        println!(
            "{:<30} {}",
            t.name,
            if t.passed() { "ok" } else { "FAILED" }
        );
    }
    println!("{} passed, {} failed", report.passed(), report.failed());
    Ok(())
}

fn cmd_inject(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let source = load_source(flags)?;
    let description = flags
        .get("describe")
        .ok_or("need --describe \"<fault scenario>\"")?;
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let report = injector
        .inject(description, &source)
        .map_err(|e| e.to_string())?;
    println!(
        "spec: class={:?} target={:?} exception={:?}",
        report.spec.class, report.spec.target_function, report.spec.exception_kind
    );
    println!(
        "\npattern: {} ({} candidates considered)",
        report.fault.pattern, report.fault.n_candidates
    );
    println!("rationale: {}\n", report.fault.rationale);
    println!("{}", report.fault.snippet);
    println!("--- test outcome ---");
    for t in &report.experiment.tests {
        println!("{:<30} -> {}", t.name, t.mode);
    }
    println!(
        "overall: {}  activated: {}  detected: {}",
        report.experiment.overall, report.experiment.activated, report.experiment.detected
    );
    Ok(())
}

fn cmd_session(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let source = load_source(flags)?;
    let description = flags
        .get("describe")
        .ok_or("need --describe \"<fault scenario>\"")?;
    let rounds: usize = flags
        .get("rounds")
        .map(|v| v.parse().map_err(|_| "bad --rounds"))
        .transpose()?
        .unwrap_or(6);
    let profile = match flags.get("profile").copied().unwrap_or("retry") {
        "retry" => TargetProfile::wants_retry(),
        "crash" => TargetProfile::wants_crashes(),
        other => return Err(format!("unknown profile `{other}` (retry|crash)")),
    };
    let module = neural_fault_injection::pylite::parse(&source).map_err(|e| e.to_string())?;
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let mut tester = SimulatedTester::new(profile, 42);
    tester.noise = 0.0;
    let result = run_session(&mut injector, description, &module, &tester, rounds)
        .map_err(|e| e.to_string())?;
    for round in &result.rounds {
        println!(
            "=== round {} — {} ===",
            round.round + 1,
            round.fault.pattern
        );
        println!("{}", round.fault.snippet);
        println!(
            "rating {:.1}  accepted {}",
            round.feedback.rating, round.feedback.accepted
        );
        if let Some(c) = &round.feedback.critique {
            println!("tester: \"{c}\"");
        }
        println!();
    }
    println!(
        "{} after {} round(s)",
        if result.accepted {
            "accepted"
        } else {
            "not accepted"
        },
        result.rounds.len()
    );
    Ok(())
}

fn cmd_dataset(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let cap: usize = flags
        .get("cap")
        .map(|v| v.parse().map_err(|_| "bad --cap"))
        .transpose()?
        .unwrap_or(60);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(7);
    let mut ds = neural_fault_injection::dataset::generate(
        neural_fault_injection::corpus::all(),
        &neural_fault_injection::dataset::DatasetConfig {
            per_program_cap: cap,
            seed,
        },
    );
    if flags.contains_key("incidents") {
        for p in neural_fault_injection::corpus::all() {
            ds.records
                .extend(neural_fault_injection::dataset::incidents::incident_training_records(p));
        }
    }
    println!("generated {} records", ds.records.len());
    for (class, count) in ds.class_counts() {
        println!("  {class:<20} {count}");
    }
    if let Some(path) = flags.get("out") {
        std::fs::write(
            path,
            neural_fault_injection::dataset::jsonl::encode_all(&ds.records),
        )
        .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_explore(flags: &HashMap<&str, &str>) -> Result<(), String> {
    let source = load_source(flags)?;
    let description = flags
        .get("describe")
        .ok_or("need --describe \"<fault scenario>\"")?;
    let n_seeds: u64 = flags
        .get("seeds")
        .map(|v| v.parse().map_err(|_| "bad --seeds"))
        .transpose()?
        .unwrap_or(8);
    let module = neural_fault_injection::pylite::parse(&source).map_err(|e| e.to_string())?;
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let report = injector
        .inject_module(description, &module)
        .map_err(|e| e.to_string())?;
    println!("pattern: {}\n", report.fault.pattern);
    println!(
        "{}",
        neural_fault_injection::inject::render_diff(
            &neural_fault_injection::pylite::print_module(&module),
            &neural_fault_injection::pylite::print_module(&report.faulty_module),
            2,
        )
    );
    let seeds: Vec<u64> = (0..n_seeds).collect();
    let exploration = neural_fault_injection::inject::explore_schedules(
        &module,
        &report.faulty_module,
        &MachineConfig::default(),
        &seeds,
    );
    println!("--- schedule exploration over {n_seeds} seeds ---");
    for (seed, mode) in &exploration.per_seed {
        println!("seed {seed:<3} -> {mode}");
    }
    println!(
        "overall: {}  activation ratio: {:.2}  schedule-sensitive: {}",
        exploration.overall,
        exploration.activation_ratio(),
        exploration.schedule_sensitive()
    );
    Ok(())
}

/// The one shared `--threads` parser: every subcommand that takes the
/// flag goes through here, so they all reject `0` and non-numeric
/// values with the same error naming the flag (no per-command drift).
fn exec_config(flags: &HashMap<&str, &str>) -> Result<nfi_core::exec::ExecConfig, String> {
    match flags.get("threads") {
        Some(v) => {
            let threads: usize = v
                .parse()
                .map_err(|_| format!("--threads expects a positive integer, got `{v}`"))?;
            if threads == 0 {
                return Err("--threads must be at least 1, got `0`".to_string());
            }
            Ok(nfi_core::exec::ExecConfig::with_threads(threads))
        }
        None => Ok(nfi_core::exec::ExecConfig::default()),
    }
}

/// The one shared `--workers` parser (`campaign run` and `serve` must
/// agree): rejects `0` and non-numeric values with the same error
/// style as the `--threads` parser, defaulting to 1.
fn parse_workers(flags: &HashMap<&str, &str>) -> Result<usize, String> {
    parse_positive(flags, "workers")
}

/// The `--lanes` parser (`serve` and `bench` agree): concurrent
/// scheduler lanes, strictly positive, defaulting to 1 (the previous
/// FIFO behavior).
fn parse_lanes(flags: &HashMap<&str, &str>) -> Result<usize, String> {
    parse_positive(flags, "lanes")
}

fn parse_positive(flags: &HashMap<&str, &str>, name: &str) -> Result<usize, String> {
    flags
        .get(name)
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&w| w > 0)
                .ok_or_else(|| format!("--{name} expects a positive integer, got `{v}`"))
        })
        .transpose()
        .map(|w| w.unwrap_or(1))
}

/// Parser for the serve hardening knobs: an unsigned integer where `0`
/// (and absence) means "off"/"unbounded" — the daemon's permissive
/// default — so every limit flag reads the same way.
fn parse_limit(flags: &HashMap<&str, &str>, name: &str) -> Result<u64, String> {
    flags
        .get(name)
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--{name} expects an unsigned integer (0 = off), got `{v}`"))
        })
        .transpose()
        .map(|v| v.unwrap_or(0))
}

/// Validates a `--as <name>` program-name override. The name heads the
/// store segment and every run document, and under a serving daemon it
/// may carry a `tenant:` prefix — so colons are fine, but whitespace
/// and control characters would make the headers and logs ambiguous.
fn parse_as_name<'a>(flags: &HashMap<&str, &'a str>) -> Result<Option<&'a str>, String> {
    let Some(name) = flags.get("as").copied() else {
        return Ok(None);
    };
    if name.is_empty() || name == "true" {
        return Err("--as expects a program name".to_string());
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(format!(
            "--as name `{name}` contains whitespace or control characters"
        ));
    }
    Ok(Some(name))
}

/// The one shared listen-address parser: `--addr ip:port` (strictly a
/// socket address; port `0` binds an ephemeral port, printed at
/// startup) or `--port n` as loopback shorthand. Nonsense — a
/// portless `--addr`, `--port 0`, both flags at once — is rejected up
/// front in the `--threads` error style.
fn parse_addr(flags: &HashMap<&str, &str>) -> Result<std::net::SocketAddr, String> {
    match (flags.get("addr"), flags.get("port")) {
        (Some(_), Some(_)) => Err("--addr already carries a port; drop --port".to_string()),
        (Some(a), None) => a
            .parse()
            .map_err(|_| format!("--addr expects ip:port (e.g. 127.0.0.1:8080), got `{a}`")),
        (None, Some(p)) => {
            let port: u16 = p
                .parse()
                .ok()
                .filter(|&p| p > 0)
                .ok_or_else(|| format!("--port expects a port number 1-65535, got `{p}`"))?;
            Ok(std::net::SocketAddr::from(([127, 0, 0, 1], port)))
        }
        (None, None) => Ok(std::net::SocketAddr::from(([127, 0, 0, 1], 8080))),
    }
}

/// Writes `text` to `--out PATH` when given (announcing the path), or
/// to stdout otherwise.
fn write_doc(flags: &HashMap<&str, &str>, text: &str) -> Result<(), String> {
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// Program name for a file-path target: its stem. The one derivation
/// every campaign subcommand shares, so `plan`, `exec`, and `run` head
/// their documents with identical program names for the same file.
fn file_stem_name(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
}

/// The one shared `--seed` parser (plan and run must agree, since the
/// seed is stamped into every work unit and thus every store key).
fn parse_seed(flags: &HashMap<&str, &str>) -> Result<u64, String> {
    flags
        .get("seed")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--seed expects an integer, got `{v}`"))
        })
        .transpose()
        .map(|seed| seed.unwrap_or(MachineConfig::default().seed))
}

/// The sharded campaign workflow: `plan` enumerates once into a
/// portable JSONL spec, `exec` runs any `--shard i/n` of it (anywhere —
/// the spec carries the program source), `merge` unions shard runs back
/// into the one canonical document. Merging is associative and the
/// merged document is byte-identical to an unsharded `exec`.
fn cmd_campaign(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    use neural_fault_injection::core::service;
    use neural_fault_injection::sfi::{CampaignSpec, Shard};
    match positional.first().copied() {
        Some("plan") => {
            let source = load_source(flags)?;
            // --as overrides the derived name — the offline mirror of a
            // daemon tenant's namespaced `tenant:program`, so offline
            // parity runs can address the same store segment.
            let program = match parse_as_name(flags)? {
                Some(name) => name,
                None => flags
                    .get("program")
                    .copied()
                    .or_else(|| flags.get("file").map(|p| file_stem_name(p)))
                    .unwrap_or("campaign"),
            };
            let spec = service::plan_campaign(program, &source, parse_seed(flags)?)?;
            eprintln!("planned {} units for {program}", spec.units.len());
            write_doc(flags, &spec.encode())
        }
        Some("exec") => {
            let path = flags.get("plan").ok_or("need --plan <path>")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = CampaignSpec::decode(&text).map_err(|e| format!("{path}: {e}"))?;
            let shard = match flags.get("shard") {
                Some(s) => Shard::parse(s).map_err(|e| format!("--shard: {e}"))?,
                None => Shard::FULL,
            };
            let config = exec_config(flags)?
                .sharded(shard)
                .cached(!flags.contains_key("no-cache"));
            // A spawning daemon hands us trace context via `NFI_TRACE`;
            // participate by recording our own spans and echoing them
            // back as `NFI-SPAN` stderr lines for the parent to
            // re-anchor under its worker-child span.
            let trace = std::env::var(nfi_telemetry::trace::TRACE_ENV)
                .ok()
                .and_then(|v| nfi_telemetry::trace::parse_context_env(&v))
                .map(|(id, _parent)| nfi_telemetry::Trace::new(id));
            let ctx = trace
                .as_ref()
                .map(|t| nfi_telemetry::trace::push_context(std::sync::Arc::clone(t), 0));
            let run = {
                let _span = nfi_telemetry::Span::enter("exec");
                service::exec_spec(&spec, &MachineConfig::default(), config)?
            };
            drop(ctx);
            if let Some(t) = &trace {
                let _ = t.emit_spans(&mut std::io::stderr().lock());
            }
            eprintln!(
                "executed shard {shard}: {} of {} units",
                run.outcomes.len(),
                run.total
            );
            write_doc(flags, &run.encode())
        }
        Some("merge") => {
            let files = &positional[1..];
            if files.is_empty() {
                return Err("usage: nfi campaign merge <run.jsonl>... [--out PATH]".to_string());
            }
            let mut runs = Vec::new();
            for path in files {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                runs.push(service::ShardRun::decode(&text).map_err(|e| format!("{path}: {e}"))?);
            }
            let merged = service::merge(&runs)?;
            eprintln!(
                "merged {} run(s): {} of {} units covered",
                runs.len(),
                merged.outcomes.len(),
                merged.total
            );
            write_doc(flags, &merged.encode())
        }
        Some("run") => cmd_campaign_run(&positional[1..], flags),
        _ => Err("usage: nfi campaign [plan|exec|merge|run]".to_string()),
    }
}

/// Resolves the campaign targets: positional files, else
/// `--program`/`--file`, else the whole corpus. Shared by `campaign
/// run` (which executes them) and `store gc` (which keeps their
/// segments live), so both commands agree on what a target's program
/// name is.
fn resolve_targets(
    files: &[&str],
    flags: &HashMap<&str, &str>,
) -> Result<Vec<(String, String)>, String> {
    let mut targets: Vec<(String, String)> = Vec::new();
    if !files.is_empty() {
        for path in files {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            targets.push((file_stem_name(path).to_string(), source));
        }
    } else if flags.contains_key("program") || flags.contains_key("file") {
        let source = load_source(flags)?;
        let name = flags
            .get("program")
            .copied()
            .or_else(|| flags.get("file").map(|p| file_stem_name(p)))
            .unwrap_or("campaign");
        targets.push((name.to_string(), source));
    } else {
        for p in neural_fault_injection::corpus::all() {
            targets.push((p.name.to_string(), p.source.to_string()));
        }
    }

    // Program names key the store and the run documents; two targets
    // sharing a name would overwrite each other's documents and
    // perpetually prune each other's store segments.
    let mut seen_names = std::collections::HashSet::new();
    for (name, _) in &targets {
        if !seen_names.insert(name.as_str()) {
            return Err(format!(
                "two targets resolve to the program name `{name}`; rename one \
                 file or run them against separate state dirs"
            ));
        }
    }
    Ok(targets)
}

/// Prints the phase breakdown of one `--trace` campaign run: the span
/// tree, indented by nesting, with per-phase durations — the offline
/// twin of the daemon's `/v1/campaigns/:id/trace` endpoint.
fn print_trace(program: &str, trace: &nfi_telemetry::Trace) {
    let spans = trace.spans();
    println!("trace {} program={program}", trace.id());
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
    let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    fn print_span(spans: &[nfi_telemetry::SpanRecord], order: &[usize], at: usize, depth: usize) {
        let s = &spans[at];
        println!(
            "  {:indent$}{:<24} {:>10} us  (start +{} us)",
            "",
            s.name,
            s.dur_us,
            s.start_us,
            indent = depth * 2,
        );
        for &c in order {
            if c != at && spans[c].parent == s.id {
                print_span(spans, order, c, depth + 1);
            }
        }
    }
    for &i in &order {
        // Orphans (parent dropped past the ring bound) print as roots.
        if spans[i].parent == 0 || !known.contains(&spans[i].parent) {
            print_span(&spans, &order, i, 0);
        }
    }
    let dropped = trace.dropped();
    if dropped > 0 {
        println!("  ({dropped} span(s) dropped past the ring bound)");
    }
}

/// The incremental orchestrator: plan every target, replay unchanged
/// units from the `--state-dir` store, execute only the rest across
/// `--workers` in-process workers, merge, and persist. The merged
/// document per program lands in `--out-dir` (default
/// `<state-dir>/runs`) and is byte-identical to a from-scratch
/// unsharded `--threads 1` run — a warm re-run with unchanged sources
/// executes zero work units.
fn cmd_campaign_run(files: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    use neural_fault_injection::core::Orchestrator;
    let state_dir = flags.get("state-dir").ok_or("need --state-dir <dir>")?;
    let workers = parse_workers(flags)?;
    let orch = Orchestrator {
        workers,
        seed: parse_seed(flags)?,
        config: exec_config(flags)?,
        anchor_reuse: !flags.contains_key("no-anchor-reuse"),
        ..Orchestrator::new(state_dir)?
    };
    let mut targets = resolve_targets(files, flags)?;
    if let Some(name) = parse_as_name(flags)? {
        // Renaming only makes sense for exactly one target — with
        // several, all would collapse onto one store segment and
        // perpetually prune each other.
        let [target] = targets.as_mut_slice() else {
            return Err(format!(
                "--as {name} needs exactly one target, got {}",
                targets.len()
            ));
        };
        target.0 = name.to_string();
    }

    let out_dir = flags
        .get("out-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(state_dir).join("runs"));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;

    let want_trace = flags.contains_key("trace");
    let (mut units, mut replayed, mut executed, mut anchor_replayed) =
        (0usize, 0usize, 0usize, 0usize);
    for (name, source) in &targets {
        // `--trace` wraps each program run in its own trace so the
        // offline orchestrator produces the same phase breakdown the
        // daemon's /v1/campaigns/:id/trace endpoint would.
        let trace = want_trace.then(|| nfi_telemetry::Trace::new(nfi_telemetry::TraceId::mint()));
        let ctx = trace
            .as_ref()
            .map(|t| nfi_telemetry::trace::push_context(std::sync::Arc::clone(t), 0));
        let result = orch.run_program(name, source)?;
        drop(ctx);
        if let Some(t) = &trace {
            print_trace(name, t);
        }
        for warning in &result.store_errors {
            eprintln!("warning: {warning}");
        }
        let doc_path = out_dir.join(format!("{name}.jsonl"));
        std::fs::write(&doc_path, result.run.encode())
            .map_err(|e| format!("cannot write {}: {e}", doc_path.display()))?;
        println!(
            "run program={name} units={} replayed={} anchor_replayed={} executed={} store_errors={}",
            result.units,
            result.replayed,
            result.anchor_replayed,
            result.executed,
            result.store_errors.len(),
        );
        units += result.units;
        replayed += result.replayed;
        executed += result.executed;
        anchor_replayed += result.anchor_replayed;
    }
    println!(
        "campaign run: {} program(s), {units} units, {replayed} replayed ({anchor_replayed} via anchors), {executed} executed ({} workers)",
        targets.len(),
        workers,
    );
    Ok(())
}

/// `nfi serve`: the fault-injection-as-a-service daemon. Jobs submitted
/// over HTTP replay from the shared `--state-dir` store and stripe
/// their misses over spawned `nfi campaign exec --shard i/n` child
/// processes — served documents are byte-identical to an offline
/// `nfi campaign run --state-dir` over the same directory.
fn cmd_serve(flags: &HashMap<&str, &str>) -> Result<(), String> {
    use nfi_serve::{auth::AuthTokens, worker::WorkerMode, ServeConfig, Server};
    use std::time::Duration;
    let state_dir = flags.get("state-dir").ok_or("need --state-dir <dir>")?;
    if let Some(text) = flags.get("log-level") {
        let level = nfi_telemetry::Level::parse(text).ok_or_else(|| {
            format!("--log-level expects off|error|warn|info|debug|trace, got `{text}`")
        })?;
        nfi_telemetry::log::set_level(level);
    }
    let addr = parse_addr(flags)?;
    let workers = parse_workers(flags)?;
    let lanes = parse_lanes(flags)?;
    let auth = flags
        .get("auth-token-file")
        .map(|path| AuthTokens::load(std::path::Path::new(path)))
        .transpose()?;
    let defaults = ServeConfig::new(state_dir);
    let deadline = parse_limit(flags, "deadline-ms")?;
    let child_timeout = parse_limit(flags, "child-timeout-ms")?;
    let request_timeout = parse_limit(flags, "request-timeout-ms")?;
    let max_connections = parse_limit(flags, "max-connections")? as usize;
    let config = ServeConfig {
        workers,
        lanes,
        mode: WorkerMode::current_exe()?,
        seed: parse_seed(flags)?,
        auth,
        rate_limit: parse_limit(flags, "rate-limit")?,
        rate_burst: parse_limit(flags, "rate-burst")?,
        max_connections: if max_connections > 0 {
            max_connections
        } else {
            defaults.max_connections
        },
        max_queue: parse_limit(flags, "max-queue")? as usize,
        tenant_max_queued: parse_limit(flags, "tenant-max-queued")? as usize,
        tenant_max_programs: parse_limit(flags, "tenant-max-programs")? as usize,
        default_deadline_ms: (deadline > 0).then_some(deadline),
        request_timeout: if request_timeout > 0 {
            Duration::from_millis(request_timeout)
        } else {
            defaults.request_timeout
        },
        child_timeout: (child_timeout > 0).then(|| Duration::from_millis(child_timeout)),
        worker_retries: match flags.get("worker-retries") {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--worker-retries expects an unsigned integer, got `{v}`"))?,
            None => defaults.worker_retries,
        },
        heartbeat_timeout: match parse_limit(flags, "heartbeat-timeout-ms")? {
            0 => defaults.heartbeat_timeout,
            ms => Duration::from_millis(ms),
        },
        assignment_requeues: match flags.get("assignment-requeues") {
            Some(v) => v.parse().map_err(|_| {
                format!("--assignment-requeues expects an unsigned integer, got `{v}`")
            })?,
            None => defaults.assignment_requeues,
        },
        assignment_timeout: match parse_limit(flags, "assignment-timeout-ms")? {
            0 => defaults.assignment_timeout,
            ms => Some(Duration::from_millis(ms)),
        },
        ..defaults
    };
    let hardening = {
        let mut on = Vec::new();
        if config.auth.is_some() {
            on.push("auth".to_string());
        }
        if config.rate_limit > 0 {
            on.push(format!("{}/s rate limit", config.rate_limit));
        }
        if config.max_queue > 0 {
            on.push(format!("queue bound {}", config.max_queue));
        }
        if let Some(ms) = config.default_deadline_ms {
            on.push(format!("{ms}ms deadline"));
        }
        if let Some(t) = config.child_timeout {
            on.push(format!("{}ms child watchdog", t.as_millis()));
        }
        if on.is_empty() {
            "open (no auth, no limits)".to_string()
        } else {
            on.join(", ")
        }
    };
    let server = Server::bind(addr, config)?;
    let local = server.local_addr()?;
    println!(
        "nfi serve: listening on http://{local} (state dir {state_dir}, {lanes} lane(s), \
         {workers} process worker(s) per job; {hardening})"
    );
    println!(
        "  POST /v1/campaigns | GET /v1/campaigns/:id[/document|/trace] | GET /v1/metrics | GET /metrics"
    );
    println!("  POST /v1/workers[/:id/heartbeat|/:id/poll|/:id/result]  (nfi worker fleet)");
    server.run()
}

/// Resolves the worker's bearer token: `--token` verbatim, or the
/// first token line of `--token-file` (both a bare token and a
/// daemon-style `tenant:token` line are accepted, so ops can point the
/// worker at the same file the daemon loads).
fn worker_token(flags: &HashMap<&str, &str>) -> Result<Option<String>, String> {
    match (flags.get("token"), flags.get("token-file")) {
        (Some(_), Some(_)) => Err("give --token or --token-file, not both".to_string()),
        (Some(t), None) => Ok(Some((*t).to_string())),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read token file {path}: {e}"))?;
            let line = text
                .lines()
                .map(str::trim)
                .find(|l| !l.is_empty() && !l.starts_with('#'))
                .ok_or_else(|| format!("token file {path} has no token line"))?;
            let token = line.split_once(':').map(|(_, t)| t.trim()).unwrap_or(line);
            if token.is_empty() {
                return Err(format!("token file {path}: empty token"));
            }
            Ok(Some(token.to_string()))
        }
        (None, None) => Ok(None),
    }
}

/// Renders the body of one `POST /v1/workers/:id/result`: the header
/// line, then (for a success) the worker's re-anchored `NFI-SPAN`
/// trace lines and the shard document. Plan-decode and execution
/// failures travel in the header's `error` field so the scheduler can
/// requeue the assignment instead of waiting out the lease.
fn execute_assignment(
    assignment: u64,
    generation: u64,
    plan: &str,
    context: Option<&str>,
    config: nfi_core::exec::ExecConfig,
) -> String {
    use neural_fault_injection::core::service;
    use neural_fault_injection::sfi::CampaignSpec;
    let outcome = CampaignSpec::decode(plan)
        .map_err(|e| format!("assignment plan: {e}"))
        .and_then(|spec| {
            // The scheduler handed us the job's trace context in the
            // lease; record our spans under it (parent 0 — the
            // scheduler re-anchors the roots under its own assignment
            // span at import) and echo them back in the result body.
            let trace = context
                .and_then(nfi_telemetry::trace::parse_context_env)
                .map(|(id, _parent)| nfi_telemetry::Trace::new(id));
            let ctx = trace
                .as_ref()
                .map(|t| nfi_telemetry::trace::push_context(std::sync::Arc::clone(t), 0));
            let run = {
                let _span = nfi_telemetry::Span::enter("worker_exec");
                service::exec_spec(&spec, &MachineConfig::default(), config)
            };
            drop(ctx);
            run.map(|run| {
                let mut tail = String::new();
                if let Some(t) = &trace {
                    let mut lines = Vec::new();
                    let _ = t.emit_spans(&mut lines);
                    tail.push_str(&String::from_utf8_lossy(&lines));
                }
                tail.push_str(&run.encode());
                tail
            })
        });
    match outcome {
        Ok(tail) => format!(
            "{{\"kind\":\"worker_result\",\"assignment\":{assignment},\"generation\":{generation}}}\n{tail}"
        ),
        Err(e) => format!(
            "{{\"kind\":\"worker_result\",\"assignment\":{assignment},\"generation\":{generation},\"error\":\"{}\"}}\n",
            nfi_sfi::jsontext::escape(&e)
        ),
    }
}

/// `nfi worker`: a remote execution node for a serving daemon. The
/// worker registers with the scheduler at `--addr` (proving its
/// machine fingerprint matches — the precondition for byte-identical
/// shard documents), heartbeats in the background, and pulls
/// miss-subset assignments: decode the plan, execute it with the local
/// engine, stream the shard document back. Work-stealing falls out of
/// the pull loop — a fast worker simply polls more often. The loop
/// survives daemon restarts by re-registering whenever the daemon
/// stops recognizing it.
fn cmd_worker(flags: &HashMap<&str, &str>) -> Result<(), String> {
    use nfi_serve::client::request_with_retry;
    use nfi_sfi::jsontext::{
        escape, get_opt_str, get_opt_u64, get_str, get_u64, parse_flat_object,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    let addr = parse_addr(flags)?;
    let token = worker_token(flags)?;
    let default_name = format!("worker-{}", std::process::id());
    let name = flags.get("name").copied().unwrap_or(&default_name);
    if name.is_empty()
        || name == "true"
        || name.chars().any(|c| c.is_whitespace() || c.is_control())
    {
        return Err(format!("--name `{name}` must be a single plain word"));
    }
    let config = exec_config(flags)?;
    let poll = Duration::from_millis(match flags.get("poll-ms") {
        Some(v) => v
            .parse::<u64>()
            .ok()
            .filter(|&p| p > 0)
            .ok_or_else(|| format!("--poll-ms expects a positive integer, got `{v}`"))?,
        None => 200,
    });
    let fingerprint = MachineConfig::default().fingerprint();
    let post = |path: &str, body: &str| -> Result<(u16, String), String> {
        let reply = request_with_retry(
            addr,
            token.as_deref(),
            "POST",
            path,
            Some(body.as_bytes()),
            3,
        )?;
        Ok((reply.status, reply.text()))
    };

    println!(
        "nfi worker: {name} -> http://{addr} ({} thread(s), fingerprint {fingerprint:016x})",
        config.threads
    );
    let mut unreachable_logged = false;
    loop {
        // Register (and re-register after every staleness signal: a
        // restarted daemon answers 404, a name takeover answers 409 on
        // the old generation — both resolve to a fresh registration).
        let body = format!(
            "{{\"kind\":\"worker_register\",\"name\":\"{}\",\"fingerprint\":\"{fingerprint:016x}\"}}",
            escape(name)
        );
        let (status, text) = match post("/v1/workers", &body) {
            Ok(reply) => reply,
            Err(e) => {
                if !unreachable_logged {
                    eprintln!("nfi worker: daemon unreachable ({e}); retrying");
                    unreachable_logged = true;
                }
                std::thread::sleep(Duration::from_secs(2));
                continue;
            }
        };
        if status != 200 {
            // 409 = fingerprint mismatch, 401/404 = bad or missing
            // token: configuration errors a retry loop cannot fix.
            return Err(format!("registration refused ({status}): {}", text.trim()));
        }
        unreachable_logged = false;
        let parsed = parse_flat_object(text.trim()).and_then(|fields| {
            Ok((
                get_u64(&fields, "worker")?,
                get_u64(&fields, "generation")?,
                get_u64(&fields, "heartbeat_ms")?,
            ))
        });
        let (worker, generation, heartbeat_ms) =
            parsed.map_err(|e| format!("registration reply: {e}"))?;
        let heartbeat = Duration::from_millis(heartbeat_ms.max(10));
        println!(
            "nfi worker: registered as worker {worker} (generation {generation}, \
             heartbeat every {heartbeat_ms}ms)"
        );

        // One registration epoch: a heartbeat thread keeps the lease
        // registry warm while the main thread polls and executes. The
        // epoch ends when the daemon stops recognizing this
        // (worker, generation) — then both loops wind down and the
        // outer loop registers afresh.
        let stale = AtomicBool::new(false);
        let done = AtomicBool::new(false);
        let gen_body = format!("{{\"generation\":{generation}}}");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(heartbeat);
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    match post(&format!("/v1/workers/{worker}/heartbeat"), &gen_body) {
                        Ok((200, _)) => {}
                        Ok(_) => {
                            stale.store(true, Ordering::Relaxed);
                            break;
                        }
                        // Transient transport failure: keep beating;
                        // the poll loop owns the unreachable verdict.
                        Err(_) => {}
                    }
                }
            });
            while !stale.load(Ordering::Relaxed) {
                let (status, text) = match post(&format!("/v1/workers/{worker}/poll"), &gen_body) {
                    Ok(reply) => reply,
                    Err(_) => {
                        std::thread::sleep(poll);
                        continue;
                    }
                };
                if status != 200 {
                    stale.store(true, Ordering::Relaxed);
                    break;
                }
                let lease = parse_flat_object(text.trim()).and_then(|fields| {
                    Ok(match get_opt_u64(&fields, "assignment")? {
                        None => None,
                        Some(assignment) => Some((
                            assignment,
                            get_str(&fields, "plan")?,
                            get_opt_str(&fields, "context")?,
                        )),
                    })
                });
                match lease {
                    Ok(None) => std::thread::sleep(poll),
                    Ok(Some((assignment, plan, context))) => {
                        let result = execute_assignment(
                            assignment,
                            generation,
                            &plan,
                            context.as_deref(),
                            config,
                        );
                        match post(&format!("/v1/workers/{worker}/result"), &result) {
                            Ok((200, reply)) => println!(
                                "nfi worker: assignment {assignment} {}",
                                if reply.contains("duplicate") {
                                    "already covered (requeued elsewhere)"
                                } else {
                                    "done"
                                }
                            ),
                            Ok((status, reply)) => {
                                eprintln!(
                                    "nfi worker: result for assignment {assignment} \
                                     refused ({status}): {}",
                                    reply.trim()
                                );
                                stale.store(true, Ordering::Relaxed);
                            }
                            Err(e) => eprintln!(
                                "nfi worker: cannot deliver assignment {assignment}: {e} \
                                 (the scheduler will requeue it)"
                            ),
                        }
                    }
                    Err(e) => {
                        eprintln!("nfi worker: poll reply: {e}");
                        std::thread::sleep(poll);
                    }
                }
            }
            done.store(true, Ordering::Relaxed);
        });
        eprintln!("nfi worker: registration went stale; re-registering");
    }
}

/// `nfi store`: state-dir maintenance. `gc` prunes segments whose
/// program is not among the targets (the same target resolution as
/// `campaign run`: positional files, `--program`/`--file`, or the
/// whole corpus) plus orphaned files; `--dry-run` only lists.
fn cmd_store(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    use neural_fault_injection::core::CampaignStore;
    match positional.first().copied() {
        Some("gc") => {
            let state_dir = flags.get("state-dir").ok_or("need --state-dir <dir>")?;
            // The generic flag parser would silently consume a
            // positional target that follows a valueless flag
            // (`--corpus extra.py` swallows `extra.py`) — on a command
            // that deletes data, refuse instead of guessing.
            for flag in ["corpus", "dry-run"] {
                if let Some(value) = flags.get(flag) {
                    if *value != "true" {
                        return Err(format!(
                            "--{flag} takes no value, but `{value}` followed it; list \
                             target files before the flags"
                        ));
                    }
                }
            }
            let store = CampaignStore::open(state_dir)?;
            // The live set must be named explicitly: defaulting to the
            // built-in corpus would silently delete the segments of
            // every custom-named program (serve submissions, --file
            // runs) — destructive from a bare invocation.
            let files = &positional[1..];
            if files.is_empty()
                && !flags.contains_key("program")
                && !flags.contains_key("file")
                && !flags.contains_key("corpus")
            {
                return Err(
                    "store gc needs the live set named explicitly: positional files, \
                     --program <name> / --file <path>, or --corpus to keep only the \
                     built-in corpus programs (everything else is removed)"
                        .to_string(),
                );
            }
            let targets = resolve_targets(files, flags)?;
            let live: std::collections::HashSet<&str> =
                targets.iter().map(|(name, _)| name.as_str()).collect();
            let dry_run = flags.contains_key("dry-run");
            let report = store.gc(&live, dry_run);
            let verb = if dry_run { "would remove" } else { "removed" };
            for (seg, reason) in &report.removed {
                println!(
                    "{verb} {} ({} bytes): {reason}",
                    seg.path.display(),
                    seg.bytes
                );
            }
            for warning in &report.errors {
                eprintln!("warning: {warning}");
            }
            println!(
                "store gc: {} segment(s) {verb} ({} bytes), {} kept, {} live program(s)",
                report.removed.len(),
                report.bytes_removed(),
                report.kept,
                live.len(),
            );
            if report.errors.is_empty() {
                Ok(())
            } else {
                // Scripts rely on the exit code: a partial sweep is a
                // failure, not a warning.
                Err(format!(
                    "store gc could not remove {} segment(s); see warnings above",
                    report.errors.len()
                ))
            }
        }
        Some("inspect") => {
            let state_dir = flags.get("state-dir").ok_or("need --state-dir <dir>")?;
            let store = CampaignStore::open(state_dir)?;
            let filter = flags.get("program").copied();
            if flags.contains_key("json") {
                // The same JSON builder the daemon's trace endpoint
                // renders through, so scripts get one escaping/format
                // discipline across both surfaces.
                use nfi_telemetry::json::JsonBuf;
                let mut j = JsonBuf::new();
                j.begin_obj();
                j.field_str("state_dir", state_dir);
                let mut shown = 0u64;
                j.key("segments").begin_arr();
                for seg in store.inspect() {
                    if let Some(want) = filter {
                        if seg.info.program.as_deref() != Some(want) {
                            continue;
                        }
                    }
                    shown += 1;
                    j.begin_obj();
                    j.field_str("path", &seg.info.path.display().to_string())
                        .field_u64("bytes", seg.info.bytes);
                    match (&seg.info.program, seg.info.module_fp, seg.info.machine_fp) {
                        (Some(program), Some(module_fp), Some(machine_fp)) => {
                            j.field_str("program", program)
                                .field_str("module_fp", &format!("{module_fp:016x}"))
                                .field_str("machine_fp", &format!("{machine_fp:016x}"))
                                .field_str("format", &seg.format.to_string())
                                .field_u64("lines", seg.lines as u64);
                            j.key("anchors").begin_arr();
                            for (anchor, count) in &seg.anchors {
                                j.begin_obj();
                                j.field_str("anchor", &format!("{anchor:016x}"))
                                    .field_u64("lines", *count as u64);
                                j.end_obj();
                            }
                            j.end_arr();
                        }
                        _ => {
                            j.key("orphan").bool_val(true);
                            j.field_str(
                                "note",
                                seg.info.note.as_deref().unwrap_or("no valid store header"),
                            );
                        }
                    }
                    j.end_obj();
                }
                j.end_arr();
                j.field_u64("shown", shown);
                if let Some(p) = filter {
                    j.field_str("program_filter", p);
                }
                j.end_obj();
                println!("{}", j.finish());
                return Ok(());
            }
            let mut shown = 0usize;
            for seg in store.inspect() {
                if let Some(want) = filter {
                    if seg.info.program.as_deref() != Some(want) {
                        continue;
                    }
                }
                shown += 1;
                match (&seg.info.program, seg.info.module_fp, seg.info.machine_fp) {
                    (Some(program), Some(module_fp), Some(machine_fp)) => {
                        println!(
                            "segment {} ({} bytes)\n  program={program} module_fp={module_fp:016x} \
                             machine_fp={machine_fp:016x} format={} lines={} anchors={}",
                            seg.info.path.display(),
                            seg.info.bytes,
                            seg.format,
                            seg.lines,
                            seg.anchors.len(),
                        );
                        for (anchor, count) in &seg.anchors {
                            println!("    anchor {anchor:016x}: {count} line(s)");
                        }
                    }
                    _ => println!(
                        "orphan {} ({} bytes): {}",
                        seg.info.path.display(),
                        seg.info.bytes,
                        seg.info.note.as_deref().unwrap_or("no valid store header"),
                    ),
                }
            }
            println!(
                "store inspect: {shown} segment(s){}",
                filter
                    .map(|p| format!(" for program {p}"))
                    .unwrap_or_default()
            );
            Ok(())
        }
        _ => Err("usage: nfi store gc --state-dir <dir> [--dry-run] \
             (--corpus | --program <name> | --file <path> | <file>...)\n\
             or:    nfi store inspect --state-dir <dir> [--program <name>] [--json]"
            .to_string()),
    }
}

fn cmd_experiments(positional: &[&str], flags: &HashMap<&str, &str>) -> Result<(), String> {
    use nfi_bench::experiments::*;
    use nfi_bench::render_table;
    let quick = flags.contains_key("quick");
    let exec = exec_config(flags)?;
    let which = positional.first().copied().unwrap_or("all");
    let want = |name: &str| which == "all" || which == name;
    if want("e1") {
        let rows = run_e1_with(
            exec,
            if quick { 8 } else { 24 },
            if quick { 6 } else { 12 },
            &[1, 2],
        );
        let (h, d) = e1_table(&rows);
        println!("{}", render_table("E1: RLHF alignment", &h, &d));
    }
    if want("e2") {
        let rows = run_e2_with(exec, if quick { 24 } else { 0 });
        let (h, d) = e2_table(&rows);
        println!("{}", render_table("E2: fault-class coverage", &h, &d));
    }
    if want("e3") {
        let rows = run_e3_with(exec, if quick { 16 } else { 48 }, 6);
        let (h, d) = e3_table(&rows);
        println!("{}", render_table("E3: tester effort", &h, &d));
    }
    if want("e4") {
        let rows = run_e4(if quick { 100 } else { 500 }, 9);
        let (h, d) = e4_table(&rows);
        println!("{}", render_table("E4: representativeness", &h, &d));
    }
    if want("e5") {
        let funnel = run_e5_with(exec, if quick { 24 } else { 0 });
        let (h, d) = e5_table(&funnel);
        println!("{}", render_table("E5: injection funnel", &h, &d));
    }
    if want("e6") {
        let sizes: &[usize] = if quick {
            &[32, 128]
        } else {
            &[64, 128, 256, 512, 1024]
        };
        let rows = run_e6_with(exec, sizes, if quick { 30 } else { 100 }, 3);
        let (h, d) = e6_table(&rows);
        println!("{}", render_table("E6: fine-tuning curve", &h, &d));
    }
    if want("e7") {
        let row = run_e7_with(exec, if quick { 12 } else { 0 });
        let (h, d) = e7_table(&row);
        println!("{}", render_table("E7: throughput", &h, &d));
    }
    if want("e8") {
        let rows = run_e8_with(exec, if quick { 8 } else { 24 }, if quick { 5 } else { 10 });
        let (h, d) = e8_table(&rows);
        println!("{}", render_table("E8: ablations", &h, &d));
    }
    Ok(())
}

fn cmd_bench(flags: &HashMap<&str, &str>) -> Result<(), String> {
    use nfi_bench::throughput::{
        bench_campaign, bench_e7, bench_lm, bench_serve, bench_store, bench_vm, to_json,
    };
    let quick = flags.contains_key("quick");
    // Shared --threads parsing; ExecConfig clamps 0 to 1, so the printed
    // and recorded thread count always matches what actually ran.
    let threads = exec_config(flags)?.threads;
    let plan_cap: usize = flags
        .get("plans")
        .map(|v| v.parse().map_err(|_| "bad --plans"))
        .transpose()?
        .unwrap_or(if quick { 8 } else { 0 });

    println!("benching campaign engine ({threads} threads)...");
    let campaign = bench_campaign(plan_cap, threads);
    println!(
        "  {} plans: {:.1} plans/s sequential, {:.1} plans/s parallel ({:.2}x), reports identical: {}",
        campaign.plans,
        campaign.sequential_plans_per_s(),
        campaign.parallel_plans_per_s(),
        campaign.speedup(),
        campaign.reports_identical,
    );
    println!(
        "  warm rerun: {:.1} plans/s ({:.2}x over cold), mutant-cache hit rate {:.1}%",
        campaign.warm_plans_per_s(),
        campaign.warm_speedup(),
        campaign.mutant_cache.hit_rate() * 100.0,
    );

    println!("benching LM training kernels (threads = 1 both paths)...");
    let lm = bench_lm(if quick { 4 } else { 12 }, if quick { 2 } else { 3 });
    println!(
        "  {} tokens/epoch: {:.0} tokens/s per-example, {:.0} tokens/s batched ({:.2}x)",
        lm.tokens,
        lm.per_example_tokens_per_s(),
        lm.batched_tokens_per_s(),
        lm.speedup(),
    );

    println!("benching E7 pipeline throughput...");
    let e7 = bench_e7(if quick { 24 } else { 0 }, threads);
    println!(
        "  {} scenarios: {:.2}/s sequential, {:.2}/s parallel ({:.2}x)",
        e7.sequential.scenarios,
        e7.sequential.throughput_per_s,
        e7.parallel.throughput_per_s,
        e7.speedup(),
    );

    println!("benching VM cold path (precompiled dispatch + code cache)...");
    let vm = bench_vm(if quick { 3 } else { 0 });
    println!(
        "  {} program(s): {:.0} instrs/s precompiled; {} units: {:.1} units/s code-cold, {:.1} units/s code-warm ({:.2}x), code-cache hit rate {:.1}%",
        vm.programs,
        vm.instrs_per_s(),
        vm.units,
        vm.cold_units_per_s(),
        vm.warm_units_per_s(),
        vm.code_warm_speedup(),
        vm.code_cache.hit_rate() * 100.0,
    );

    println!("benching incremental campaign store (cold vs warm)...");
    let store = bench_store(if quick { 3 } else { 0 });
    println!(
        "  {} program(s), {} units: {:.1} units/s cold, {:.1} units/s warm replay ({:.2}x), {} of {} replayed, documents identical: {}",
        store.programs,
        store.units,
        store.cold_units_per_s(),
        store.warm_units_per_s(),
        store.warm_speedup(),
        store.warm_replayed,
        store.units,
        store.documents_identical,
    );
    println!(
        "  store_edit (one-line edit per program): {:.1} units/s ({:.2}x cold per-unit), {} anchor-replayed / {} executed of {} units, documents identical: {}",
        store.edit_units_per_s(),
        store.edit_speedup(),
        store.edit_anchor_replayed,
        store.edit_executed,
        store.edit_units,
        store.edit_documents_identical,
    );

    println!("benching the serve daemon (cold vs store-warm, process workers)...");
    let serve = bench_serve(
        if quick { 3 } else { 0 },
        parse_workers(flags)?,
        parse_lanes(flags)?,
        nfi_serve::worker::WorkerMode::current_exe()?,
    );
    println!(
        "  {:.0} requests/s; {} program(s), {} units end-to-end over {} lane(s): {:.1} units/s cold, {:.1} units/s store-warm ({:.2}x), documents identical: {}",
        serve.requests_per_s(),
        serve.programs,
        serve.units,
        serve.lanes,
        serve.cold_units_per_s(),
        serve.warm_units_per_s(),
        serve.warm_speedup(),
        serve.documents_identical,
    );
    println!(
        "  request latency p50 {} us, p99 {} us; telemetry off: {:.0} requests/s ({:.1}% tax with it on)",
        serve.request_latency.p50_micros(),
        serve.request_latency.p99_micros(),
        serve.off_requests_per_s(),
        (serve.off_requests_per_s() / serve.requests_per_s().max(1e-9) - 1.0) * 100.0,
    );
    println!(
        "  hardened: {:.0} requests/s with auth + rate limiting; {} forged tokens refused, {} submissions shed, {} worker retries",
        serve.auth_requests_per_s(),
        serve.unauthorized,
        serve.queue_shed,
        serve.retries,
    );

    let json = to_json(&campaign, &lm, &e7, &vm, &store, &serve);
    let path = flags.get("out").copied().unwrap_or("BENCH_e7.json");
    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}
