//! # neural-fault-injection
//!
//! A full Rust reproduction of **"Neural Fault Injection: Generating
//! Software Faults from Natural Language"** (Cotroneo & Liguori, DSN
//! 2024): describe a fault scenario in natural language, get executable
//! faulty code integrated into the target program, iterate with
//! reviewer feedback (RLHF), and observe the resulting failure modes.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`pylite`] | mini-Python substrate: parser, printer, deterministic VM with race/leak/overflow/hang detectors |
//! | [`corpus`] | 12 seed programs with embedded test suites |
//! | [`sfi`] | programmable fault injection (22 operators) + conventional baseline |
//! | [`nlp`] | NL fault descriptions → structured `FaultSpec` |
//! | [`neural`] | from-scratch micro NN library (MLP, n-gram LM, TF-IDF) |
//! | [`llm`] | retrieval-augmented neural fault generator |
//! | [`rlhf`] | simulated tester, reward model, policy-gradient trainer |
//! | [`inject`] | integration + test harness + failure-mode classifier |
//! | [`dataset`] | SFI-driven fine-tuning dataset factory |
//! | [`core`] | the end-to-end Fig. 1 pipeline and review session |
//!
//! ## Quick start
//!
//! ```
//! use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
//!
//! let source = "\
//! def process_transaction(details):
//!     return True
//! def test_ok():
//!     assert process_transaction({})
//! ";
//! let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
//! let report = injector.inject(
//!     "Simulate a database timeout causing an unhandled exception in \
//!      the process transaction function.",
//!     source,
//! )?;
//! println!("generated fault:\n{}", report.fault.snippet);
//! println!("failure mode: {}", report.experiment.overall);
//! # Ok::<(), neural_fault_injection::core::pipeline::PipelineError>(())
//! ```

pub use nfi_core as core;
pub use nfi_corpus as corpus;
pub use nfi_dataset as dataset;
pub use nfi_inject as inject;
pub use nfi_llm as llm;
pub use nfi_neural as neural;
pub use nfi_nlp as nlp;
pub use nfi_pylite as pylite;
pub use nfi_rlhf as rlhf;
pub use nfi_serve as serve;
pub use nfi_sfi as sfi;
