//! The §IV-1 dataset factory: sweep the corpus with the SFI tool,
//! document fault conditions + code changes, and write JSONL.
//!
//! Run with: `cargo run --example dataset_generation`

use neural_fault_injection::dataset::{generate, jsonl, DatasetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = generate(
        neural_fault_injection::corpus::all(),
        &DatasetConfig {
            per_program_cap: 60,
            seed: 7,
        },
    );
    println!("generated {} records", ds.records.len());
    println!("\nper fault class:");
    for (class, count) in ds.class_counts() {
        println!("  {class:<20} {count}");
    }
    println!("\nper operator:");
    for (op, count) in ds.operator_counts() {
        println!("  {op:<6} {count}");
    }

    let (train, eval) = ds.split(0.9, 1);
    println!("\nsplit: {} train / {} eval", train.len(), eval.len());

    let out = std::env::temp_dir().join("nfi_dataset.jsonl");
    std::fs::write(&out, jsonl::encode_all(&ds.records))?;
    println!("wrote {}", out.display());

    // Round-trip sanity.
    let back = jsonl::decode_all(&std::fs::read_to_string(&out)?).map_err(std::io::Error::other)?;
    assert_eq!(back.len(), ds.records.len());
    println!("JSONL round-trip verified");

    println!("\nsample record:\n{}", jsonl::encode(&ds.records[0]));
    Ok(())
}
