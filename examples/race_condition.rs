//! Injecting the fault the paper's intro dreams about: "introduce a race
//! condition between processes A and B when condition C is met".
//!
//! The conventional predefined fault model cannot express this request
//! (no concurrency operators); the neural pipeline synthesizes
//! unsynchronized writers and the PyLite machine's lockset detector
//! catches the race at test time.
//!
//! Run with: `cargo run --example race_condition`

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
use neural_fault_injection::sfi::Campaign;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = neural_fault_injection::corpus::by_name("kvcache").expect("corpus");
    let module = program.module()?;
    let description =
        "Introduce a race condition in cache_put: two concurrent workers update shared \
         state without holding the lock.";

    // The conventional tool cannot express this scenario.
    let conventional = Campaign::conventional(&module);
    let expressible = conventional
        .plans()
        .iter()
        .any(|p| p.class == neural_fault_injection::sfi::FaultClass::Concurrency);
    println!("conventional predefined model can express it: {expressible}");

    // The neural pipeline can.
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let report = injector.inject_module(description, &module)?;
    println!(
        "\ngenerated ({} / {}):\n{}",
        report.fault.pattern, report.fault.class, report.fault.snippet
    );
    println!("--- test outcome ---");
    for t in &report.experiment.tests {
        println!("{:<28} -> {}", t.name, t.mode);
    }
    println!("overall: {}", report.experiment.overall);
    Ok(())
}
