//! The comparative analysis the paper's §V promises: coverage, effort,
//! and representativeness of neural vs. conventional fault injection
//! (experiments E2/E3/E4 in one binary).
//!
//! Run with: `cargo run --release --example comparative_study`

use nfi_bench::experiments::{e2_table, e3_table, e4_table, run_e2, run_e3, run_e4};
use nfi_bench::render_table;

fn main() {
    let rows = run_e2(32);
    let (headers, data) = e2_table(&rows);
    println!("{}", render_table("coverage (E2)", &headers, &data));

    let rows = run_e3(16, 6);
    let (headers, data) = e3_table(&rows);
    println!("{}", render_table("tester effort (E3)", &headers, &data));

    let rows = run_e4(200, 9);
    let (headers, data) = e4_table(&rows);
    println!(
        "{}",
        render_table("representativeness (E4)", &headers, &data)
    );
}
