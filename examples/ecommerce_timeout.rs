//! The paper's running example (§III-A), end to end.
//!
//! A tester wants `process_transaction` to fail with a database timeout.
//! Round 1 generates a caught-but-mishandled TimeoutError; the tester
//! answers "introduce a retry mechanism instead of just logging the
//! error"; round 2 produces the retry variant — exactly the interaction
//! the paper walks through.
//!
//! Run with: `cargo run --example ecommerce_timeout`

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
use neural_fault_injection::core::session::run_session;
use neural_fault_injection::rlhf::{SimulatedTester, TargetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = neural_fault_injection::corpus::by_name("ecommerce").expect("corpus");
    let module = program.module()?;

    let description = "Simulate a scenario where a database transaction fails due to a \
                       timeout, causing an unhandled exception within the process \
                       transaction function.";

    println!("tester: {description}\n");

    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 42);
    tester.noise = 0.0;

    let result = run_session(&mut injector, description, &module, &tester, 8)?;
    for round in &result.rounds {
        println!(
            "=== round {} — pattern {} ===",
            round.round + 1,
            round.fault.pattern
        );
        println!("{}", round.fault.snippet);
        println!(
            "rating: {:.1}  accepted: {}",
            round.feedback.rating, round.feedback.accepted
        );
        if let Some(critique) = &round.feedback.critique {
            println!("tester: \"{critique}\"");
        }
        println!();
    }
    println!(
        "session {} after {} round(s)",
        if result.accepted {
            "converged"
        } else {
            "hit the round budget"
        },
        result.rounds.len()
    );
    Ok(())
}
