//! Quickstart: describe a fault in natural language, get executable
//! faulty code, see how the target's test suite reacts.
//!
//! Run with: `cargo run --example quickstart`

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "\
def checkout(cart):
    total = 0
    for item in cart:
        total += item
    return total

def test_checkout():
    assert checkout([1, 2, 3]) == 6
";

    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let report = injector.inject(
        "Simulate a database timeout causing an unhandled exception in checkout.",
        source,
    )?;

    println!("--- structured fault spec ---");
    println!("class      : {:?}", report.spec.class);
    println!("target     : {:?}", report.spec.target_function);
    println!("exception  : {:?}", report.spec.exception_kind);
    println!();
    println!(
        "--- generated faulty code ({} / {}) ---",
        report.fault.pattern, report.fault.class
    );
    println!("{}", report.fault.snippet);
    println!("rationale  : {}", report.fault.rationale);
    println!();
    println!("--- test outcome ---");
    for t in &report.experiment.tests {
        println!("{:<20} -> {}", t.name, t.mode);
    }
    println!("overall    : {}", report.experiment.overall);
    println!("activated  : {}", report.experiment.activated);
    println!("detected   : {}", report.experiment.detected);
    Ok(())
}
