//! RLHF fine-tuning in action: the tester's hidden preferences shape the
//! generator over feedback iterations (experiment E1 in miniature).
//!
//! Run with: `cargo run --example rlhf_training`

use neural_fault_injection::llm::{FaultLlm, LlmConfig};
use neural_fault_injection::rlhf::{RlhfConfig, RlhfTrainer, SimulatedTester, TargetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build NL scenarios over a few corpus programs.
    let mut scenarios = Vec::new();
    for name in ["ecommerce", "banking", "sessions", "jobqueue"] {
        let program = neural_fault_injection::corpus::by_name(name).expect("corpus");
        let module = program.module()?;
        let target = program.target_functions().into_iter().next().unwrap();
        let spec = neural_fault_injection::nlp::analyze(
            &format!("simulate a timeout causing an unhandled exception in {target}"),
            Some(&module),
        );
        scenarios.push((spec, module));
    }

    let mut llm = FaultLlm::untrained(LlmConfig::default());
    let tester = SimulatedTester::new(TargetProfile::wants_retry(), 7);
    let mut trainer = RlhfTrainer::new(RlhfConfig {
        iterations: 12,
        ..RlhfConfig::default()
    });
    println!("iter  mean_rating  acceptance  mean_reward  reward_acc");
    for s in trainer.run(&mut llm, &scenarios, &tester) {
        println!(
            "{:>4}  {:>11.2}  {:>10.2}  {:>11.2}  {:>10.2}",
            s.iteration, s.mean_rating, s.acceptance, s.mean_reward, s.reward_accuracy
        );
    }
    println!(
        "\npolicy weights after training: {:?}",
        llm.policy().weights()
    );
    Ok(())
}
