//! The incremental campaign store's contract, end to end: a warm
//! re-run with unchanged sources executes zero work units and emits a
//! byte-identical document; editing one program re-executes only the
//! units whose structural anchor changed, anchor-replaying the rest;
//! store corruption degrades to re-execution with an error report,
//! never a panic or a changed result.

use neural_fault_injection::core::exec::ExecConfig;
use neural_fault_injection::core::{service, Orchestrator};
use std::path::PathBuf;

fn state_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nfi-incremental-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_source(name: &str) -> String {
    neural_fault_injection::corpus::by_name(name)
        .unwrap()
        .source
        .to_string()
}

#[test]
fn warm_corpus_rerun_executes_nothing_and_matches_the_unsharded_run() {
    let dir = state_dir("warm-corpus");
    let orch = Orchestrator::new(&dir).unwrap();
    let programs = ["ecommerce", "banking"];
    for program in programs {
        let cold = orch.run_program(program, &corpus_source(program)).unwrap();
        assert_eq!(
            cold.executed, cold.units,
            "{program}: cold run executes all"
        );
    }
    for program in programs {
        let warm = orch.run_program(program, &corpus_source(program)).unwrap();
        assert_eq!(warm.executed, 0, "{program}: warm run must execute nothing");
        assert_eq!(warm.replayed, warm.units);
        // Byte-identical to a from-scratch unsharded service run.
        let spec = service::plan_campaign(program, &corpus_source(program), orch.seed).unwrap();
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(
            warm.run.encode(),
            direct.encode(),
            "{program}: warm replay diverged from a cold unsharded run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn editing_one_program_re_executes_only_its_changed_anchor_group() {
    let dir = state_dir("edit-one");
    let orch = Orchestrator::new(&dir).unwrap();
    let unchanged = "banking";
    let edited = "ecommerce";
    orch.run_program(unchanged, &corpus_source(unchanged))
        .unwrap();
    orch.run_program(edited, &corpus_source(edited)).unwrap();

    // A one-line edit: appending a fresh trailing statement changes the
    // module fingerprint and the shared top-level anchor, but leaves
    // every function-body anchor intact.
    let edited_source = format!("{}edited_marker = 1\n", corpus_source(edited));
    let untouched = orch
        .run_program(unchanged, &corpus_source(unchanged))
        .unwrap();
    let touched = orch.run_program(edited, &edited_source).unwrap();
    assert_eq!(untouched.executed, 0, "unchanged program must fully replay");
    let spec = service::plan_campaign(edited, &edited_source, orch.seed).unwrap();
    let top_level = spec
        .units
        .iter()
        .filter(|u| u.site.function.is_none())
        .count();
    assert_eq!(
        touched.executed, top_level,
        "only the edited top-level anchor group re-executes"
    );
    assert_eq!(touched.anchor_replayed, touched.units - top_level);
    assert!(
        touched.anchor_replayed > 0,
        "function units must replay across the edit"
    );
    // And the spliced document equals a from-scratch run of the edited
    // source.
    let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
    assert_eq!(touched.run.encode(), direct.encode());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_worker_incremental_run_is_byte_identical_to_single_worker() {
    let dir_one = state_dir("worker-1");
    let dir_four = state_dir("worker-4");
    let one = Orchestrator::new(&dir_one).unwrap();
    let four = Orchestrator {
        workers: 4,
        ..Orchestrator::new(&dir_four).unwrap()
    };
    let source = corpus_source("jobqueue");
    let a = one.run_program("jobqueue", &source).unwrap();
    let b = four.run_program("jobqueue", &source).unwrap();
    assert_eq!(a.run.encode(), b.run.encode());
    // Cross-warm: the four-worker store replays into a warm run that
    // still matches the single-worker document.
    let warm = four.run_program("jobqueue", &source).unwrap();
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.run.encode(), a.run.encode());
    let _ = std::fs::remove_dir_all(&dir_one);
    let _ = std::fs::remove_dir_all(&dir_four);
}

#[test]
fn corrupted_segment_lines_fall_back_to_re_execution_without_panicking() {
    let dir = state_dir("corrupt");
    let orch = Orchestrator::new(&dir).unwrap();
    let source = corpus_source("banking");
    let cold = orch.run_program("banking", &source).unwrap();
    let path = orch
        .store
        .segment_path("banking", cold.run.module_fp, orch.machine.fingerprint());

    // Corrupt three ways at once: garble a stored line's payload,
    // truncate the file mid-line, and leave a line of binary noise.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    // The outcome payload is an escaped JSON string, so its quotes
    // appear as `\"` in the raw segment text.
    assert!(lines[1].contains("\\\"applied\\\""), "unexpected layout");
    lines[1] = lines[1].replace("\\\"applied\\\"", "\\\"appl");
    let half = lines[2].len() / 2;
    lines[2].truncate(half);
    lines[3] = "\u{1}\u{2}garbage\u{3}".to_string();
    std::fs::write(&path, lines.join("\n")).unwrap();

    let repaired = orch.run_program("banking", &source).unwrap();
    assert!(
        repaired.store_errors.len() >= 3,
        "each corruption is reported: {:?}",
        repaired.store_errors
    );
    assert_eq!(repaired.executed, 3, "exactly the corrupt units re-execute");
    assert_eq!(repaired.replayed, repaired.units - 3);
    assert_eq!(
        repaired.run.encode(),
        cold.run.encode(),
        "repair must be byte-identical to the cold run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_segments_for_stale_fingerprints_are_pruned_on_save() {
    let dir = state_dir("prune");
    let orch = Orchestrator::new(&dir).unwrap();
    let source = corpus_source("ecommerce");
    let first = orch.run_program("ecommerce", &source).unwrap();
    let machine_fp = orch.machine.fingerprint();
    let old_segment = orch
        .store
        .segment_path("ecommerce", first.run.module_fp, machine_fp);
    assert!(old_segment.exists());

    let edited = format!("{source}edited_marker = 1\n");
    let second = orch.run_program("ecommerce", &edited).unwrap();
    let new_segment = orch
        .store
        .segment_path("ecommerce", second.run.module_fp, machine_fp);
    assert!(new_segment.exists());
    assert!(
        !old_segment.exists(),
        "stale segment of the edited program must be pruned"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
