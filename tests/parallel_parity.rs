//! Parallel/sequential parity: the execution engine must produce
//! bitwise-identical results for every thread count, and the batched
//! neural kernels must match the per-example reference kernels.

use neural_fault_injection::core::exec::{self, ExecConfig};
use neural_fault_injection::neural::lm::{code_tokens, LmConfig, NgramLm, BOS};
use neural_fault_injection::pylite::MachineConfig;
use neural_fault_injection::sfi::Campaign;
use nfi_bench::experiments::{run_e1_with, run_e2_with, run_e5_with, run_e7_with};

fn machine() -> MachineConfig {
    MachineConfig {
        step_budget: 200_000,
        ..MachineConfig::default()
    }
}

#[test]
fn campaign_reports_identical_across_thread_counts() {
    for program in ["ecommerce", "banking", "pipeline"] {
        let module = neural_fault_injection::corpus::by_name(program)
            .unwrap()
            .module()
            .unwrap();
        let campaign = Campaign::full(&module);
        let seq = exec::run_campaign(&campaign, &machine(), ExecConfig::sequential());
        for threads in [2, 4, 8] {
            let par = exec::run_campaign(&campaign, &machine(), ExecConfig::with_threads(threads));
            assert_eq!(
                seq.outcomes, par.outcomes,
                "{program}: plan outcomes diverged at {threads} threads"
            );
            assert_eq!(
                seq.report, par.report,
                "{program}: aggregate report diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn sampled_campaign_subset_runs_identically() {
    let module = neural_fault_injection::corpus::by_name("inventory")
        .unwrap()
        .module()
        .unwrap();
    let campaign = Campaign::full(&module);
    // Sampling hands out indices (no plan clones); execution addresses
    // the campaign's enumeration directly.
    let sample = campaign.sample_indices(10, 42);
    let seq = exec::run_campaign_indices(&campaign, &sample, &machine(), ExecConfig::sequential());
    let par =
        exec::run_campaign_indices(&campaign, &sample, &machine(), ExecConfig::with_threads(6));
    assert_eq!(seq.outcomes, par.outcomes);
    assert_eq!(seq.indices, par.indices);
    assert_eq!(seq.report.total, 10.min(campaign.plans().len()));
}

#[test]
fn e1_rows_identical_at_one_vs_many_threads() {
    let seq = run_e1_with(ExecConfig::sequential(), 8, 3, &[1, 2, 3]);
    let par = run_e1_with(ExecConfig::with_threads(8), 8, 3, &[1, 2, 3]);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.iteration, b.iteration);
        assert!(
            (a.mean_rating - b.mean_rating).abs() == 0.0,
            "mean_rating diverged"
        );
        assert!(
            (a.acceptance - b.acceptance).abs() == 0.0,
            "acceptance diverged"
        );
        assert!(
            (a.mean_reward - b.mean_reward).abs() == 0.0,
            "mean_reward diverged"
        );
    }
}

#[test]
fn e2_and_e5_counts_identical_across_thread_counts() {
    let seq2 = run_e2_with(ExecConfig::sequential(), 16);
    let par2 = run_e2_with(ExecConfig::with_threads(8), 16);
    assert_eq!(seq2.len(), par2.len());
    for (a, b) in seq2.iter().zip(par2.iter()) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.scenarios, b.scenarios);
        assert_eq!(a.neural_expressible, b.neural_expressible);
        assert_eq!(a.neural_activated, b.neural_activated);
        assert_eq!(a.conventional_expressible, b.conventional_expressible);
    }

    let seq5 = run_e5_with(ExecConfig::sequential(), 16);
    let par5 = run_e5_with(ExecConfig::with_threads(8), 16);
    assert_eq!(seq5.generated, par5.generated);
    assert_eq!(seq5.parsed, par5.parsed);
    assert_eq!(seq5.integrated, par5.integrated);
    assert_eq!(seq5.activated, par5.activated);
    assert_eq!(seq5.detected, par5.detected);
    assert_eq!(seq5.modes, par5.modes);
}

#[test]
fn e7_scenario_outcomes_identical_across_thread_counts() {
    // Timings vary with load; the measured scenario set must not.
    let seq = run_e7_with(ExecConfig::sequential(), 12);
    let par = run_e7_with(ExecConfig::with_threads(8), 12);
    assert_eq!(seq.scenarios, par.scenarios);
    assert!(par.throughput_per_s > 0.0);
}

#[test]
fn batched_lm_gradients_match_per_example_gradients() {
    // Train corpus: real corpus sources tokenized.
    let corpus: Vec<Vec<String>> = neural_fault_injection::corpus::all()
        .iter()
        .take(3)
        .map(|p| code_tokens(p.source))
        .collect();
    let lm = NgramLm::new(&corpus, LmConfig::default());
    let ids = lm.encode_corpus(&corpus);

    // First 32 positions of the first sequence.
    let c = LmConfig::default().context;
    let mut ctxs: Vec<u32> = Vec::new();
    let mut targets: Vec<u32> = Vec::new();
    let mut ctx = vec![BOS as u32; c];
    for &t in ids[0].iter().take(32) {
        ctxs.extend_from_slice(&ctx);
        targets.push(t);
        ctx.remove(0);
        ctx.push(t);
    }

    let batched = lm.batch_gradients(&ctxs, &targets);
    let mut reference: Option<neural_fault_injection::neural::lm::LmGradients> = None;
    for (e, &target) in targets.iter().enumerate() {
        let ctx: Vec<usize> = ctxs[e * c..(e + 1) * c]
            .iter()
            .map(|&i| i as usize)
            .collect();
        let g = lm.example_gradients(&ctx, target as usize);
        reference = Some(match reference {
            None => g,
            Some(mut acc) => {
                acc.embed.add_scaled(1.0, &g.embed);
                acc.w1.add_scaled(1.0, &g.w1);
                acc.w2.add_scaled(1.0, &g.w2);
                for (a, b) in acc.b1.iter_mut().zip(g.b1.iter()) {
                    *a += b;
                }
                for (a, b) in acc.b2.iter_mut().zip(g.b2.iter()) {
                    *a += b;
                }
                acc.nll += g.nll;
                acc.count += g.count;
                acc
            }
        });
    }
    let reference = reference.unwrap();
    assert_eq!(batched.count, reference.count);
    for (name, a, b) in [
        ("embed", &batched.embed, &reference.embed),
        ("w1", &batched.w1, &reference.w1),
        ("w2", &batched.w2, &reference.w2),
    ] {
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() < 1e-5, "{name}: batched {x} vs reference {y}");
        }
    }
    for (x, y) in batched.b1.iter().zip(reference.b1.iter()) {
        assert!((x - y).abs() < 1e-5, "b1");
    }
    for (x, y) in batched.b2.iter().zip(reference.b2.iter()) {
        assert!((x - y).abs() < 1e-5, "b2");
    }
}

#[test]
fn batched_nll_equals_per_example_nll_bitwise() {
    let corpus: Vec<Vec<String>> = neural_fault_injection::corpus::all()
        .iter()
        .take(2)
        .map(|p| code_tokens(p.source))
        .collect();
    let mut lm = NgramLm::new(&corpus, LmConfig::default());
    let ids = lm.encode_corpus(&corpus);
    lm.train_epoch_batched(&ids, 0.05, 32);
    // nll() routes through the batched forward; sample() + logits()
    // route through the per-example kernels. Cross-check a forward pass:
    // batched NLL must be finite, reproducible, and independent of batch
    // chunking (256-position chunks vs one pass).
    let a = lm.nll_ids(&ids);
    let b = lm.nll_ids(&ids);
    assert!(a.is_finite());
    assert_eq!(a, b);
}
