//! Cross-crate integration: the full Fig. 1 pipeline against real corpus
//! programs, one scenario per fault class, checking that each class
//! produces its characteristic failure mode.

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
use neural_fault_injection::inject::FailureMode;
use neural_fault_injection::llm::{FaultLlm, LlmConfig};
use neural_fault_injection::pylite::MachineConfig;
use neural_fault_injection::sfi::FaultClass;

fn machine() -> MachineConfig {
    MachineConfig {
        step_budget: 200_000,
        ..MachineConfig::default()
    }
}

/// Generates a fault of the requested class and runs the differential
/// experiment, returning the overall mode.
fn inject_class(program: &str, description: &str, class: FaultClass) -> FailureMode {
    let program = neural_fault_injection::corpus::by_name(program).unwrap();
    let module = program.module().unwrap();
    let spec = neural_fault_injection::nlp::analyze(description, Some(&module));
    let llm = FaultLlm::untrained(LlmConfig::default());
    let cands = llm.candidates(&spec, &module);
    let cand = cands
        .iter()
        .find(|c| c.class == class)
        .unwrap_or_else(|| panic!("no {class} candidate for: {description}"));
    let report = neural_fault_injection::inject::run_experiment(&module, &cand.module, &machine());
    report.overall
}

#[test]
fn timing_crash_fault_manifests_as_crash() {
    let mode = inject_class(
        "sessions",
        "simulate a timeout causing an unhandled exception in create_session",
        FaultClass::Timing,
    );
    // Either the unhandled raise pattern (crash) or the delay pattern
    // (session-expiry assertion -> wrong output) is a valid timing
    // manifestation; both must be *observable*.
    assert_ne!(mode, FailureMode::NoEffect, "timing fault must activate");
}

#[test]
fn race_fault_is_detected_as_data_race() {
    let mode = inject_class(
        "metrics",
        "introduce a race condition in record: concurrent workers update shared state without a lock",
        FaultClass::Concurrency,
    );
    assert_eq!(mode, FailureMode::DataRace);
}

#[test]
fn leak_fault_is_detected_as_resource_leak() {
    let mode = inject_class(
        "textindex",
        "leak a connection handle in add_document by never closing it",
        FaultClass::ResourceLeak,
    );
    assert_eq!(mode, FailureMode::ResourceLeak);
}

#[test]
fn overflow_fault_is_detected() {
    let mode = inject_class(
        "orderbook",
        "write past the buffer capacity bounds inside place_bid, overflowing it",
        FaultClass::BufferOverflow,
    );
    assert!(
        matches!(
            mode,
            FailureMode::CrashUnhandled(_) | FailureMode::BufferOverflow
        ),
        "got {mode}"
    );
}

#[test]
fn conventional_baseline_cannot_express_complex_classes_anywhere() {
    for program in neural_fault_injection::corpus::all() {
        let module = program.module().unwrap();
        let campaign = neural_fault_injection::sfi::Campaign::conventional(&module);
        for plan in campaign.plans() {
            assert!(
                !matches!(
                    plan.class,
                    FaultClass::Concurrency
                        | FaultClass::Timing
                        | FaultClass::ResourceLeak
                        | FaultClass::BufferOverflow
                ),
                "{}: conventional plan with complex class {:?}",
                program.name,
                plan.class
            );
        }
    }
}

#[test]
fn pipeline_handles_every_corpus_program() {
    let mut injector = NeuralFaultInjector::new(PipelineConfig {
        machine: machine(),
        llm: LlmConfig::default(),
    });
    for program in neural_fault_injection::corpus::all() {
        let target = program
            .target_functions()
            .into_iter()
            .next()
            .expect("target exists");
        let report = injector
            .inject(
                &format!("simulate a timeout failure with an unhandled exception in {target}"),
                program.source,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", program.name));
        // The faulty module must still be valid PyLite.
        let printed = neural_fault_injection::pylite::print_module(&report.faulty_module);
        neural_fault_injection::pylite::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: faulty module unparseable: {e}", program.name));
    }
}

#[test]
fn fine_tuned_generator_ranks_relevant_records_first() {
    let ds = neural_fault_injection::dataset::generate(
        neural_fault_injection::corpus::all(),
        &neural_fault_injection::dataset::DatasetConfig {
            per_program_cap: 25,
            seed: 2,
        },
    );
    let mut llm = FaultLlm::untrained(LlmConfig::default());
    llm.fine_tune(ds.to_training_records());
    let hits = llm.corpus().retrieve(
        "a race condition: shared state updated without acquiring the lock",
        5,
    );
    assert!(!hits.is_empty());
    assert_eq!(
        hits[0].0.class,
        FaultClass::Concurrency,
        "top hit should be a concurrency record, got {:?}",
        hits[0].0
    );
}
