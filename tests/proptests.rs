//! Property-based tests over the core invariants:
//!
//! * print → parse round-trips for arbitrary generated ASTs,
//! * fault operators always produce printable, reparseable modules,
//! * JSONL encode/decode round-trips for arbitrary record contents,
//! * policy distributions are valid probabilities,
//! * the PyLite machine is deterministic per seed.
//!
//! The original suite used the `proptest` crate; this build environment
//! is offline, so the same properties run over a hand-rolled seeded
//! generator (one deterministic random module per case seed). Shrinking
//! is traded for reproducibility: a failing case prints its seed, and
//! rerunning the test replays it exactly.

use neural_fault_injection::llm::{Candidate, GenParams, Policy, FEATURE_DIM};
use neural_fault_injection::pylite::ast::{build, BinOp, CmpOp, Expr, ExprKind, Module, Stmt};
use neural_fault_injection::pylite::{parse, print_module, Machine, MachineConfig};
use neural_fault_injection::sfi::FaultClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 96;

// ---- AST generators ---------------------------------------------------------

fn gen_name(rng: &mut StdRng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::from("v_");
    s.push(HEAD[rng.gen_range(0..HEAD.len())] as char);
    for _ in 0..rng.gen_range(0..4usize) {
        s.push(TAIL[rng.gen_range(0..TAIL.len())] as char);
    }
    s
}

fn gen_text(rng: &mut StdRng, max_len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.,!?-";
    (0..rng.gen_range(0..max_len + 1))
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

/// Arbitrary text for codec round-trips: includes JSON-escape-relevant
/// characters (quotes, backslashes, control chars, newlines) and
/// non-ASCII, mirroring the old proptest `.{0,60}` strategy.
fn gen_text_any(rng: &mut StdRng, max_len: usize) -> String {
    const CHARS: &[char] = &[
        'a',
        'b',
        'z',
        'A',
        'Z',
        '0',
        '9',
        ' ',
        '_',
        '.',
        ',',
        '!',
        '?',
        '-',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{1}',
        '\u{1f}',
        '{',
        '}',
        '[',
        ']',
        ':',
        'é',
        'ß',
        '日',
        '本',
        '\u{1F980}',
    ];
    (0..rng.gen_range(0..max_len + 1))
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())])
        .collect()
}

fn gen_lit(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..6u32) {
        0 => build::int(rng.gen_range(-1000i64..1000)),
        1 => build::float(rng.gen_range(0u32..4000) as f64 / 4.0),
        2 => build::str_(&gen_text(rng, 8)),
        3 => build::bool_(rng.gen::<f32>() < 0.5),
        4 => build::none(),
        _ => build::name(&gen_name(rng)),
    }
}

fn gen_binop(rng: &mut StdRng) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::FloorDiv,
        BinOp::Mod,
        BinOp::Pow,
    ][rng.gen_range(0..7usize)]
}

fn gen_cmpop(rng: &mut StdRng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::In,
        CmpOp::NotIn,
    ][rng.gen_range(0..8usize)]
}

fn gen_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 {
        return gen_lit(rng);
    }
    match rng.gen_range(0..8u32) {
        0 => build::bin(
            gen_binop(rng),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        1 => build::cmp(
            gen_cmpop(rng),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        2 => build::not(gen_expr(rng, depth - 1)),
        3 => {
            let args = (0..rng.gen_range(0..3usize))
                .map(|_| gen_expr(rng, depth - 1))
                .collect();
            build::call(&gen_name(rng), args)
        }
        4 => {
            let items = (0..rng.gen_range(0..3usize))
                .map(|_| gen_expr(rng, depth - 1))
                .collect();
            build::call("len", vec![list_expr(items)])
        }
        5 => build::index(gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)),
        6 => {
            let args = (0..rng.gen_range(0..2usize))
                .map(|_| gen_expr(rng, depth - 1))
                .collect();
            build::method(gen_expr(rng, depth - 1), &gen_name(rng), args)
        }
        _ => gen_lit(rng),
    }
}

fn list_expr(items: Vec<Expr>) -> Expr {
    Expr {
        id: Default::default(),
        span: Default::default(),
        kind: ExprKind::List(items),
    }
}

fn gen_leaf_stmt(rng: &mut StdRng) -> Stmt {
    match rng.gen_range(0..6u32) {
        0 => build::assign(&gen_name(rng), gen_expr(rng, 2)),
        1 => build::expr_stmt(gen_expr(rng, 2)),
        2 => build::aug_assign(&gen_name(rng), gen_binop(rng), gen_expr(rng, 2)),
        3 => build::pass(),
        4 => build::return_(Some(gen_expr(rng, 2))),
        _ => build::raise("ValueError", "prop"),
    }
}

fn gen_stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    if depth == 0 {
        return gen_leaf_stmt(rng);
    }
    match rng.gen_range(0..4u32) {
        0 => {
            let then: Vec<Stmt> = (0..rng.gen_range(1..3usize))
                .map(|_| gen_stmt(rng, depth - 1))
                .collect();
            let els: Vec<Stmt> = (0..rng.gen_range(0..2usize))
                .map(|_| gen_stmt(rng, depth - 1))
                .collect();
            build::if_(gen_expr(rng, 2), then, els)
        }
        1 => {
            let body: Vec<Stmt> = (0..rng.gen_range(1..3usize))
                .map(|_| gen_stmt(rng, depth - 1))
                .collect();
            let handler_body: Vec<Stmt> = (0..rng.gen_range(1..2usize))
                .map(|_| gen_stmt(rng, depth - 1))
                .collect();
            build::try_(
                body,
                vec![build::handler(Some("ValueError"), Some("e"), handler_body)],
                vec![],
            )
        }
        2 => {
            let var = gen_name(rng);
            let body: Vec<Stmt> = (0..rng.gen_range(1..3usize))
                .map(|_| gen_stmt(rng, depth - 1))
                .collect();
            build::for_(vec![&var], gen_expr(rng, 2), body)
        }
        _ => gen_leaf_stmt(rng),
    }
}

fn gen_module(rng: &mut StdRng) -> Module {
    let mut body: Vec<Stmt> = (0..rng.gen_range(1..5usize))
        .map(|_| gen_stmt(rng, 2))
        .collect();
    // Wrap statements containing `return` into a function so they compile.
    let has_return = |s: &Stmt| {
        let mut count = 0;
        let probe = Module {
            body: vec![s.clone()],
        };
        probe.walk_stmts(&mut |x| {
            if matches!(
                x.kind,
                neural_fault_injection::pylite::ast::StmtKind::Return(_)
            ) {
                count += 1;
            }
        });
        count > 0
    };
    let (returns, rest): (Vec<Stmt>, Vec<Stmt>) = body.drain(..).partition(has_return);
    let mut out = rest;
    if !returns.is_empty() {
        out.push(build::def("v_wrapped", vec![], returns));
    }
    if out.is_empty() {
        out.push(build::pass());
    }
    let mut m = Module { body: out };
    m.renumber();
    m
}

// ---- properties -------------------------------------------------------------

#[test]
fn print_parse_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let module = gen_module(&mut rng);
        let printed = print_module(&module);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("case {case}: printed module must reparse: {e}\n{printed}"));
        assert_eq!(
            module, reparsed,
            "case {case} round-trip mismatch:\n{printed}"
        );
    }
}

#[test]
fn printing_is_idempotent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(1 << 32));
        let module = gen_module(&mut rng);
        let once = print_module(&module);
        let twice = print_module(&parse(&once).expect("parses"));
        assert_eq!(once, twice, "case {case}");
    }
}

#[test]
fn operators_preserve_parseability() {
    for case in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(2 << 32));
        let module = gen_module(&mut rng);
        for op in neural_fault_injection::sfi::registry() {
            for site in op.find_sites(&module).into_iter().take(2) {
                if let Some(mutated) = op.apply(&module, &site) {
                    let printed = print_module(&mutated);
                    assert!(
                        parse(&printed).is_ok(),
                        "case {case}: {} broke the module:\n{}",
                        op.name(),
                        printed
                    );
                }
            }
        }
    }
}

#[test]
fn machine_is_deterministic_per_seed() {
    for case in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(3 << 32));
        let module = gen_module(&mut rng);
        let seed = rng.gen_range(0u64..50);
        let run = |seed| {
            let mut m = Machine::new(MachineConfig {
                seed,
                step_budget: 30_000,
                ..MachineConfig::default()
            });
            let out = m.run_module(&module).expect("compiles");
            (format!("{:?}", out.status), out.output, out.steps)
        };
        assert_eq!(run(seed), run(seed), "case {case}");
    }
}

#[test]
fn jsonl_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(4 << 32));
        let id: String = {
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:_-";
            (0..rng.gen_range(1..21usize))
                .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
                .collect()
        };
        let before = gen_text_any(&mut rng, 40);
        let record = neural_fault_injection::dataset::DatasetRecord {
            id,
            program: "p".into(),
            operator: "MFC".into(),
            class: FaultClass::Omission,
            description: gen_text_any(&mut rng, 60),
            function: rng.gen::<f32>().lt(&0.5).then(|| "f".to_string()),
            line: rng.gen_range(0u32..10_000),
            code_before: before.clone(),
            code_after: format!("{before}!"),
        };
        let encoded = neural_fault_injection::dataset::jsonl::encode(&record);
        let decoded = neural_fault_injection::dataset::jsonl::decode(&encoded)
            .unwrap_or_else(|e| panic!("case {case} decode: {e}"));
        assert_eq!(record, decoded, "case {case}");
    }
}

#[test]
fn policy_distribution_is_a_probability() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(5 << 32));
        let n = rng.gen_range(1..6usize);
        let temperature = rng.gen_range(0.1f32..3.0);
        let policy = Policy::new(temperature);
        let cands: Vec<Candidate> = (0..n)
            .map(|_| Candidate {
                pattern: "p".into(),
                class: FaultClass::Timing,
                module: Module::new(),
                target_function: None,
                snippet: String::new(),
                rationale: String::new(),
                params: GenParams::default(),
                effect_crash: false,
                effect_matches_spec: false,
                trigger_honored: 1.0,
                features: (0..FEATURE_DIM)
                    .map(|_| rng.gen_range(-2.0f32..2.0))
                    .collect(),
            })
            .collect();
        let dist = policy.distribution(&cands);
        let sum: f32 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum {sum}");
        assert!(
            dist.iter().all(|p| (0.0..=1.0).contains(p)),
            "case {case}: {dist:?}"
        );
    }
}

#[test]
fn js_distance_is_bounded_and_symmetric() {
    use std::collections::BTreeMap;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case.wrapping_add(6 << 32));
        let gen_counts = |rng: &mut StdRng| -> BTreeMap<FaultClass, usize> {
            FaultClass::ALL
                .iter()
                .copied()
                .map(|c| (c, rng.gen_range(0..50usize)))
                .collect()
        };
        let a = neural_fault_injection::core::metrics::distribution(&gen_counts(&mut rng));
        let b = neural_fault_injection::core::metrics::distribution(&gen_counts(&mut rng));
        let d_ab = neural_fault_injection::core::metrics::js_distance(&a, &b);
        let d_ba = neural_fault_injection::core::metrics::js_distance(&b, &a);
        assert!((d_ab - d_ba).abs() < 1e-9, "case {case}");
        assert!((0.0..=1.0 + 1e-9).contains(&d_ab), "case {case}: {d_ab}");
    }
}
