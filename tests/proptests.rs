//! Property-based tests over the core invariants:
//!
//! * print → parse round-trips for arbitrary generated ASTs,
//! * fault operators always produce printable, reparseable modules,
//! * JSONL encode/decode round-trips for arbitrary record contents,
//! * policy distributions are valid probabilities,
//! * the PyLite machine is deterministic per seed.

use neural_fault_injection::llm::{Candidate, GenParams, Policy, FEATURE_DIM};
use neural_fault_injection::pylite::ast::{build, BinOp, CmpOp, Expr, Module, Stmt};
use neural_fault_injection::pylite::{parse, print_module, Machine, MachineConfig};
use neural_fault_injection::sfi::FaultClass;
use proptest::prelude::*;

// ---- AST strategies ---------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords by prefixing.
    "[a-z][a-z0-9_]{0,4}".prop_map(|s| format!("v_{s}"))
}

fn lit_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(build::int),
        (0u32..4000).prop_map(|v| build::float(v as f64 / 4.0)),
        "[a-zA-Z0-9 _.,!?-]{0,8}".prop_map(|s| build::str_(&s)),
        any::<bool>().prop_map(build::bool_),
        Just(build::none()),
        name_strategy().prop_map(|n| build::name(&n)),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::FloorDiv),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
    ]
}

fn cmpop_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::In),
        Just(CmpOp::NotIn),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    lit_expr().prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (binop_strategy(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| build::bin(op, l, r)),
            (cmpop_strategy(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| build::cmp(op, l, r)),
            inner.clone().prop_map(build::not),
            (name_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| build::call(&f, args)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(|items| {
                build::call("len", vec![Expr::from_items(items)])
            }),
            (inner.clone(), inner.clone()).prop_map(|(o, i)| build::index(o, i)),
            (inner.clone(), name_strategy(), prop::collection::vec(inner, 0..2))
                .prop_map(|(o, m, args)| build::method(o, &m, args)),
        ]
    })
}

// Helper to build list expressions from items (keeps strategy tidy).
trait FromItems {
    fn from_items(items: Vec<Expr>) -> Expr;
}
impl FromItems for Expr {
    fn from_items(items: Vec<Expr>) -> Expr {
        Expr {
            id: Default::default(),
            span: Default::default(),
            kind: neural_fault_injection::pylite::ast::ExprKind::List(items),
        }
    }
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (name_strategy(), expr_strategy()).prop_map(|(n, e)| build::assign(&n, e)),
        expr_strategy().prop_map(build::expr_stmt),
        (name_strategy(), binop_strategy(), expr_strategy())
            .prop_map(|(n, op, e)| build::aug_assign(&n, op, e)),
        Just(build::pass()),
        expr_strategy().prop_map(|e| build::return_(Some(e))),
        Just(build::raise("ValueError", "prop")),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (expr_strategy(), prop::collection::vec(inner.clone(), 1..3),
             prop::collection::vec(inner.clone(), 0..2))
                .prop_map(|(c, t, e)| build::if_(c, t, e)),
            (prop::collection::vec(inner.clone(), 1..3),
             prop::collection::vec(inner.clone(), 1..2))
                .prop_map(|(body, h)| build::try_(
                    body,
                    vec![build::handler(Some("ValueError"), Some("e"), h)],
                    vec![],
                )),
            (name_strategy(), expr_strategy(), prop::collection::vec(inner, 1..3))
                .prop_map(|(v, it, body)| build::for_(vec![&v], it, body)),
        ]
    })
}

fn module_strategy() -> impl Strategy<Value = Module> {
    prop::collection::vec(stmt_strategy(), 1..5).prop_map(|mut body| {
        // Wrap statements with `return` into a function so they compile.
        let has_return = |s: &Stmt| {
            matches!(
                s.kind,
                neural_fault_injection::pylite::ast::StmtKind::Return(_)
            )
        };
        let (returns, rest): (Vec<Stmt>, Vec<Stmt>) = body.drain(..).partition(|s| {
            let mut found = has_return(s);
            if !found {
                // Nested returns also need wrapping; conservatively wrap ifs.
                let mut count = 0;
                let module = Module { body: vec![s.clone()] };
                module.walk_stmts(&mut |x| {
                    if has_return(x) {
                        count += 1;
                    }
                });
                found = count > 0;
            }
            found
        });
        let mut out = rest;
        if !returns.is_empty() {
            out.push(build::def("v_wrapped", vec![], returns));
        }
        if out.is_empty() {
            out.push(build::pass());
        }
        let mut m = Module { body: out };
        m.renumber();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_roundtrip(module in module_strategy()) {
        let printed = print_module(&module);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed module must reparse: {e}\n{printed}"));
        prop_assert_eq!(&module, &reparsed, "round-trip mismatch:\n{}", printed);
    }

    #[test]
    fn printing_is_idempotent(module in module_strategy()) {
        let once = print_module(&module);
        let twice = print_module(&parse(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn operators_preserve_parseability(module in module_strategy()) {
        for op in neural_fault_injection::sfi::registry() {
            for site in op.find_sites(&module).into_iter().take(2) {
                if let Some(mutated) = op.apply(&module, &site) {
                    let printed = print_module(&mutated);
                    prop_assert!(
                        parse(&printed).is_ok(),
                        "{} broke the module:\n{}",
                        op.name(),
                        printed
                    );
                }
            }
        }
    }

    #[test]
    fn machine_is_deterministic_per_seed(module in module_strategy(), seed in 0u64..50) {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig {
                seed,
                step_budget: 30_000,
                ..MachineConfig::default()
            });
            let out = m.run_module(&module).expect("compiles");
            (format!("{:?}", out.status), out.output, out.steps)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn jsonl_roundtrip(
        id in "[a-z0-9:_-]{1,20}",
        desc in ".{0,60}",
        before in ".{0,40}",
        line in 0u32..10_000,
        has_fn in any::<bool>(),
    ) {
        let record = neural_fault_injection::dataset::DatasetRecord {
            id,
            program: "p".into(),
            operator: "MFC".into(),
            class: FaultClass::Omission,
            description: desc,
            function: has_fn.then(|| "f".to_string()),
            line,
            code_before: before.clone(),
            code_after: format!("{before}!"),
        };
        let encoded = neural_fault_injection::dataset::jsonl::encode(&record);
        let decoded = neural_fault_injection::dataset::jsonl::decode(&encoded)
            .map_err(|e| TestCaseError::fail(format!("decode: {e}")))?;
        prop_assert_eq!(record, decoded);
    }

    #[test]
    fn policy_distribution_is_a_probability(
        features in prop::collection::vec(
            prop::collection::vec(-2.0f32..2.0, FEATURE_DIM),
            1..6,
        ),
        temperature in 0.1f32..3.0,
    ) {
        let policy = Policy::new(temperature);
        let cands: Vec<Candidate> = features
            .into_iter()
            .map(|f| Candidate {
                pattern: "p".into(),
                class: FaultClass::Timing,
                module: Module::new(),
                target_function: None,
                snippet: String::new(),
                rationale: String::new(),
                params: GenParams::default(),
                effect_crash: false,
                effect_matches_spec: false,
                trigger_honored: 1.0,
                features: f,
            })
            .collect();
        let dist = policy.distribution(&cands);
        let sum: f32 = dist.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {}", sum);
        prop_assert!(dist.iter().all(|p| *p >= 0.0 && *p <= 1.0));
    }

    #[test]
    fn js_distance_is_bounded_and_symmetric(
        counts_a in prop::collection::vec(0usize..50, 8),
        counts_b in prop::collection::vec(0usize..50, 8),
    ) {
        use std::collections::BTreeMap;
        let to_counts = |v: &[usize]| -> BTreeMap<FaultClass, usize> {
            FaultClass::ALL.iter().copied().zip(v.iter().copied()).collect()
        };
        let a = neural_fault_injection::core::metrics::distribution(&to_counts(&counts_a));
        let b = neural_fault_injection::core::metrics::distribution(&to_counts(&counts_b));
        let d_ab = neural_fault_injection::core::metrics::js_distance(&a, &b);
        let d_ba = neural_fault_injection::core::metrics::js_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d_ab));
    }
}
