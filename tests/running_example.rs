//! Reproduction of the paper's §III-A running example, end to end:
//! the `process_transaction` timeout scenario, the first-round
//! caught-but-mishandled generation, the tester's retry critique, and
//! the second-round retry generation.

use neural_fault_injection::core::pipeline::{NeuralFaultInjector, PipelineConfig};
use neural_fault_injection::core::session::run_session;
use neural_fault_injection::rlhf::{SimulatedTester, TargetProfile};

const DESCRIPTION: &str = "Simulate a scenario where a database transaction fails due to a \
     timeout, causing an unhandled exception within the process transaction function.";

/// The paper's placeholder target: `process_transaction` with an empty
/// body.
const PLACEHOLDER: &str = "def process_transaction(transaction_details):\n    pass\n";

#[test]
fn spec_extraction_matches_the_paper() {
    let module = neural_fault_injection::pylite::parse(PLACEHOLDER).unwrap();
    let spec = neural_fault_injection::nlp::analyze(DESCRIPTION, Some(&module));
    // §III-B1: "it identifies key components (e.g. 'database service'
    // and 'timeout' ...)".
    assert_eq!(spec.target_function.as_deref(), Some("process_transaction"));
    assert_eq!(spec.exception_kind.as_deref(), Some("TimeoutError"));
    assert!(spec.keywords.iter().any(|k| k == "database"));
    assert!(spec.keywords.iter().any(|k| k == "timeout"));
}

#[test]
fn first_round_generation_has_the_papers_shape() {
    let module = neural_fault_injection::pylite::parse(PLACEHOLDER).unwrap();
    let spec = neural_fault_injection::nlp::analyze(DESCRIPTION, Some(&module));
    let llm = neural_fault_injection::llm::FaultLlm::untrained(Default::default());
    let cands = llm.candidates(&spec, &module);
    let mishandled = cands
        .iter()
        .find(|c| c.pattern == "raise_mishandled")
        .expect("the paper's first-round pattern is synthesized");
    // The paper's generated snippet: raise TimeoutError("Database
    // transaction timeout") caught and only printed.
    assert!(mishandled
        .snippet
        .contains("raise TimeoutError(\"Database transaction timeout\")"));
    assert!(mishandled.snippet.contains("except TimeoutError"));
    assert!(mishandled.snippet.contains("Transaction failed:"));
    assert!(
        !mishandled.snippet.contains("retry"),
        "first round lacks recovery logic"
    );
}

#[test]
fn full_session_converges_to_the_retry_variant() {
    let program = neural_fault_injection::corpus::by_name("ecommerce").unwrap();
    let module = program.module().unwrap();
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 42);
    tester.noise = 0.0;

    let result = run_session(&mut injector, DESCRIPTION, &module, &tester, 8).unwrap();
    assert!(result.accepted, "the session must converge");
    let last = result.final_fault().unwrap();
    // §III-A second round: "a more sophisticated fault simulation"
    // containing a retry mechanism.
    assert!(last.pattern.contains("retry"));
    assert!(last.snippet.contains("Attempting to retry transaction"));

    // Every rejected round carried an NL critique, and at least one of
    // them was the retry request.
    let critiques: Vec<&str> = result
        .rounds
        .iter()
        .filter_map(|r| r.feedback.critique.as_deref())
        .collect();
    if result.rounds.len() > 1 {
        assert!(
            critiques.iter().any(|c| c.contains("retry")),
            "critiques: {critiques:?}"
        );
    }
}

#[test]
fn accepted_fault_integrates_and_activates_on_the_real_program() {
    let program = neural_fault_injection::corpus::by_name("ecommerce").unwrap();
    let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
    let report = injector
        .inject(DESCRIPTION, program.source)
        .expect("pipeline runs");
    // The injected fault must be observable: process_transaction now
    // misbehaves under at least one embedded test.
    assert!(
        report.experiment.activated,
        "fault {} did not activate: {:?}",
        report.fault.pattern, report.experiment.overall
    );
}
