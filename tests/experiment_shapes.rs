//! Asserts the qualitative *shapes* of every experiment (E1–E8) on
//! reduced configurations — the reproduction criteria DESIGN.md §3
//! defines for a vision paper with no absolute numbers.

use nfi_bench::experiments::*;

#[test]
fn e1_alignment_improves_and_plateaus() {
    let rows = run_e1(16, 10, &[1]);
    assert_eq!(rows.len(), 10);
    let first3: f64 = rows[..3].iter().map(|r| r.mean_rating).sum::<f64>() / 3.0;
    let last3: f64 = rows[7..].iter().map(|r| r.mean_rating).sum::<f64>() / 3.0;
    assert!(
        last3 > first3 + 0.25,
        "rating should improve: {first3:.2} -> {last3:.2}"
    );
    let first_acc: f64 = rows[..3].iter().map(|r| r.acceptance).sum::<f64>() / 3.0;
    let last_acc: f64 = rows[7..].iter().map(|r| r.acceptance).sum::<f64>() / 3.0;
    assert!(
        last_acc >= first_acc,
        "acceptance should not degrade: {first_acc:.2} -> {last_acc:.2}"
    );
}

#[test]
fn e2_neural_covers_classes_the_baseline_cannot() {
    let rows = run_e2(32);
    let complex = ["concurrency", "timing", "resource_leak", "buffer_overflow"];
    let mut neural_total = 0usize;
    let mut conventional_total = 0usize;
    for row in &rows {
        neural_total += row.neural_expressible;
        conventional_total += row.conventional_expressible;
        if complex.contains(&row.class.key()) {
            assert_eq!(
                row.conventional_expressible, 0,
                "{}: predefined model should not express it",
                row.class
            );
            assert!(
                row.neural_expressible > 0,
                "{}: neural tool should express it",
                row.class
            );
        }
    }
    assert!(
        neural_total > conventional_total,
        "neural coverage {neural_total} must exceed conventional {conventional_total}"
    );
}

#[test]
fn e2_neural_faults_mostly_activate() {
    let rows = run_e2(32);
    let expressible: usize = rows.iter().map(|r| r.neural_expressible).sum();
    let activated: usize = rows.iter().map(|r| r.neural_activated).sum();
    assert!(
        activated * 10 >= expressible * 5,
        "at least half of expressible faults should activate: {activated}/{expressible}"
    );
}

#[test]
fn e3_neural_needs_fewer_interactions_per_realized_fault() {
    let rows = run_e3(24, 6);
    let neural = rows.iter().find(|r| r.approach == "neural").unwrap();
    let conventional = rows.iter().find(|r| r.approach == "conventional").unwrap();
    assert!(neural.realized > 0);
    assert!(
        neural.per_realized < conventional.per_realized,
        "neural {:.2} should beat conventional {:.2}",
        neural.per_realized,
        conventional.per_realized
    );
    // The baseline realizes strictly fewer scenarios (complex classes).
    assert!(conventional.realized < conventional.scenarios);
}

#[test]
fn e4_neural_distribution_is_closer_to_the_field_profile() {
    let rows = run_e4(300, 11);
    let neural = rows.iter().find(|r| r.approach == "neural").unwrap();
    let conventional = rows.iter().find(|r| r.approach == "conventional").unwrap();
    assert!(
        neural.js_distance < conventional.js_distance,
        "neural JS {:.4} should be below conventional {:.4}",
        neural.js_distance,
        conventional.js_distance
    );
    assert!(neural.classes > conventional.classes);
}

#[test]
fn e5_funnel_is_monotone_with_high_early_stages() {
    let funnel = run_e5(40);
    assert_eq!(funnel.attempted, 40);
    assert!(funnel.generated <= funnel.attempted);
    assert!(funnel.parsed <= funnel.generated);
    assert!(funnel.integrated <= funnel.parsed);
    assert!(funnel.activated <= funnel.integrated);
    // ≥90% of attempts make it through generation+parse+integration.
    assert!(
        funnel.integrated * 10 >= funnel.attempted * 9,
        "integration success too low: {}/{}",
        funnel.integrated,
        funnel.attempted
    );
    // A non-trivial activation gap is expected (residual-fault realism):
    // activation is positive but below integration.
    assert!(funnel.activated > 0);
    // Failure modes include more than one kind.
    assert!(funnel.modes.len() >= 2, "modes: {:?}", funnel.modes);
}

#[test]
fn e6_perplexity_falls_with_dataset_size() {
    let rows = run_e6(&[16, 64, 256], 40, 5);
    assert_eq!(rows.len(), 3);
    assert!(
        rows[2].eval_perplexity < rows[0].eval_perplexity,
        "perplexity should drop with data: {:?}",
        rows.iter()
            .map(|r| (r.size, r.eval_perplexity))
            .collect::<Vec<_>>()
    );
    // Retrieval accuracy should also not degrade with more data.
    assert!(rows[2].retrieval_accuracy >= rows[0].retrieval_accuracy * 0.8);
}

#[test]
fn e7_stages_are_fast_and_throughput_positive() {
    let row = run_e7(12);
    assert_eq!(row.scenarios, 12);
    assert!(row.throughput_per_s > 0.0);
    // Every stage well under a second per scenario (paper §IV-2
    // deployability claim).
    for (stage, us) in [
        ("nlp", row.nlp_us),
        ("generate", row.generate_us),
        ("integrate", row.integrate_us),
        ("test", row.test_us),
    ] {
        assert!(us < 1_000_000.0, "{stage} too slow: {us}us");
    }
}

#[test]
fn e8_full_system_beats_each_ablation() {
    let rows = run_e8(12, 8);
    let rating = |v: &str| {
        rows.iter()
            .find(|r| r.variant == v)
            .unwrap_or_else(|| panic!("variant {v} missing"))
            .final_rating
    };
    let full = rating("full");
    assert!(
        full > rating("no_rlhf"),
        "full {:.2} vs no_rlhf {:.2}",
        full,
        rating("no_rlhf")
    );
    assert!(
        full + 0.15 > rating("direct_rating"),
        "reward-model path should at least match direct ratings: {:.2} vs {:.2}",
        full,
        rating("direct_rating")
    );
    assert!(
        full > rating("no_nlp_spec"),
        "structured specs must help: {:.2} vs {:.2}",
        full,
        rating("no_nlp_spec")
    );
}
