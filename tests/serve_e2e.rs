//! End-to-end daemon test through the real `nfi` binary: `nfi serve`
//! runs with its default **spawned `nfi campaign exec` process
//! workers** (the serve crate's own tests can only exercise in-process
//! mode — this is the one place the full process tree exists), and the
//! served document is byte-diffed against an offline `nfi campaign
//! run` of the same binary. Also covers the strict CLI flag
//! validation, which lives in the binary.

use neural_fault_injection::serve::client::{request_once, request_once_as, Client};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NFI: &str = env!("CARGO_BIN_EXE_nfi");

const SOURCE: &str = "\
m = lock()
total = 0
def add(v):
    global total
    m.acquire()
    total = total + v
    m.release()
    return total
def test_add():
    assert add(1) == 1
";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfi-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running daemon child that is killed on drop (test panics must not
/// leak listeners).
struct Daemon {
    child: Child,
    addr: String,
    // Keeps the stdout pipe open for the daemon's lifetime — dropping
    // it would EPIPE the daemon's own startup prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn start(state_dir: &std::path::Path, workers: usize) -> Daemon {
        Daemon::start_with_lanes(state_dir, workers, 1)
    }

    fn start_with_lanes(state_dir: &std::path::Path, workers: usize, lanes: usize) -> Daemon {
        Daemon::start_with_args(state_dir, workers, lanes, &[])
    }

    fn start_with_args(
        state_dir: &std::path::Path,
        workers: usize,
        lanes: usize,
        extra: &[&str],
    ) -> Daemon {
        let mut child = Command::new(NFI)
            .args(["serve", "--addr", "127.0.0.1:0", "--workers"])
            .arg(workers.to_string())
            .arg("--lanes")
            .arg(lanes.to_string())
            .arg("--state-dir")
            .arg(state_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nfi serve");
        // The daemon prints its resolved ephemeral address at startup.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("daemon banner line");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
            .to_string();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn await_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let reply = request_once(addr, "GET", &format!("/v1/campaigns/{id}"), None).unwrap();
        let text = reply.text();
        if text.contains("\"status\":\"done\"") {
            return text;
        }
        assert!(
            !text.contains("\"status\":\"failed\""),
            "job {id} failed: {text}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn served_documents_from_process_workers_match_offline_campaign_run() {
    let dir = scratch("parity");
    let daemon = Daemon::start(&dir.join("served"), 2);

    // Submit the demo source twice: cold, then store-warm.
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        neural_fault_injection::sfi::jsontext::escape(SOURCE)
    );
    let reply = request_once(&daemon.addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let cold_status = await_done(&daemon.addr, 1);
    assert!(cold_status.contains("\"replayed\":0"), "{cold_status}");

    let reply = request_once(&daemon.addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let warm_status = await_done(&daemon.addr, 2);
    assert!(
        warm_status.contains("\"executed\":0"),
        "warm job must replay everything: {warm_status}"
    );

    let mut client = Client::connect(&daemon.addr).unwrap();
    let cold = client
        .send("GET", "/v1/campaigns/1/document", None)
        .unwrap();
    let warm = client
        .send("GET", "/v1/campaigns/2/document", None)
        .unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(
        cold.body, warm.body,
        "warm and cold served documents differ"
    );

    // Offline run of the same binary over a fresh state dir.
    let demo_py = dir.join("demo.py");
    std::fs::write(&demo_py, SOURCE).unwrap();
    let offline_state = dir.join("offline");
    let status = Command::new(NFI)
        .args(["campaign", "run", "--workers", "2", "--state-dir"])
        .arg(&offline_state)
        .arg(&demo_py)
        .stdout(Stdio::null())
        .status()
        .expect("offline campaign run");
    assert!(status.success());
    let offline_doc = std::fs::read(offline_state.join("runs/demo.jsonl")).unwrap();
    assert_eq!(
        cold.body, offline_doc,
        "served document differs from offline `nfi campaign run`"
    );

    // The daemon's workers left no exchange files behind.
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("served/tmp"))
        .map(|entries| entries.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "leftover worker files: {leftovers:?}");

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_recovers_accepted_jobs_and_finished_documents_on_restart() {
    let dir = scratch("restart");
    let state = dir.join("state");
    let submit = |addr: &str, name: &str, source: &str| -> u64 {
        let body = format!(
            "{{\"program\":\"{name}\",\"source\":\"{}\"}}",
            neural_fault_injection::sfi::jsontext::escape(source)
        );
        let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
        assert_eq!(reply.status, 202, "{}", reply.text());
        reply
            .text()
            .split("\"id\":")
            .nth(1)
            .and_then(|t| t.split([',', '}']).next())
            .and_then(|t| t.parse().ok())
            .unwrap()
    };
    let sources: Vec<(String, String)> = (0..3)
        .map(|i| {
            (
                format!("burst{i}"),
                format!("def f():\n    return {i}\ndef test_f():\n    assert f() == {i}\n"),
            )
        })
        .collect();

    // Warm-up job: finished, journaled, its document fetched.
    let daemon = Daemon::start_with_lanes(&state, 1, 2);
    let warm_id = submit(&daemon.addr, "demo", SOURCE);
    await_done(&daemon.addr, warm_id);
    let warm_doc = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(warm_doc.status, 200);

    // Burst-submit, then kill the daemon immediately — the burst is
    // accepted (journaled before each 202) but mostly still queued.
    let burst_ids: Vec<u64> = sources
        .iter()
        .map(|(name, source)| submit(&daemon.addr, name, source))
        .collect();
    drop(daemon); // SIGKILL, no drain

    // Restart on the same state dir: nothing accepted may be lost.
    let daemon = Daemon::start_with_lanes(&state, 1, 2);
    let restored = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}"),
        None,
    )
    .unwrap();
    assert!(
        restored.text().contains("\"status\":\"done\""),
        "warm-up job must restore as done: {}",
        restored.text()
    );
    let redoc = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(
        redoc.body, warm_doc.body,
        "restored document differs from the pre-kill bytes"
    );
    for (id, (name, source)) in burst_ids.iter().zip(&sources) {
        await_done(&daemon.addr, *id);
        let doc = request_once(
            &daemon.addr,
            "GET",
            &format!("/v1/campaigns/{id}/document"),
            None,
        )
        .unwrap();
        assert_eq!(doc.status, 200);
        // Byte-parity against an offline run of the same binary.
        let src_path = dir.join(format!("{name}.py"));
        std::fs::write(&src_path, source).unwrap();
        let offline_state = dir.join(format!("offline-{name}"));
        let status = Command::new(NFI)
            .args(["campaign", "run", "--state-dir"])
            .arg(&offline_state)
            .arg(&src_path)
            .stdout(Stdio::null())
            .status()
            .unwrap();
        assert!(status.success());
        let offline_doc = std::fs::read(offline_state.join(format!("runs/{name}.jsonl"))).unwrap();
        assert_eq!(
            doc.body, offline_doc,
            "recovered {name} differs from offline `nfi campaign run`"
        );
    }
    // New ids continue above everything the journal saw.
    let next = submit(&daemon.addr, "demo", SOURCE);
    assert!(next > *burst_ids.iter().max().unwrap());
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes an executable wrapper around the real `nfi` binary whose
/// first `count` invocations run `misbehave` instead (a shared counter
/// file sequences the attempts — use one worker so attempts are
/// ordered).
#[cfg(unix)]
fn flaky_nfi(dir: &std::path::Path, count: usize, misbehave: &str) -> PathBuf {
    use std::os::unix::fs::PermissionsExt;
    let counter = dir.join("attempts");
    let path = dir.join("flaky-nfi.sh");
    std::fs::write(
        &path,
        format!(
            "#!/bin/sh\nc=$(cat {counter} 2>/dev/null || echo 0)\n\
             echo $((c+1)) > {counter}\n\
             if [ \"$c\" -lt {count} ]; then\n  {misbehave}\nfi\n\
             exec {NFI} \"$@\"\n",
            counter = counter.display(),
        ),
    )
    .unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
    path
}

#[test]
#[cfg(unix)]
fn crashing_worker_children_retry_with_backoff_and_the_job_completes() {
    use neural_fault_injection::serve::{worker::WorkerMode, ServeConfig, Server};
    let dir = scratch("flaky");
    let state = dir.join("state");
    // The first two child spawns exit 3; the retries then reach the
    // real binary. max_retries 2 → attempt 3 succeeds.
    let wrapper = flaky_nfi(&dir, 2, "exit 3");
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::Spawn { nfi: wrapper },
        worker_retries: 2,
        ..ServeConfig::new(&state)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        neural_fault_injection::sfi::jsontext::escape(SOURCE)
    );
    let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let status = await_done(&addr.to_string(), 1);
    assert!(
        status.contains("\"failed_units\":0"),
        "retries must recover full coverage: {status}"
    );

    // The retries surfaced in the metrics, and the served document is
    // byte-identical to an offline run — a retried job is
    // indistinguishable from a clean one.
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    let text = metrics.text();
    assert!(text.contains("\"retries\":2"), "{text}");
    assert!(text.contains("\"failed_units\":0"), "{text}");
    let doc = request_once(addr, "GET", "/v1/campaigns/1/document", None).unwrap();
    let offline_dir = dir.join("offline");
    let offline = neural_fault_injection::core::Orchestrator::new(&offline_dir)
        .unwrap()
        .run_program("demo", SOURCE)
        .unwrap();
    assert_eq!(doc.text(), offline.run.encode());
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn a_hung_worker_child_is_watchdog_killed_retried_and_the_job_completes() {
    use neural_fault_injection::serve::{worker::WorkerMode, ServeConfig, Server};
    let dir = scratch("hung");
    let state = dir.join("state");
    // The first child hangs (the wrapper sleeps without exec'ing); the
    // watchdog kills it at its budget and the retry reaches the real
    // binary. The hang must not require a daemon restart to clear.
    let wrapper = flaky_nfi(&dir, 1, "sleep 600");
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::Spawn { nfi: wrapper },
        worker_retries: 2,
        child_timeout: Some(Duration::from_millis(500)),
        ..ServeConfig::new(&state)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        neural_fault_injection::sfi::jsontext::escape(SOURCE)
    );
    let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let status = await_done(&addr.to_string(), 1);
    assert!(status.contains("\"failed_units\":0"), "{status}");
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    let text = metrics.text();
    assert!(text.contains("\"watchdog_kills\":1"), "{text}");
    assert!(text.contains("\"retries\":1"), "{text}");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auth_and_the_as_flag_close_the_tenant_parity_loop_over_the_cli() {
    let dir = scratch("cli-auth");
    let tokens = dir.join("tokens");
    std::fs::write(&tokens, "alice:tok-a\n").unwrap();
    let daemon = Daemon::start_with_args(
        &dir.join("served"),
        1,
        2,
        &[
            "--auth-token-file",
            tokens.to_str().unwrap(),
            "--rate-limit",
            "200",
            "--deadline-ms",
            "120000",
            "--max-queue",
            "64",
        ],
    );

    // No token → 401; the probe stays open.
    let denied = request_once(&daemon.addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(denied.status, 401, "{}", denied.text());
    let probe = request_once(&daemon.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(probe.status, 200);

    // Alice submits; her program is served under `alice:demo`.
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        neural_fault_injection::sfi::jsontext::escape(SOURCE)
    );
    let reply = request_once_as(
        &daemon.addr,
        "tok-a",
        "POST",
        "/v1/campaigns",
        Some(body.as_bytes()),
    )
    .unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    assert!(
        reply.text().contains("\"program\":\"alice:demo\""),
        "{}",
        reply.text()
    );
    let deadline = Instant::now() + Duration::from_secs(180);
    let status = loop {
        let reply = request_once_as(&daemon.addr, "tok-a", "GET", "/v1/campaigns/1", None).unwrap();
        let text = reply.text();
        if text.contains("\"status\":\"done\"") {
            break text;
        }
        assert!(
            !text.contains("\"status\":\"failed\""),
            "job failed: {text}"
        );
        assert!(Instant::now() < deadline, "job never finished: {text}");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(status.contains("\"program\":\"alice:demo\""), "{status}");
    let doc = request_once_as(
        &daemon.addr,
        "tok-a",
        "GET",
        "/v1/campaigns/1/document",
        None,
    )
    .unwrap();
    assert_eq!(doc.status, 200);

    // `campaign run --as alice:demo` reproduces the tenant's document
    // offline, byte for byte — the namespaced store key is the same.
    let demo_py = dir.join("demo.py");
    std::fs::write(&demo_py, SOURCE).unwrap();
    let offline_state = dir.join("offline");
    let out = Command::new(NFI)
        .args(["campaign", "run", "--as", "alice:demo", "--state-dir"])
        .arg(&offline_state)
        .arg(&demo_py)
        .stdout(Stdio::null())
        .status()
        .expect("offline campaign run --as");
    assert!(out.success());
    let offline_doc = std::fs::read(offline_state.join("runs/alice:demo.jsonl")).unwrap();
    assert_eq!(
        doc.body, offline_doc,
        "served tenant document differs from offline `campaign run --as`"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_flag_validation_rejects_nonsense_up_front() {
    let run = |args: &[&str]| -> (bool, String) {
        let output = Command::new(NFI).args(args).output().expect("run nfi");
        (
            output.status.success(),
            String::from_utf8_lossy(&output.stderr).to_string(),
        )
    };
    for (args, needle) in [
        (
            &["serve", "--state-dir", "/tmp/x", "--workers", "0"][..],
            "--workers expects a positive integer, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--workers", "two"],
            "--workers expects a positive integer, got `two`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--lanes", "0"],
            "--lanes expects a positive integer, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--lanes", "many"],
            "--lanes expects a positive integer, got `many`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--port", "0"],
            "--port expects a port number 1-65535, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--port", "99999"],
            "--port expects a port number 1-65535, got `99999`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--addr", "localhost"],
            "--addr expects ip:port",
        ),
        (
            &[
                "serve",
                "--state-dir",
                "/tmp/x",
                "--addr",
                "127.0.0.1:1",
                "--port",
                "2",
            ],
            "--addr already carries a port",
        ),
        (&["serve"], "need --state-dir"),
        (
            &["serve", "--state-dir", "/tmp/x", "--rate-limit", "fast"],
            "--rate-limit expects an unsigned integer",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--worker-retries", "-1"],
            "--worker-retries expects an unsigned integer",
        ),
        (
            &[
                "serve",
                "--state-dir",
                "/tmp/x",
                "--auth-token-file",
                "/no/such/file",
            ],
            "cannot read token file",
        ),
        (
            &[
                "campaign",
                "plan",
                "--program",
                "banking",
                "--as",
                "bad name",
            ],
            "contains whitespace",
        ),
        (
            &[
                "campaign",
                "run",
                "--state-dir",
                "/tmp/x",
                "--as",
                "everything",
            ],
            "needs exactly one target",
        ),
        (
            &["campaign", "run", "--state-dir", "/tmp/x", "--workers", "0"],
            "--workers expects a positive integer, got `0`",
        ),
        (&["store", "gc"], "need --state-dir"),
        (
            &["store", "gc", "--state-dir", "/tmp/x"],
            "store gc needs the live set named explicitly",
        ),
        (&["store"], "usage: nfi store gc"),
    ] {
        let (ok, stderr) = run(args);
        assert!(!ok, "{args:?} should fail");
        assert!(
            stderr.contains(needle),
            "{args:?} → `{stderr}` missing `{needle}`"
        );
    }
}

#[test]
fn store_gc_over_the_binary_prunes_only_dead_programs() {
    let dir = scratch("gc");
    let write_program = |name: &str, extra: &str| {
        let path = dir.join(format!("{name}.py"));
        std::fs::write(&path, format!("{SOURCE}{extra}")).unwrap();
        path
    };
    let keep = write_program("keep", "");
    let drop_py = write_program("dropme", "marker = 1\n");
    let state = dir.join("state");
    for path in [&keep, &drop_py] {
        let status = Command::new(NFI)
            .args(["campaign", "run", "--state-dir"])
            .arg(&state)
            .arg(path)
            .stdout(Stdio::null())
            .status()
            .unwrap();
        assert!(status.success());
    }
    let segments = || std::fs::read_dir(state.join("store")).unwrap().count();
    assert_eq!(segments(), 2);

    // Dry run touches nothing.
    let output = Command::new(NFI)
        .args(["store", "gc", "--dry-run", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("would remove"), "{stdout}");
    assert!(stdout.contains("dropme"), "{stdout}");
    assert_eq!(segments(), 2);

    // The sweep removes exactly the dead program's segment.
    let output = Command::new(NFI)
        .args(["store", "gc", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    assert!(output.status.success());
    assert_eq!(segments(), 1);
    // The survivor still replays warm through the binary.
    let output = Command::new(NFI)
        .args(["campaign", "run", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("executed=0"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
