//! End-to-end daemon test through the real `nfi` binary: `nfi serve`
//! runs with its default **spawned `nfi campaign exec` process
//! workers** (the serve crate's own tests can only exercise in-process
//! mode — this is the one place the full process tree exists), and the
//! served document is byte-diffed against an offline `nfi campaign
//! run` of the same binary. Also covers the strict CLI flag
//! validation, which lives in the binary.

use neural_fault_injection::serve::client::{request_once, Client};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NFI: &str = env!("CARGO_BIN_EXE_nfi");

const SOURCE: &str = "\
m = lock()
total = 0
def add(v):
    global total
    m.acquire()
    total = total + v
    m.release()
    return total
def test_add():
    assert add(1) == 1
";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfi-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running daemon child that is killed on drop (test panics must not
/// leak listeners).
struct Daemon {
    child: Child,
    addr: String,
    // Keeps the stdout pipe open for the daemon's lifetime — dropping
    // it would EPIPE the daemon's own startup prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn start(state_dir: &std::path::Path, workers: usize) -> Daemon {
        Daemon::start_with_lanes(state_dir, workers, 1)
    }

    fn start_with_lanes(state_dir: &std::path::Path, workers: usize, lanes: usize) -> Daemon {
        let mut child = Command::new(NFI)
            .args(["serve", "--addr", "127.0.0.1:0", "--workers"])
            .arg(workers.to_string())
            .arg("--lanes")
            .arg(lanes.to_string())
            .arg("--state-dir")
            .arg(state_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nfi serve");
        // The daemon prints its resolved ephemeral address at startup.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("daemon banner line");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner `{banner}`"))
            .to_string();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn await_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let reply = request_once(addr, "GET", &format!("/v1/campaigns/{id}"), None).unwrap();
        let text = reply.text();
        if text.contains("\"status\":\"done\"") {
            return text;
        }
        assert!(
            !text.contains("\"status\":\"failed\""),
            "job {id} failed: {text}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn served_documents_from_process_workers_match_offline_campaign_run() {
    let dir = scratch("parity");
    let daemon = Daemon::start(&dir.join("served"), 2);

    // Submit the demo source twice: cold, then store-warm.
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        neural_fault_injection::sfi::jsontext::escape(SOURCE)
    );
    let reply = request_once(&daemon.addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let cold_status = await_done(&daemon.addr, 1);
    assert!(cold_status.contains("\"replayed\":0"), "{cold_status}");

    let reply = request_once(&daemon.addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let warm_status = await_done(&daemon.addr, 2);
    assert!(
        warm_status.contains("\"executed\":0"),
        "warm job must replay everything: {warm_status}"
    );

    let mut client = Client::connect(&daemon.addr).unwrap();
    let cold = client
        .send("GET", "/v1/campaigns/1/document", None)
        .unwrap();
    let warm = client
        .send("GET", "/v1/campaigns/2/document", None)
        .unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(
        cold.body, warm.body,
        "warm and cold served documents differ"
    );

    // Offline run of the same binary over a fresh state dir.
    let demo_py = dir.join("demo.py");
    std::fs::write(&demo_py, SOURCE).unwrap();
    let offline_state = dir.join("offline");
    let status = Command::new(NFI)
        .args(["campaign", "run", "--workers", "2", "--state-dir"])
        .arg(&offline_state)
        .arg(&demo_py)
        .stdout(Stdio::null())
        .status()
        .expect("offline campaign run");
    assert!(status.success());
    let offline_doc = std::fs::read(offline_state.join("runs/demo.jsonl")).unwrap();
    assert_eq!(
        cold.body, offline_doc,
        "served document differs from offline `nfi campaign run`"
    );

    // The daemon's workers left no exchange files behind.
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("served/tmp"))
        .map(|entries| entries.flatten().map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftovers.is_empty(), "leftover worker files: {leftovers:?}");

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_recovers_accepted_jobs_and_finished_documents_on_restart() {
    let dir = scratch("restart");
    let state = dir.join("state");
    let submit = |addr: &str, name: &str, source: &str| -> u64 {
        let body = format!(
            "{{\"program\":\"{name}\",\"source\":\"{}\"}}",
            neural_fault_injection::sfi::jsontext::escape(source)
        );
        let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
        assert_eq!(reply.status, 202, "{}", reply.text());
        reply
            .text()
            .split("\"id\":")
            .nth(1)
            .and_then(|t| t.split([',', '}']).next())
            .and_then(|t| t.parse().ok())
            .unwrap()
    };
    let sources: Vec<(String, String)> = (0..3)
        .map(|i| {
            (
                format!("burst{i}"),
                format!("def f():\n    return {i}\ndef test_f():\n    assert f() == {i}\n"),
            )
        })
        .collect();

    // Warm-up job: finished, journaled, its document fetched.
    let daemon = Daemon::start_with_lanes(&state, 1, 2);
    let warm_id = submit(&daemon.addr, "demo", SOURCE);
    await_done(&daemon.addr, warm_id);
    let warm_doc = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(warm_doc.status, 200);

    // Burst-submit, then kill the daemon immediately — the burst is
    // accepted (journaled before each 202) but mostly still queued.
    let burst_ids: Vec<u64> = sources
        .iter()
        .map(|(name, source)| submit(&daemon.addr, name, source))
        .collect();
    drop(daemon); // SIGKILL, no drain

    // Restart on the same state dir: nothing accepted may be lost.
    let daemon = Daemon::start_with_lanes(&state, 1, 2);
    let restored = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}"),
        None,
    )
    .unwrap();
    assert!(
        restored.text().contains("\"status\":\"done\""),
        "warm-up job must restore as done: {}",
        restored.text()
    );
    let redoc = request_once(
        &daemon.addr,
        "GET",
        &format!("/v1/campaigns/{warm_id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(
        redoc.body, warm_doc.body,
        "restored document differs from the pre-kill bytes"
    );
    for (id, (name, source)) in burst_ids.iter().zip(&sources) {
        await_done(&daemon.addr, *id);
        let doc = request_once(
            &daemon.addr,
            "GET",
            &format!("/v1/campaigns/{id}/document"),
            None,
        )
        .unwrap();
        assert_eq!(doc.status, 200);
        // Byte-parity against an offline run of the same binary.
        let src_path = dir.join(format!("{name}.py"));
        std::fs::write(&src_path, source).unwrap();
        let offline_state = dir.join(format!("offline-{name}"));
        let status = Command::new(NFI)
            .args(["campaign", "run", "--state-dir"])
            .arg(&offline_state)
            .arg(&src_path)
            .stdout(Stdio::null())
            .status()
            .unwrap();
        assert!(status.success());
        let offline_doc = std::fs::read(offline_state.join(format!("runs/{name}.jsonl"))).unwrap();
        assert_eq!(
            doc.body, offline_doc,
            "recovered {name} differs from offline `nfi campaign run`"
        );
    }
    // New ids continue above everything the journal saw.
    let next = submit(&daemon.addr, "demo", SOURCE);
    assert!(next > *burst_ids.iter().max().unwrap());
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_flag_validation_rejects_nonsense_up_front() {
    let run = |args: &[&str]| -> (bool, String) {
        let output = Command::new(NFI).args(args).output().expect("run nfi");
        (
            output.status.success(),
            String::from_utf8_lossy(&output.stderr).to_string(),
        )
    };
    for (args, needle) in [
        (
            &["serve", "--state-dir", "/tmp/x", "--workers", "0"][..],
            "--workers expects a positive integer, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--workers", "two"],
            "--workers expects a positive integer, got `two`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--lanes", "0"],
            "--lanes expects a positive integer, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--lanes", "many"],
            "--lanes expects a positive integer, got `many`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--port", "0"],
            "--port expects a port number 1-65535, got `0`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--port", "99999"],
            "--port expects a port number 1-65535, got `99999`",
        ),
        (
            &["serve", "--state-dir", "/tmp/x", "--addr", "localhost"],
            "--addr expects ip:port",
        ),
        (
            &[
                "serve",
                "--state-dir",
                "/tmp/x",
                "--addr",
                "127.0.0.1:1",
                "--port",
                "2",
            ],
            "--addr already carries a port",
        ),
        (&["serve"], "need --state-dir"),
        (
            &["campaign", "run", "--state-dir", "/tmp/x", "--workers", "0"],
            "--workers expects a positive integer, got `0`",
        ),
        (&["store", "gc"], "need --state-dir"),
        (
            &["store", "gc", "--state-dir", "/tmp/x"],
            "store gc needs the live set named explicitly",
        ),
        (&["store"], "usage: nfi store gc"),
    ] {
        let (ok, stderr) = run(args);
        assert!(!ok, "{args:?} should fail");
        assert!(
            stderr.contains(needle),
            "{args:?} → `{stderr}` missing `{needle}`"
        );
    }
}

#[test]
fn store_gc_over_the_binary_prunes_only_dead_programs() {
    let dir = scratch("gc");
    let write_program = |name: &str, extra: &str| {
        let path = dir.join(format!("{name}.py"));
        std::fs::write(&path, format!("{SOURCE}{extra}")).unwrap();
        path
    };
    let keep = write_program("keep", "");
    let drop_py = write_program("dropme", "marker = 1\n");
    let state = dir.join("state");
    for path in [&keep, &drop_py] {
        let status = Command::new(NFI)
            .args(["campaign", "run", "--state-dir"])
            .arg(&state)
            .arg(path)
            .stdout(Stdio::null())
            .status()
            .unwrap();
        assert!(status.success());
    }
    let segments = || std::fs::read_dir(state.join("store")).unwrap().count();
    assert_eq!(segments(), 2);

    // Dry run touches nothing.
    let output = Command::new(NFI)
        .args(["store", "gc", "--dry-run", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("would remove"), "{stdout}");
    assert!(stdout.contains("dropme"), "{stdout}");
    assert_eq!(segments(), 2);

    // The sweep removes exactly the dead program's segment.
    let output = Command::new(NFI)
        .args(["store", "gc", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    assert!(output.status.success());
    assert_eq!(segments(), 1);
    // The survivor still replays warm through the binary.
    let output = Command::new(NFI)
        .args(["campaign", "run", "--state-dir"])
        .arg(&state)
        .arg(&keep)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("executed=0"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
