//! The campaign service's contract: plans are portable, shards merge
//! associatively back to the unsharded document byte-for-byte, the
//! mutant cache is deterministic under the parallel engine, and the
//! batched NLP engine equals the per-item engine.

use neural_fault_injection::core::exec::{self, ExecConfig};
use neural_fault_injection::core::service;
use neural_fault_injection::core::MutantCache;
use neural_fault_injection::pylite::MachineConfig;
use neural_fault_injection::sfi::{Campaign, CampaignSpec, Shard};
use nfi_bench::scenarios::build_scenarios;
use std::sync::Arc;

fn machine() -> MachineConfig {
    MachineConfig {
        step_budget: 200_000,
        ..MachineConfig::default()
    }
}

fn spec_for(program: &str) -> CampaignSpec {
    let p = neural_fault_injection::corpus::by_name(program).unwrap();
    service::plan_campaign(program, p.source, 7).unwrap()
}

fn exec_shard(spec: &CampaignSpec, index: usize, count: usize) -> service::ShardRun {
    service::exec_spec(
        spec,
        &machine(),
        ExecConfig::sequential().sharded(Shard { index, count }),
    )
    .unwrap()
}

#[test]
fn two_way_split_reproduces_the_unsharded_report_byte_for_byte() {
    for program in ["ecommerce", "banking", "jobqueue"] {
        let spec = spec_for(program);
        let full = service::exec_spec(&spec, &machine(), ExecConfig::sequential()).unwrap();
        let merged = service::merge(&[exec_shard(&spec, 0, 2), exec_shard(&spec, 1, 2)]).unwrap();
        assert_eq!(
            merged.encode(),
            full.encode(),
            "{program}: 2-way merge is not byte-identical"
        );
    }
}

#[test]
fn three_way_split_merges_associatively_to_the_unsharded_report() {
    let spec = spec_for("inventory");
    let full = service::exec_spec(&spec, &machine(), ExecConfig::sequential()).unwrap();
    let (a, b, c) = (
        exec_shard(&spec, 0, 3),
        exec_shard(&spec, 1, 3),
        exec_shard(&spec, 2, 3),
    );
    let left =
        service::merge(&[service::merge(&[a.clone(), b.clone()]).unwrap(), c.clone()]).unwrap();
    let right =
        service::merge(&[a.clone(), service::merge(&[b.clone(), c.clone()]).unwrap()]).unwrap();
    let flat = service::merge(&[c, a, b]).unwrap();
    assert_eq!(left.encode(), full.encode(), "left-nested merge diverged");
    assert_eq!(right.encode(), full.encode(), "right-nested merge diverged");
    assert_eq!(
        flat.encode(),
        full.encode(),
        "order-shuffled merge diverged"
    );
}

#[test]
fn shard_parse_rejects_degenerate_forms() {
    // Zero denominators, out-of-range numerators, and non-numeric
    // components must all be descriptive errors, never panics.
    assert!(Shard::parse("0/0").unwrap_err().contains("positive"));
    assert!(Shard::parse("1/0").unwrap_err().contains("positive"));
    assert!(Shard::parse("2/2").unwrap_err().contains("out of range"));
    assert!(Shard::parse("9/3").unwrap_err().contains("out of range"));
    assert!(Shard::parse("x/2").unwrap_err().contains("not a number"));
    assert!(Shard::parse("0/y").unwrap_err().contains("not a number"));
    assert!(Shard::parse("-1/2").unwrap_err().contains("not a number"));
    assert!(Shard::parse("1.5/2").unwrap_err().contains("not a number"));
    assert!(Shard::parse("12").unwrap_err().contains("i/n"));
    assert!(Shard::parse("").unwrap_err().contains("i/n"));
    assert!(Shard::parse("/").unwrap_err().contains("not a number"));
    assert_eq!(Shard::parse("0/1").unwrap(), Shard::FULL);
}

#[test]
fn merging_with_an_empty_shard_document_is_the_identity() {
    let spec = spec_for("ecommerce");
    let n = spec.units.len();
    let full = service::exec_spec(&spec, &machine(), ExecConfig::sequential()).unwrap();
    // Shard n/(n+1) covers no unit index in 0..n, so its run document
    // is a bare header with zero outcomes.
    let empty = exec_shard(&spec, n, n + 1);
    assert!(empty.outcomes.is_empty());
    let empty_doc = empty.encode();
    assert_eq!(empty_doc.lines().count(), 1, "header only");
    // It survives a text round trip and merges as the identity.
    let decoded = service::ShardRun::decode(&empty_doc).unwrap();
    let merged = service::merge(&[full.clone(), decoded]).unwrap();
    assert_eq!(merged.encode(), full.encode());
    // Identity holds in either merge order.
    let merged = service::merge(&[exec_shard(&spec, n, n + 1), full.clone()]).unwrap();
    assert_eq!(merged.encode(), full.encode());
}

#[test]
fn plan_documents_round_trip_through_text_before_execution() {
    let spec = spec_for("ecommerce");
    let reloaded = CampaignSpec::decode(&spec.encode()).unwrap();
    assert_eq!(spec, reloaded);
    let from_memory = service::exec_spec(&spec, &machine(), ExecConfig::sequential()).unwrap();
    let from_text = service::exec_spec(&reloaded, &machine(), ExecConfig::sequential()).unwrap();
    assert_eq!(from_memory.encode(), from_text.encode());
}

#[test]
fn sharded_engine_runs_match_the_full_engine_run() {
    let module = neural_fault_injection::corpus::by_name("kvcache")
        .unwrap()
        .module()
        .unwrap();
    let campaign = Campaign::full(&module);
    let full = exec::run_campaign(&campaign, &machine(), ExecConfig::sequential());
    let mut pieces = Vec::new();
    for index in 0..2 {
        let run = exec::run_campaign(
            &campaign,
            &machine(),
            ExecConfig::with_threads(4).sharded(Shard { index, count: 2 }),
        );
        pieces.extend(run.indices.into_iter().zip(run.outcomes));
    }
    pieces.sort_by_key(|(i, _)| *i);
    assert_eq!(
        pieces.into_iter().map(|(_, o)| o).collect::<Vec<_>>(),
        full.outcomes,
        "parallel 2-way shard union != sequential full run"
    );
}

#[test]
fn mutant_cache_hit_miss_counts_are_deterministic_under_par_map() {
    let module = Arc::new(
        neural_fault_injection::corpus::by_name("ecommerce")
            .unwrap()
            .module()
            .unwrap(),
    );
    let fp = neural_fault_injection::pylite::fingerprint(&module);
    let campaign = Campaign::full(&module);
    let plans = campaign.plans();

    let cache = MutantCache::new();
    let parallel = ExecConfig::with_threads(8);
    let cold: Vec<_> = exec::par_map(parallel, plans, |plan| cache.apply(&module, fp, plan));
    let after_cold = cache.stats();
    assert_eq!(
        after_cold.misses,
        plans.len() as u64,
        "cold run must miss once per plan"
    );
    assert_eq!(after_cold.hits, 0);
    assert_eq!(after_cold.entries, plans.len());

    let warm: Vec<_> = exec::par_map(parallel, plans, |plan| cache.apply(&module, fp, plan));
    let after_warm = cache.stats();
    assert_eq!(
        after_warm.misses,
        plans.len() as u64,
        "warm run must not re-apply"
    );
    assert_eq!(after_warm.hits, plans.len() as u64);

    // Hits hand back the very mutants the misses created, in order.
    for (c, w) in cold.iter().zip(warm.iter()) {
        match (c, w) {
            (Some(a), Some(b)) => assert!(Arc::ptr_eq(&a.fault, &b.fault)),
            (None, None) => {}
            other => panic!("cold/warm outcomes diverged: {other:?}"),
        }
    }
}

#[test]
fn cached_campaign_outcomes_equal_uncached_outcomes_at_any_width() {
    let module = neural_fault_injection::corpus::by_name("ratelimiter")
        .unwrap()
        .module()
        .unwrap();
    let campaign = Campaign::full(&module);
    let uncached = exec::run_campaign(
        &campaign,
        &machine(),
        ExecConfig::sequential().cached(false),
    );
    for threads in [1, 4] {
        let cached = exec::run_campaign(
            &campaign,
            &machine(),
            ExecConfig::with_threads(threads).cached(true),
        );
        assert_eq!(cached.outcomes, uncached.outcomes, "threads={threads}");
        assert_eq!(cached.report, uncached.report, "threads={threads}");
    }
}

#[test]
fn batched_nlp_equals_per_item_analysis_on_the_scenario_corpus() {
    let scenarios = build_scenarios(0);
    assert!(!scenarios.is_empty());
    let mut checked = 0usize;
    for program in neural_fault_injection::corpus::all() {
        let descriptions: Vec<&str> = scenarios
            .iter()
            .filter(|s| s.program.name == program.name)
            .map(|s| s.description.as_str())
            .collect();
        if descriptions.is_empty() {
            continue;
        }
        let module = program.module().unwrap();
        let batch = neural_fault_injection::nlp::analyze_batch(&descriptions, Some(&module));
        assert_eq!(batch.len(), descriptions.len());
        for (description, got) in descriptions.iter().zip(&batch) {
            let want = neural_fault_injection::nlp::analyze(description, Some(&module));
            assert_eq!(got, &want, "{}: diverged on {description:?}", program.name);
            checked += 1;
        }
    }
    assert!(
        checked >= 50,
        "expected a substantial corpus, checked {checked}"
    );
}
