//! Offline-vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this workspace ships
//! the exact surface the codebase uses as a path dependency: a seeded
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits (`gen`,
//! `gen_range`, `gen_bool`), and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). The generator is xoshiro256++ seeded through SplitMix64 —
//! high-quality, fast, and fully deterministic per seed. Stream values
//! differ from upstream `rand`'s StdRng (ChaCha12); nothing in the
//! workspace depends on the concrete stream, only on determinism.

/// Low-level generator interface: everything builds on `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard" range:
/// floats in `[0, 1)`, integers over their full range, fair bools.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with a uniform draw over a half-open `[lo, hi)` interval.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` required.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw (Lemire); span <= 2^64.
                let draw = rng.next_u64() as u128;
                let v = (draw * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(usize, u64, u32, i64, i32);

macro_rules! float_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_uniform_impl!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`]. The single blanket impl over
/// `Range<T>` keeps literal-type inference identical to upstream rand.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

/// The user-facing generator trait (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from a type's standard range.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ state, SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniform choice; `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([7].choose(&mut rng).is_some());
    }
}
