//! Offline-vendored subset of the `rayon` API.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors the slice of rayon it uses: `ThreadPoolBuilder` /
//! `ThreadPool::install`, and `par_iter().map(..).collect::<Vec<_>>()`
//! over slices and `usize` ranges. Execution is scoped `std::thread`
//! workers pulling indices from a shared atomic counter (the same
//! work-stealing-ish dynamic schedule rayon gives for irregular task
//! costs); results are written back by index, so collected order always
//! equals input order regardless of worker count. Swapping in upstream
//! rayon later is a one-line Cargo.toml change.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Default parallelism: the machine's available hardware threads.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker count in effect for the calling thread (set by
/// [`ThreadPool::install`], defaulting to hardware parallelism).
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(Cell::get);
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default (hardware) parallelism.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Caps worker count; `0` means hardware parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool (infallible in this implementation).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A logical pool: workers are spawned scoped per parallel call, so the
/// pool itself is just the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's width governing any `par_iter` calls
    /// made inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.threads));
        let out = op();
        CURRENT_THREADS.with(|c| c.set(prev));
        out
    }
}

/// An indexed parallel computation: `len` independent tasks addressed by
/// index. All adapters compose down to this.
pub trait IndexedParallel: Sync {
    /// Per-task output.
    type Out: Send;

    /// Task count.
    fn len(&self) -> usize;

    /// Whether there are no tasks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes task `i`.
    fn run(&self, i: usize) -> Self::Out;
}

/// Executes an indexed computation across `current_num_threads()`
/// workers, preserving input order in the output.
fn execute<P: IndexedParallel>(job: &P) -> Vec<P::Out> {
    let n = job.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(|i| job.run(i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, P::Out)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, job.run(i)));
                }
                local
            }));
        }
        for h in handles {
            buckets.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    let mut indexed: Vec<(usize, P::Out)> = buckets.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, out)| out).collect()
}

/// The parallel-iterator surface: `map` and `collect`.
pub trait ParallelIterator: IndexedParallel + Sized {
    /// Maps each task's output.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Out) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Runs the computation and collects ordered results.
    fn collect<C: FromParallelIterator<Self::Out>>(self) -> C {
        C::from_ordered(execute(&self))
    }

    /// Runs the computation for its effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Out) + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

impl<P: IndexedParallel + Sized> ParallelIterator for P {}

/// Collection from an ordered parallel result.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallel for SliceParIter<'a, T> {
    type Out = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn run(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over `0..n`.
pub struct RangeParIter {
    start: usize,
    end: usize,
}

impl IndexedParallel for RangeParIter {
    type Out = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn run(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> IndexedParallel for Map<I, F>
where
    I: IndexedParallel,
    F: Fn(I::Out) -> R + Sync,
    R: Send,
{
    type Out = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn run(&self, i: usize) -> R {
        (self.f)(self.base.run(i))
    }
}

/// `.par_iter()` on slices (and anything derefing to a slice).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: 'a;
    /// Iterator type.
    type Iter: ParallelIterator<Out = Self::Item>;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// `.into_par_iter()` for owned index ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Out = Self::Item>;

    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            end: self.end,
        }
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter_works() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn install_governs_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let v: Vec<usize> = (0..1000).collect();
        let work = |x: &usize| x.wrapping_mul(2654435761) % 97;
        let seq: Vec<usize> = {
            let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            pool.install(|| v.par_iter().map(work).collect())
        };
        let par: Vec<usize> = {
            let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
            pool.install(|| v.par_iter().map(work).collect())
        };
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
