//! Offline-vendored subset of the `criterion` API.
//!
//! Supports the `criterion_group!` / `criterion_main!` bench-target
//! shape with `Criterion::bench_function`, `Bencher::iter`, and
//! [`black_box`]. Measurement is intentionally simple — calibrated
//! repetition and a mean/min report on stdout — but the source
//! compatibility means targets written against it migrate to upstream
//! criterion unchanged once a registry is available.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark's timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    /// Target wall time per measurement.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Benchmarks a routine, printing mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: grow the iteration count until the routine fills the
        // measurement window.
        let mut iters = 1u64;
        let mut per_iter;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if b.elapsed >= self.measurement || iters >= 1 << 24 {
                break;
            }
            let target = self.measurement.as_secs_f64();
            let needed = (target / per_iter.max(1e-9)).ceil() as u64;
            iters = needed.clamp(iters * 2, iters * 16).max(iters + 1);
        }
        // Three measurement passes; report mean and best.
        let mut samples = Vec::with_capacity(3);
        for _ in 0..3 {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<40} mean {:>12}  best {:>12}  ({iters} iters/sample)",
            format_time(mean),
            format_time(best),
        );
        self
    }
}

impl Criterion {
    /// Starts a named benchmark group; ids print as `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (prefixing ids); sampling knobs are
/// accepted for API compatibility.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's measurement window is
    /// fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a routine under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
