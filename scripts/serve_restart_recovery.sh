#!/usr/bin/env bash
# Restart-recovery gauntlet for the `nfi serve` job journal: a daemon
# killed mid-queue (SIGTERM, no drain) must lose **no accepted job** —
# a restart on the same state dir re-queues the unfinished ones, keeps
# the finished ones fetchable, and every document stays byte-identical
# to an offline `nfi campaign run` of the same binary.
#
#   1. start the daemon, run one warm-up job to done, fetch its bytes;
#   2. burst-submit every remaining corpus program (each 202 means the
#      journal holds the job), then SIGTERM the daemon immediately —
#      the queue is full of accepted, unfinished work;
#   3. restart on the same state dir;
#   4. assert the warm-up job restored as done with the same document
#      bytes, every burst job completes, and each document byte-diffs
#      clean against the offline run;
#   5. assert new ids keep counting above everything pre-kill.
#
# Usage: scripts/serve_restart_recovery.sh
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

mapfile -t PROGRAMS < <("$NFI" corpus list | awk 'NR>1 {print $1}')
[ "${#PROGRAMS[@]}" -ge 3 ] || { echo "FAIL: corpus too small" >&2; exit 1; }
WARMUP=${PROGRAMS[0]}
BURST=("${PROGRAMS[@]:1}")

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start daemon, finish warm-up job ($WARMUP) =="
start_daemon "$WORK/serve.log" --state-dir "$WORK/state" --lanes 2 --workers 1
echo "daemon at $ADDR"
reply=$(req POST /v1/campaigns "{\"program\":\"$WARMUP\"}")
WARM_ID=$(json_field "$reply" id)
await "$WARM_ID" >/dev/null
req GET "/v1/campaigns/$WARM_ID/document" > "$WORK/warmup.prekill.jsonl"

echo "== burst-submit ${#BURST[@]} programs, SIGTERM mid-queue =="
declare -A JOB_ID
for p in "${BURST[@]}"; do
  reply=$(req POST /v1/campaigns "{\"program\":\"$p\"}")
  JOB_ID[$p]=$(json_field "$reply" id)
  [ -n "${JOB_ID[$p]}" ] || { echo "FAIL: no job id in $reply" >&2; exit 1; }
done
MAX_ID=$(printf '%s\n' "${JOB_ID[@]}" | sort -n | tail -1)
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=

echo "== restart on the same state dir =="
start_daemon "$WORK/serve.log" --state-dir "$WORK/state" --lanes 2 --workers 1
echo "daemon back at $ADDR"

restored=$(req GET "/v1/campaigns/$WARM_ID")
[ "$(json_field "$restored" status)" = done ] \
  || { echo "FAIL: warm-up job not restored as done: $restored" >&2; exit 1; }
req GET "/v1/campaigns/$WARM_ID/document" > "$WORK/warmup.postkill.jsonl"
diff -q "$WORK/warmup.prekill.jsonl" "$WORK/warmup.postkill.jsonl" >/dev/null \
  || { echo "FAIL: restored warm-up document differs from pre-kill bytes" >&2; exit 1; }

echo "== every accepted job completes =="
for p in "${BURST[@]}"; do
  await "${JOB_ID[$p]}" >/dev/null
  req GET "/v1/campaigns/${JOB_ID[$p]}/document" > "$WORK/$p.served.jsonl"
done

echo "== offline parity =="
"$NFI" campaign run --state-dir "$WORK/offline" --workers 1 >/dev/null
for p in "${BURST[@]}"; do
  if ! diff -q "$WORK/$p.served.jsonl" "$WORK/offline/runs/$p.jsonl" >/dev/null; then
    echo "FAIL: recovered $p document differs from offline campaign run" >&2
    diff "$WORK/$p.served.jsonl" "$WORK/offline/runs/$p.jsonl" >&2 || true
    exit 1
  fi
done
diff -q "$WORK/warmup.prekill.jsonl" "$WORK/offline/runs/$WARMUP.jsonl" >/dev/null \
  || { echo "FAIL: warm-up document differs from offline campaign run" >&2; exit 1; }

echo "== ids keep counting past the journal =="
reply=$(req POST /v1/campaigns "{\"program\":\"$WARMUP\"}")
NEXT_ID=$(json_field "$reply" id)
[ "$NEXT_ID" -gt "$MAX_ID" ] \
  || { echo "FAIL: post-restart id $NEXT_ID reused journal space (max was $MAX_ID)" >&2; exit 1; }
await "$NEXT_ID" >/dev/null

metrics=$(req GET /v1/metrics)
echo "metrics: $metrics"
echo "serve restart recovery: $((${#BURST[@]} + 1)) accepted jobs survived SIGTERM;" \
     "finished document byte-stable; ${#BURST[@]} queued jobs completed byte-identical to offline"
