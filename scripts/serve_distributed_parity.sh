#!/usr/bin/env bash
# Distributed-execution parity gauntlet: documents produced by a
# scheduler daemon dispatching to remote `nfi worker` nodes must be
# byte-identical to an offline `nfi campaign run` — including when a
# worker is SIGKILLed mid-campaign.
#
#   1. start the daemon with auth on and a short heartbeat timeout;
#   2. start three localhost workers authenticated with the dedicated
#      `worker:` tenant token (one via --token-file to exercise the
#      tenant:token form) and wait until the fleet reports all three;
#   3. submit every corpus program as tenant `ci`;
#   4. SIGKILL one worker mid-run — requeue + the surviving workers
#      must make the loss invisible;
#   5. await every job, fetch every document, and byte-diff each
#      against an offline `nfi campaign run --as ci:<program>`;
#   6. assert the fleet counters on /v1/metrics (registrations,
#      dispatches, completions, the lost worker) and the `nfi_fleet_*`
#      families on the Prometheus page.
#
# Usage: scripts/serve_distributed_parity.sh [program ...]
#        (default: every corpus program)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  mapfile -t PROGRAMS < <("$NFI" corpus list | awk 'NR>1 {print $1}')
fi
[ "${#PROGRAMS[@]}" -ge 1 ] || { echo "FAIL: no corpus programs" >&2; exit 1; }

WORK=$(mktemp -d)
SERVE_PID=
WORKER_PIDS=()
cleanup() {
  for pid in "${WORKER_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start scheduler daemon =="
printf 'ci:parity-ci-token\nworker:fleet-worker-token\n' > "$WORK/tokens"
start_daemon "$WORK/serve.log" --state-dir "$WORK/served" --workers 2 --lanes 4 \
  --auth-token-file "$WORK/tokens" --heartbeat-timeout-ms 1500 \
  --log-level debug
echo "daemon at $ADDR"
AUTH_TOKEN=parity-ci-token
req GET /healthz >/dev/null

echo "== start 3 workers =="
# Campaign tenants must not see the fleet surface at all.
if curl -sS -o /dev/null -w '%{http_code}' -X POST \
  -H "Authorization: Bearer $AUTH_TOKEN" -d '{}' \
  "http://$ADDR/v1/workers" | grep -qv 404; then
  echo "FAIL: a campaign tenant could reach POST /v1/workers" >&2
  exit 1
fi
printf 'worker:fleet-worker-token\n' > "$WORK/worker-token"
"$NFI" worker --addr "$ADDR" --token-file "$WORK/worker-token" \
  --name w1 --threads 1 --poll-ms 50 > "$WORK/w1.log" 2>&1 &
WORKER_PIDS+=($!)
for i in 2 3; do
  "$NFI" worker --addr "$ADDR" --token fleet-worker-token \
    --name "w$i" --threads 1 --poll-ms 50 > "$WORK/w$i.log" 2>&1 &
  WORKER_PIDS+=($!)
done
for _ in $(seq 1 100); do
  live=$(json_field "$(req GET /v1/metrics)" workers_live)
  [ "$live" = 3 ] && break
  sleep 0.1
done
[ "$live" = 3 ] || { echo "FAIL: fleet never reached 3 live workers (got ${live:-none})" >&2; cat "$WORK"/w*.log >&2; exit 1; }
echo "3 workers live"

echo "== submit ${#PROGRAMS[@]} corpus programs =="
declare -A JOB_ID
for p in "${PROGRAMS[@]}"; do
  reply=$(req POST /v1/campaigns "{\"program\":\"$p\"}")
  JOB_ID[$p]=$(json_field "$reply" id)
  [ -n "${JOB_ID[$p]}" ] || { echo "FAIL: no job id in $reply" >&2; exit 1; }
done

echo "== SIGKILL worker w3 mid-run =="
sleep 0.3
kill -9 "${WORKER_PIDS[2]}"

for p in "${PROGRAMS[@]}"; do
  echo "== await + fetch $p =="
  await "${JOB_ID[$p]}" >/dev/null
  req GET "/v1/campaigns/${JOB_ID[$p]}/document" > "$WORK/$p.served.jsonl"
done

echo "== offline parity =="
for p in "${PROGRAMS[@]}"; do
  "$NFI" campaign run --state-dir "$WORK/offline" --workers 2 \
    --program "$p" --as "ci:$p" >/dev/null
done
for p in "${PROGRAMS[@]}"; do
  if ! diff -q "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >/dev/null; then
    echo "FAIL: remote-worker $p document differs from offline campaign run --as ci:$p" >&2
    diff "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "== fleet counters =="
metrics=$(req GET /v1/metrics)
echo "metrics: $metrics"
echo "$metrics" | grep -q '"fleet":{' \
  || { echo "FAIL: /v1/metrics carries no fleet section" >&2; exit 1; }
[ "$(json_field "$metrics" workers_live)" = 2 ] \
  || { echo "FAIL: expected 2 live workers after the kill" >&2; exit 1; }
[ "$(json_field "$metrics" workers_lost)" -ge 1 ] \
  || { echo "FAIL: the killed worker was never marked lost" >&2; exit 1; }
[ "$(json_field "$metrics" registrations)" -ge 3 ] \
  || { echo "FAIL: expected at least 3 registrations" >&2; exit 1; }
[ "$(json_field "$metrics" assignments_dispatched)" -ge 1 ] \
  || { echo "FAIL: no assignments were dispatched remotely" >&2; exit 1; }
completed=$(json_field "$metrics" assignments_completed)
[ "$completed" -ge 1 ] \
  || { echo "FAIL: no assignments were completed by workers" >&2; exit 1; }
echo "fleet executed $completed assignment(s) across the corpus"

echo "== Prometheus fleet families =="
curl -sS -H "Authorization: Bearer $AUTH_TOKEN" "http://$ADDR/metrics" > "$WORK/metrics.prom"
grep -q '^nfi_fleet_workers{state="live"} 2$' "$WORK/metrics.prom" \
  || { echo "FAIL: nfi_fleet_workers live gauge is not 2" >&2; exit 1; }
for family in nfi_fleet_events_total nfi_fleet_assignments_total; do
  grep -q "^$family" "$WORK/metrics.prom" \
    || { echo "FAIL: /metrics misses $family" >&2; exit 1; }
done

echo "== bearer tokens must not leak into the daemon log =="
if grep -qE 'parity-ci-token|fleet-worker-token' "$WORK/serve.log"; then
  echo "FAIL: a bearer token leaked into the daemon log" >&2
  exit 1
fi

echo "distributed parity: ${#PROGRAMS[@]} program(s) byte-identical via 3 remote workers (one SIGKILLed mid-run); fleet counters + nfi_fleet_* families present; no token leak"
