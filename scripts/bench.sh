#!/usr/bin/env bash
# E7 throughput bench: builds the release binary, runs the campaign /
# LM-kernel / pipeline throughput drivers, and emits BENCH_e7.json.
#
# Usage: scripts/bench.sh [--quick] [--threads N] [--out PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
cargo build --release --bin nfi
exec ./target/release/nfi bench "${ARGS[@]}"
