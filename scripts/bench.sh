#!/usr/bin/env bash
# E7 throughput bench: runs the campaign / LM-kernel / pipeline /
# store / serve throughput drivers and emits BENCH_e7.json. Reuses an
# already built release binary when present (CI downloads it as an
# artifact), building it otherwise.
#
# Usage: scripts/bench.sh [--quick] [--threads N] [--lanes N] [--out PATH]
set -euo pipefail
cd "$(dirname "$0")/.."

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi
exec "$NFI" bench "$@"
