# Shared helpers for the serve CI gauntlets — sourced, not executed.
# Callers set NFI (path of the release binary) and manage their own
# WORK dir and cleanup trap; `start_daemon` sets SERVE_PID and ADDR,
# and the HTTP helpers talk to whatever $ADDR currently names. When
# AUTH_TOKEN is set, every request carries it as a bearer token.

req() { # req <method> <path> [data] -> body (status checked)
  # `curl -f` would hide response bodies; check status codes explicitly.
  local method=$1 path=$2 data=${3-}
  local out status body
  out=$(curl -sS -X "$method" ${AUTH_TOKEN:+-H "Authorization: Bearer $AUTH_TOKEN"} \
    ${data:+-d "$data"} -w $'\n%{http_code}' "http://$ADDR$path")
  status=${out##*$'\n'}
  body=${out%$'\n'*}
  case "$status" in
    2*) printf '%s' "$body" ;;
    *) echo "FAIL: $method $path -> HTTP $status: $body" >&2; exit 1 ;;
  esac
}

req_raw() { # req_raw <method> <path> [data] -> sets STATUS, BODY, HDRS
  # Like req, but any status is acceptable — overload gauntlets *want*
  # to see 4xx/5xx sheds. Response headers land in the file $HDRS.
  local method=$1 path=$2 data=${3-}
  HDRS="${WORK:-/tmp}/last-headers"
  local out
  out=$(curl -sS -X "$method" ${AUTH_TOKEN:+-H "Authorization: Bearer $AUTH_TOKEN"} \
    ${data:+-d "$data"} -D "$HDRS" -w $'\n%{http_code}' "http://$ADDR$path")
  STATUS=${out##*$'\n'}
  BODY=${out%$'\n'*}
}

json_field() { # json_field <json> <field> -> value (numbers/strings)
  printf '%s' "$1" | grep -o "\"$2\":[^,}]*" | head -1 | cut -d: -f2- | tr -d '"'
}

await() { # await <id> -> final status JSON (fails on failed/timeout)
  local id=$1 status text
  for _ in $(seq 1 600); do
    text=$(req GET "/v1/campaigns/$id")
    status=$(json_field "$text" status)
    case "$status" in
      done) printf '%s' "$text"; return 0 ;;
      failed) echo "FAIL: job $id failed: $text" >&2; exit 1 ;;
      *) sleep 0.5 ;;
    esac
  done
  echo "FAIL: job $id never finished: $text" >&2
  exit 1
}

start_daemon() { # start_daemon <log-file> <serve-arg>... -> SERVE_PID, ADDR
  local log=$1
  shift
  : > "$log"
  "$NFI" serve --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
  SERVE_PID=$!
  ADDR=
  for _ in $(seq 1 50); do
    # The daemon prints its resolved ephemeral address on line 1.
    ADDR=$(grep -o 'http://[0-9.:]*' "$log" | head -1 | sed 's|http://||') || true
    [ -n "${ADDR:-}" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "${ADDR:-}" ] || { echo "FAIL: daemon never reported an address" >&2; exit 1; }
}
