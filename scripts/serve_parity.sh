#!/usr/bin/env bash
# Serve-parity check: documents served by the `nfi serve` daemon (with
# its spawned `nfi campaign exec --shard i/n` process workers) must be
# byte-identical to an offline `nfi campaign run --state-dir` of the
# same binary — with the full hardening stack enabled: bearer auth,
# rate limiting, queue deadlines, and four scheduler lanes.
#
#   1. start the daemon on an ephemeral port with auth + limits on;
#   2. submit two corpus programs over HTTP as tenant `ci`, poll both
#      to completion (failing on any non-2xx along the way);
#   3. fetch each document and byte-diff it against an offline
#      `nfi campaign run --as ci:<program>` of the same store segment;
#   4. resubmit one program — the store-warm job must execute 0 units
#      and serve the same bytes (its /trace span tree must agree);
#   5. scrape GET /metrics and conformance-check the Prometheus page;
#   6. grep the daemon's debug-level log: the bearer token must never
#      appear in any diagnostic or access-log line.
#
# Usage: scripts/serve_parity.sh [program ...]   (default: banking jobqueue)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  PROGRAMS=(banking jobqueue)
fi

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start hardened daemon =="
printf 'ci:parity-ci-token\n' > "$WORK/tokens"
# Debug level turns the per-request access log on — the leak check
# below must hold even on the chattiest production-relevant level.
start_daemon "$WORK/serve.log" --state-dir "$WORK/served" --workers 2 --lanes 4 \
  --auth-token-file "$WORK/tokens" --rate-limit 200 --deadline-ms 300000 \
  --max-queue 64 --tenant-max-queued 32 --log-level debug
echo "daemon at $ADDR"
req GET /healthz >/dev/null
# No token -> the edge must refuse before the router ever sees the path.
if curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/v1/metrics" | grep -qv 401; then
  echo "FAIL: unauthenticated /v1/metrics was not refused with 401" >&2
  exit 1
fi
AUTH_TOKEN=parity-ci-token

declare -A JOB_ID
for p in "${PROGRAMS[@]}"; do
  echo "== submit $p =="
  reply=$(req POST /v1/campaigns "{\"program\":\"$p\"}")
  JOB_ID[$p]=$(json_field "$reply" id)
  [ -n "${JOB_ID[$p]}" ] || { echo "FAIL: no job id in $reply" >&2; exit 1; }
done

for p in "${PROGRAMS[@]}"; do
  echo "== await + fetch $p =="
  await "${JOB_ID[$p]}" >/dev/null
  req GET "/v1/campaigns/${JOB_ID[$p]}/document" > "$WORK/$p.served.jsonl"
done

echo "== offline parity (tenant-scoped) =="
for p in "${PROGRAMS[@]}"; do
  # The daemon namespaced each job to `ci:<program>`; `--as` reproduces
  # exactly that store segment offline.
  "$NFI" campaign run --state-dir "$WORK/offline" --workers 2 \
    --program "$p" --as "ci:$p" >/dev/null
done
for p in "${PROGRAMS[@]}"; do
  if ! diff -q "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >/dev/null; then
    echo "FAIL: served $p document differs from offline campaign run --as ci:$p" >&2
    diff "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "== store-warm resubmission of ${PROGRAMS[0]} =="
reply=$(req POST /v1/campaigns "{\"program\":\"${PROGRAMS[0]}\"}")
warm_id=$(json_field "$reply" id)
warm=$(await "$warm_id")
[ "$(json_field "$warm" executed)" = 0 ] \
  || { echo "FAIL: warm job executed units: $warm" >&2; exit 1; }
req GET "/v1/campaigns/$warm_id/document" > "$WORK/warm.jsonl"
diff -q "$WORK/warm.jsonl" "$WORK/${PROGRAMS[0]}.served.jsonl" >/dev/null \
  || { echo "FAIL: warm served document differs" >&2; exit 1; }

echo "== warm job trace =="
trace=$(req GET "/v1/campaigns/$warm_id/trace")
echo "$trace" | grep -q '"executed":0' \
  || { echo "FAIL: warm trace does not report executed:0: $trace" >&2; exit 1; }
echo "$trace" | grep -q '"trace_id":"' \
  || { echo "FAIL: warm trace carries no trace id: $trace" >&2; exit 1; }
for span in accept plan queue_wait run store_replay merge persist; do
  echo "$trace" | grep -q "\"name\":\"$span\"" \
    || { echo "FAIL: warm trace misses the $span span: $trace" >&2; exit 1; }
done

metrics=$(req GET /v1/metrics)
echo "metrics: $metrics"
[ "$(json_field "$metrics" unauthorized)" -ge 1 ] \
  || { echo "FAIL: the 401 probe never reached the unauthorized counter" >&2; exit 1; }
echo "$metrics" | grep -q '"latency":' \
  || { echo "FAIL: /v1/metrics carries no latency section" >&2; exit 1; }

echo "== Prometheus exposition =="
prom_headers="$WORK/prom-headers"
curl -sS -D "$prom_headers" -H "Authorization: Bearer $AUTH_TOKEN" \
  "http://$ADDR/metrics" > "$WORK/metrics.prom"
grep -qi '^content-type: text/plain; version=0.0.4' "$prom_headers" \
  || { echo "FAIL: /metrics content type is not the 0.0.4 text format" >&2; exit 1; }
# Conformance: every sample line is `name{labels} value`, every family
# that has samples also has its # TYPE line, histograms end on +Inf.
if grep -v '^#' "$WORK/metrics.prom" | grep -v '^$' \
  | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+$'; then
  echo "FAIL: malformed Prometheus sample line(s):" >&2
  grep -v '^#' "$WORK/metrics.prom" | grep -v '^$' \
    | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+$' >&2
  exit 1
fi
for name in $(grep -v '^#' "$WORK/metrics.prom" | grep -v '^$' \
  | sed -E 's/^([a-zA-Z_:][a-zA-Z0-9_:]*).*/\1/' \
  | sed -E 's/_(bucket|sum|count)$//' | sort -u); do
  grep -Eq "^# TYPE ($name|${name}_[a-z]+) " "$WORK/metrics.prom" \
    || { echo "FAIL: sampled family $name has no # TYPE line" >&2; exit 1; }
done
for family in nfi_jobs_submitted_total nfi_jobs_completed_total \
  nfi_store_units_total nfi_store_replayed_total nfi_edge_rejections_total \
  nfi_cache_hits_total nfi_queue_depth; do
  grep -q "^$family" "$WORK/metrics.prom" \
    || { echo "FAIL: /metrics misses $family" >&2; exit 1; }
done
grep -q '^# TYPE nfi_http_request_duration_seconds histogram' "$WORK/metrics.prom" \
  || { echo "FAIL: /metrics misses the request-duration histogram" >&2; exit 1; }
grep -q 'nfi_http_request_duration_seconds_bucket{.*le="+Inf"' "$WORK/metrics.prom" \
  || { echo "FAIL: request-duration histogram has no +Inf bucket" >&2; exit 1; }
grep -q '^nfi_phase_duration_seconds_count{phase="store_replay"' "$WORK/metrics.prom" \
  || { echo "FAIL: /metrics misses the store_replay phase histogram" >&2; exit 1; }

echo "== bearer token must not leak into the daemon log =="
# The daemon ran at debug (access log on) and handled authed, 401, and
# malformed traffic; its combined stdout+stderr must never contain the
# token value.
if grep -q "parity-ci-token" "$WORK/serve.log"; then
  echo "FAIL: bearer token leaked into the daemon log:" >&2
  grep -n "parity-ci-token" "$WORK/serve.log" >&2
  exit 1
fi
grep -q '"event":"http_request"' "$WORK/serve.log" \
  || { echo "FAIL: debug level produced no access-log lines" >&2; exit 1; }

echo "serve parity: ${#PROGRAMS[@]} program(s) byte-identical served (auth + limits + 4 lanes) vs offline --as; warm resubmission executed 0 units; trace + /metrics checks passed; no token leak at debug level"
