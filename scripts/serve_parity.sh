#!/usr/bin/env bash
# Serve-parity check: documents served by the `nfi serve` daemon (with
# its spawned `nfi campaign exec --shard i/n` process workers) must be
# byte-identical to an offline `nfi campaign run --state-dir` of the
# same binary — with the full hardening stack enabled: bearer auth,
# rate limiting, queue deadlines, and four scheduler lanes.
#
#   1. start the daemon on an ephemeral port with auth + limits on;
#   2. submit two corpus programs over HTTP as tenant `ci`, poll both
#      to completion (failing on any non-2xx along the way);
#   3. fetch each document and byte-diff it against an offline
#      `nfi campaign run --as ci:<program>` of the same store segment;
#   4. resubmit one program — the store-warm job must execute 0 units
#      and serve the same bytes.
#
# Usage: scripts/serve_parity.sh [program ...]   (default: banking jobqueue)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  PROGRAMS=(banking jobqueue)
fi

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start hardened daemon =="
printf 'ci:parity-ci-token\n' > "$WORK/tokens"
start_daemon "$WORK/serve.log" --state-dir "$WORK/served" --workers 2 --lanes 4 \
  --auth-token-file "$WORK/tokens" --rate-limit 200 --deadline-ms 300000 \
  --max-queue 64 --tenant-max-queued 32
echo "daemon at $ADDR"
req GET /healthz >/dev/null
# No token -> the edge must refuse before the router ever sees the path.
if curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/v1/metrics" | grep -qv 401; then
  echo "FAIL: unauthenticated /v1/metrics was not refused with 401" >&2
  exit 1
fi
AUTH_TOKEN=parity-ci-token

declare -A JOB_ID
for p in "${PROGRAMS[@]}"; do
  echo "== submit $p =="
  reply=$(req POST /v1/campaigns "{\"program\":\"$p\"}")
  JOB_ID[$p]=$(json_field "$reply" id)
  [ -n "${JOB_ID[$p]}" ] || { echo "FAIL: no job id in $reply" >&2; exit 1; }
done

for p in "${PROGRAMS[@]}"; do
  echo "== await + fetch $p =="
  await "${JOB_ID[$p]}" >/dev/null
  req GET "/v1/campaigns/${JOB_ID[$p]}/document" > "$WORK/$p.served.jsonl"
done

echo "== offline parity (tenant-scoped) =="
for p in "${PROGRAMS[@]}"; do
  # The daemon namespaced each job to `ci:<program>`; `--as` reproduces
  # exactly that store segment offline.
  "$NFI" campaign run --state-dir "$WORK/offline" --workers 2 \
    --program "$p" --as "ci:$p" >/dev/null
done
for p in "${PROGRAMS[@]}"; do
  if ! diff -q "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >/dev/null; then
    echo "FAIL: served $p document differs from offline campaign run --as ci:$p" >&2
    diff "$WORK/$p.served.jsonl" "$WORK/offline/runs/ci:$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "== store-warm resubmission of ${PROGRAMS[0]} =="
reply=$(req POST /v1/campaigns "{\"program\":\"${PROGRAMS[0]}\"}")
warm_id=$(json_field "$reply" id)
warm=$(await "$warm_id")
[ "$(json_field "$warm" executed)" = 0 ] \
  || { echo "FAIL: warm job executed units: $warm" >&2; exit 1; }
req GET "/v1/campaigns/$warm_id/document" > "$WORK/warm.jsonl"
diff -q "$WORK/warm.jsonl" "$WORK/${PROGRAMS[0]}.served.jsonl" >/dev/null \
  || { echo "FAIL: warm served document differs" >&2; exit 1; }

metrics=$(req GET /v1/metrics)
echo "metrics: $metrics"
[ "$(json_field "$metrics" unauthorized)" -ge 1 ] \
  || { echo "FAIL: the 401 probe never reached the unauthorized counter" >&2; exit 1; }
echo "serve parity: ${#PROGRAMS[@]} program(s) byte-identical served (auth + limits + 4 lanes) vs offline --as; warm resubmission executed 0 units"
