#!/usr/bin/env bash
# Concurrency-parity gauntlet for `nfi serve --lanes`: with four
# scheduler lanes draining the queue, a burst of every corpus program
# (plus a duplicate same-program submission racing the original) must
# produce documents byte-identical to an offline `nfi campaign run` of
# the same binary — concurrency may reorder work, never change bytes.
#
#   1. start the daemon with --lanes 4 on an ephemeral port;
#   2. submit every corpus program in one burst, plus the first
#      program a second time (the duplicate exercises the
#      per-(program, machine-fp) segment lock);
#   3. poll everything to completion, fetch every document;
#   4. byte-diff each against the offline run;
#   5. assert the duplicate pair executed its units exactly once
#      between them (lock held: one runs cold, the other replays) and
#      served identical bytes — a corrupted segment would fail both.
#
# Usage: scripts/serve_concurrency_parity.sh [lanes]   (default: 4)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

LANES=${1:-4}
mapfile -t PROGRAMS < <("$NFI" corpus list | awk 'NR>1 {print $1}')
[ "${#PROGRAMS[@]}" -ge 2 ] || { echo "FAIL: corpus too small" >&2; exit 1; }

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start daemon (--lanes $LANES) =="
start_daemon "$WORK/serve.log" --state-dir "$WORK/served" --lanes "$LANES" --workers 1
echo "daemon at $ADDR"

echo "== burst-submit ${#PROGRAMS[@]} programs + 1 duplicate =="
declare -A JOB_ID
for p in "${PROGRAMS[@]}"; do
  reply=$(req POST /v1/campaigns "{\"program\":\"$p\"}")
  JOB_ID[$p]=$(json_field "$reply" id)
  [ -n "${JOB_ID[$p]}" ] || { echo "FAIL: no job id in $reply" >&2; exit 1; }
done
DUP=${PROGRAMS[0]}
reply=$(req POST /v1/campaigns "{\"program\":\"$DUP\"}")
DUP_ID=$(json_field "$reply" id)

declare -A STATUS
for p in "${PROGRAMS[@]}"; do
  STATUS[$p]=$(await "${JOB_ID[$p]}")
  req GET "/v1/campaigns/${JOB_ID[$p]}/document" > "$WORK/$p.served.jsonl"
done
DUP_STATUS=$(await "$DUP_ID")
req GET "/v1/campaigns/$DUP_ID/document" > "$WORK/dup.served.jsonl"

echo "== offline parity (all programs) =="
"$NFI" campaign run --state-dir "$WORK/offline" --workers 1 >/dev/null
for p in "${PROGRAMS[@]}"; do
  if ! diff -q "$WORK/$p.served.jsonl" "$WORK/offline/runs/$p.jsonl" >/dev/null; then
    echo "FAIL: lane-served $p document differs from offline campaign run" >&2
    diff "$WORK/$p.served.jsonl" "$WORK/offline/runs/$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "== duplicate same-program pair: single execution, identical bytes =="
units=$(json_field "${STATUS[$DUP]}" units)
exec_a=$(json_field "${STATUS[$DUP]}" executed)
exec_b=$(json_field "$DUP_STATUS" executed)
if [ "$((exec_a + exec_b))" -ne "$units" ]; then
  echo "FAIL: duplicate $DUP jobs executed $exec_a + $exec_b units of $units —" \
       "the segment lock let them double-run or corrupt the segment" >&2
  exit 1
fi
diff -q "$WORK/dup.served.jsonl" "$WORK/$DUP.served.jsonl" >/dev/null \
  || { echo "FAIL: duplicate $DUP documents differ" >&2; exit 1; }

metrics=$(req GET /v1/metrics)
case "$metrics" in
  *"\"lanes\":$LANES"*) ;;
  *) echo "FAIL: metrics do not report lanes=$LANES: $metrics" >&2; exit 1 ;;
esac
echo "metrics: $metrics"
echo "serve concurrency parity: ${#PROGRAMS[@]} programs over $LANES lanes byte-identical" \
     "to offline; duplicate pair executed $exec_a+$exec_b of $units units exactly once"
