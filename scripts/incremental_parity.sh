#!/usr/bin/env bash
# Incremental-store parity check:
#
#   1. cold-run a small program set through `nfi campaign run` — every
#      unit executes;
#   2. warm re-run with unchanged sources — zero units execute and the
#      merged documents are byte-identical to the cold run's;
#   3. edit one program (one appended line), re-run — only that
#      program's units re-execute, and its document is byte-identical
#      to a from-scratch run of the edited source.
#
# Usage: scripts/incremental_parity.sh [program ...]
#        (default: ecommerce banking jobqueue; the first named program
#         is the one that gets edited)
set -euo pipefail
cd "$(dirname "$0")/.."

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  PROGRAMS=(ecommerce banking jobqueue)
fi
EDITED="${PROGRAMS[0]}"

mkdir -p "$WORK/src"
FILES=()
for p in "${PROGRAMS[@]}"; do
  "$NFI" corpus show "$p" > "$WORK/src/$p.py"
  FILES+=("$WORK/src/$p.py")
done

# `run program=<name> ... <field>=<n> ...` -> the numeric field value.
field() { # field <log> <program> <field>
  awk -v p="run program=$2" -v f="$3" \
    '$0 ~ p { for (i = 1; i <= NF; i++) if (split($i, kv, "=") == 2 && kv[1] == f) print kv[2] }' \
    "$1"
}

echo "== cold run =="
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/cold.log"
mkdir -p "$WORK/cold-docs"
for p in "${PROGRAMS[@]}"; do
  [ "$(field "$WORK/cold.log" "$p" replayed)" = 0 ] \
    || { echo "FAIL: $p cold run replayed units from an empty store" >&2; exit 1; }
  [ "$(field "$WORK/cold.log" "$p" executed)" -gt 0 ] \
    || { echo "FAIL: $p cold run executed nothing" >&2; exit 1; }
  cp "$WORK/state/runs/$p.jsonl" "$WORK/cold-docs/$p.jsonl"
done

echo "== warm re-run (unchanged sources) =="
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/warm.log"
for p in "${PROGRAMS[@]}"; do
  [ "$(field "$WORK/warm.log" "$p" executed)" = 0 ] \
    || { echo "FAIL: $p warm run re-executed units with unchanged sources" >&2; exit 1; }
  if ! diff -q "$WORK/cold-docs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >/dev/null; then
    echo "FAIL: $p warm document differs from the cold run" >&2
    diff "$WORK/cold-docs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "== edit $EDITED, incremental re-run =="
echo "edited_marker = 1" >> "$WORK/src/$EDITED.py"
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/edit.log"
for p in "${PROGRAMS[@]}"; do
  units=$(field "$WORK/edit.log" "$p" units)
  executed=$(field "$WORK/edit.log" "$p" executed)
  if [ "$p" = "$EDITED" ]; then
    [ "$executed" = "$units" ] \
      || { echo "FAIL: edited $p executed $executed of $units units" >&2; exit 1; }
  else
    [ "$executed" = 0 ] \
      || { echo "FAIL: untouched $p re-executed $executed units after editing $EDITED" >&2; exit 1; }
  fi
done

echo "== from-scratch parity of the edited corpus =="
"$NFI" campaign run --state-dir "$WORK/scratch" "${FILES[@]}" >/dev/null
for p in "${PROGRAMS[@]}"; do
  if ! diff -q "$WORK/scratch/runs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >/dev/null; then
    echo "FAIL: $p incremental document differs from a from-scratch run" >&2
    diff "$WORK/scratch/runs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >&2 || true
    exit 1
  fi
done

echo "incremental parity: warm run executed 0 units; only $EDITED re-executed after its edit; all documents byte-identical"
