#!/usr/bin/env bash
# Incremental-store parity check:
#
#   1. cold-run a small program set through `nfi campaign run` — every
#      unit executes;
#   2. warm re-run with unchanged sources — zero units execute and the
#      merged documents are byte-identical to the cold run's;
#   3. edit matrix against the first program, each cycle byte-diffed
#      against a from-scratch run of the same sources:
#        a. comment-only edit — the canonical printer strips comments,
#           so the module fingerprint is unchanged and zero units
#           re-execute (plain warm fast path);
#        b. one-function body edit (semantics-preserving `+ 0`) — only
#           that function's units re-execute, the rest anchor-replay
#           from the prior segment (ecommerce only; skipped when the
#           first program is something else);
#        c. added function — only the new function's units execute,
#           every pre-existing unit replays.
#
# Usage: scripts/incremental_parity.sh [program ...]
#        (default: ecommerce banking jobqueue; the first named program
#         is the one that gets edited)
set -euo pipefail
cd "$(dirname "$0")/.."

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  PROGRAMS=(ecommerce banking jobqueue)
fi
EDITED="${PROGRAMS[0]}"

mkdir -p "$WORK/src"
FILES=()
for p in "${PROGRAMS[@]}"; do
  "$NFI" corpus show "$p" > "$WORK/src/$p.py"
  FILES+=("$WORK/src/$p.py")
done

# `run program=<name> ... <field>=<n> ...` -> the numeric field value.
field() { # field <log> <program> <field>
  awk -v p="run program=$2" -v f="$3" \
    '$0 ~ p { for (i = 1; i <= NF; i++) if (split($i, kv, "=") == 2 && kv[1] == f) print kv[2] }' \
    "$1"
}

echo "== cold run =="
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/cold.log"
mkdir -p "$WORK/cold-docs"
for p in "${PROGRAMS[@]}"; do
  [ "$(field "$WORK/cold.log" "$p" replayed)" = 0 ] \
    || { echo "FAIL: $p cold run replayed units from an empty store" >&2; exit 1; }
  [ "$(field "$WORK/cold.log" "$p" executed)" -gt 0 ] \
    || { echo "FAIL: $p cold run executed nothing" >&2; exit 1; }
  cp "$WORK/state/runs/$p.jsonl" "$WORK/cold-docs/$p.jsonl"
done

echo "== warm re-run (unchanged sources) =="
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/warm.log"
for p in "${PROGRAMS[@]}"; do
  [ "$(field "$WORK/warm.log" "$p" executed)" = 0 ] \
    || { echo "FAIL: $p warm run re-executed units with unchanged sources" >&2; exit 1; }
  if ! diff -q "$WORK/cold-docs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >/dev/null; then
    echo "FAIL: $p warm document differs from the cold run" >&2
    diff "$WORK/cold-docs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >&2 || true
    exit 1
  fi
done

# Every program other than the edited one must stay fully warm.
check_untouched() { # check_untouched <log> <phase>
  for p in "${PROGRAMS[@]}"; do
    [ "$p" = "$EDITED" ] && continue
    [ "$(field "$1" "$p" executed)" = 0 ] \
      || { echo "FAIL: untouched $p re-executed units after the $2 edit" >&2; exit 1; }
  done
}

# Byte-diff every incremental document against a from-scratch run of
# the current sources in a fresh state dir.
check_scratch_parity() { # check_scratch_parity <scratch-dir> <phase>
  "$NFI" campaign run --state-dir "$1" "${FILES[@]}" >/dev/null
  for p in "${PROGRAMS[@]}"; do
    if ! diff -q "$1/runs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >/dev/null; then
      echo "FAIL: $p incremental document differs from a from-scratch run after the $2 edit" >&2
      diff "$1/runs/$p.jsonl" "$WORK/state/runs/$p.jsonl" >&2 || true
      exit 1
    fi
  done
}

echo "== edit matrix a: comment-only edit to $EDITED =="
echo "# parity probe: comments never reach the canonical form" >> "$WORK/src/$EDITED.py"
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/edit-comment.log"
[ "$(field "$WORK/edit-comment.log" "$EDITED" executed)" = 0 ] \
  || { echo "FAIL: comment-only edit re-executed units" >&2; exit 1; }
[ "$(field "$WORK/edit-comment.log" "$EDITED" anchor_replayed)" = 0 ] \
  || { echo "FAIL: comment-only edit took the anchor path instead of the fast path" >&2; exit 1; }
check_untouched "$WORK/edit-comment.log" comment-only
diff -q "$WORK/cold-docs/$EDITED.jsonl" "$WORK/state/runs/$EDITED.jsonl" >/dev/null \
  || { echo "FAIL: comment-only edit changed the $EDITED document" >&2; exit 1; }

if [ "$EDITED" = ecommerce ]; then
  echo "== edit matrix b: one-function body edit (charge_payment, + 0) =="
  sed -i 's/total = price \* qty$/total = price * qty + 0/' "$WORK/src/$EDITED.py"
  grep -q 'price \* qty + 0' "$WORK/src/$EDITED.py" \
    || { echo "FAIL: body-edit sed target not found in $EDITED" >&2; exit 1; }
  in_fn=$("$NFI" campaign plan --file "$WORK/src/$EDITED.py" --as "$EDITED" 2>/dev/null \
    | grep -c '"function":"charge_payment"')
  "$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/edit-body.log"
  units=$(field "$WORK/edit-body.log" "$EDITED" units)
  executed=$(field "$WORK/edit-body.log" "$EDITED" executed)
  anchored=$(field "$WORK/edit-body.log" "$EDITED" anchor_replayed)
  [ "$in_fn" -gt 0 ] && [ "$executed" = "$in_fn" ] \
    || { echo "FAIL: body edit executed $executed units, expected charge_payment's $in_fn" >&2; exit 1; }
  [ "$anchored" = "$((units - in_fn))" ] \
    || { echo "FAIL: body edit anchor-replayed $anchored of $units units, expected $((units - in_fn))" >&2; exit 1; }
  check_untouched "$WORK/edit-body.log" body
  check_scratch_parity "$WORK/scratch-body" body
else
  echo "== edit matrix b: skipped (body-edit target is ecommerce-specific, first program is $EDITED) =="
fi

echo "== edit matrix c: add an uncalled function to $EDITED =="
before=$("$NFI" campaign plan --file "$WORK/src/$EDITED.py" --as "$EDITED" 2>&1 >/dev/null \
  | sed -n 's/^planned \([0-9]*\) units.*/\1/p')
printf 'def parity_probe(x):\n    y = x + 1\n    return y\n' >> "$WORK/src/$EDITED.py"
"$NFI" campaign run --state-dir "$WORK/state" --workers 2 "${FILES[@]}" | tee "$WORK/edit-add.log"
units=$(field "$WORK/edit-add.log" "$EDITED" units)
executed=$(field "$WORK/edit-add.log" "$EDITED" executed)
replayed=$(field "$WORK/edit-add.log" "$EDITED" replayed)
[ "$units" -gt "$before" ] \
  || { echo "FAIL: added function produced no new units ($before -> $units)" >&2; exit 1; }
[ "$executed" = "$((units - before))" ] \
  || { echo "FAIL: added function executed $executed units, expected the $((units - before)) new ones" >&2; exit 1; }
[ "$replayed" = "$before" ] \
  || { echo "FAIL: added function replayed $replayed units, expected all $before pre-existing" >&2; exit 1; }
check_untouched "$WORK/edit-add.log" added-function
check_scratch_parity "$WORK/scratch-add" added-function

echo "incremental parity: warm run executed 0 units; edit matrix (comment / body / added function) re-executed only changed anchor groups; all documents byte-identical to from-scratch runs"
