#!/usr/bin/env bash
# Docs link check: every relative markdown link in README.md and
# docs/*.md must resolve to a file or directory in the repo. External
# links (http/https/mailto) and pure #anchors are skipped — the check
# is for the cross-reference web between the README and the docs/
# guides, which refactors silently break.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline links: [text](target). Reference-style links are not used.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "FAIL: $doc links to missing $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

for doc in docs/*.md; do
  [ -f "$doc" ] || continue
  grep -q "$(basename "$doc")" README.md \
    || { echo "FAIL: README.md never links to $doc" >&2; fail=1; }
done

[ "$fail" = 0 ] && echo "docs link check: all relative links resolve"
exit "$fail"
