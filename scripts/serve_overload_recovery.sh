#!/usr/bin/env bash
# Overload-recovery gauntlet for the hardened `nfi serve` daemon: a
# mixed-tenant burst past the admission limits must shed with honest
# 429 + Retry-After replies (and never touch the journal), a worker
# child killed mid-job must be retried until the job completes without
# a daemon restart, and everything that was accepted must still serve
# bytes identical to an offline `nfi campaign run --as` of the same
# binary.
#
#   1. start the daemon with auth, rate limiting, deadlines and a
#      per-tenant queue quota of 2;
#   2. alice bursts three submissions on one lane — the third is shed
#      with 429 + Retry-After while bob's submission still lands (the
#      quota is per tenant, not global); alice's first job is a large
#      generated source (hundreds of units), so its worker child runs
#      for seconds instead of the ~100ms a corpus job takes — long
#      enough to kill deterministically;
#   3. kill that `nfi campaign exec` worker child mid-job with SIGKILL
#      — the lane must retry and the metrics must say so;
#   4. every accepted job completes; alice resubmits the shed program
#      once her quota drains and it completes too;
#   5. byte-diff each served document against the offline tenant-scoped
#      run, and assert the edge/retry counters recorded the abuse.
#
# Usage: scripts/serve_overload_recovery.sh
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/serve_lib.sh

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== start hardened daemon (quota 2 jobs/tenant, 1 lane) =="
printf 'alice:alice-ci-token\nbob:bob-ci-token\n' > "$WORK/tokens"
start_daemon "$WORK/serve.log" --state-dir "$WORK/state" --workers 1 --lanes 1 \
  --auth-token-file "$WORK/tokens" --rate-limit 200 --deadline-ms 300000 \
  --max-queue 32 --tenant-max-queued 2 --worker-retries 3
echo "daemon at $ADDR"
req GET /healthz >/dev/null

# Unauthenticated requests must bounce off the edge with 401.
status=$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/v1/metrics")
[ "$status" = 401 ] || { echo "FAIL: tokenless /v1/metrics got $status, want 401" >&2; exit 1; }

# A big submission whose worker child stays alive long enough to be
# SIGKILLed mid-run: the same source goes over HTTP (JSON-escaped) and
# to disk (verbatim) so the offline parity run plans identical units.
SLOW_SRC=$WORK/slow.py
SLOW_BODY='{"program":"slow","source":"'
: > "$SLOW_SRC"
for i in $(seq 1 120); do
  printf 'def f%s(x):\n    y = x + %s\n    if y > 10:\n        y = y - 1\n    return y\n' \
    "$i" "$i" >> "$SLOW_SRC"
  SLOW_BODY="${SLOW_BODY}def f$i(x):\\n    y = x + $i\\n    if y > 10:\\n        y = y - 1\\n    return y\\n"
done
SLOW_BODY="${SLOW_BODY}\"}"

echo "== mixed-tenant burst past the quota =="
AUTH_TOKEN=alice-ci-token
reply=$(req POST /v1/campaigns "$SLOW_BODY")
SLOW_ID=$(json_field "$reply" id)
SLOW_UNITS=$(json_field "$reply" units)
echo "slow job $SLOW_ID: $SLOW_UNITS units"
reply=$(req POST /v1/campaigns '{"program":"banking","priority":"high"}')
BANKING_ID=$(json_field "$reply" id)
# Two alice jobs are outstanding on a single lane, so the third must be
# shed — before the journal ever sees it — with an honest Retry-After.
req_raw POST /v1/campaigns '{"program":"jobqueue"}'
[ "$STATUS" = 429 ] \
  || { echo "FAIL: over-quota submission got $STATUS, want 429: $BODY" >&2; exit 1; }
grep -qi '^retry-after:' "$HDRS" \
  || { echo "FAIL: 429 shed carried no Retry-After header" >&2; cat "$HDRS" >&2; exit 1; }
# The quota is per tenant: bob's submission must still land.
AUTH_TOKEN=bob-ci-token
reply=$(req POST /v1/campaigns '{"program":"jobqueue"}')
BOB_ID=$(json_field "$reply" id)
[ -n "$BOB_ID" ] || { echo "FAIL: bob's submission was shed by alice's quota" >&2; exit 1; }
AUTH_TOKEN=alice-ci-token

echo "== kill a worker child mid-job =="
# The slow job runs first (FIFO, single lane) and its child lives for
# seconds; SIGKILL it and require the retry counter to move. The loop
# still allows a retry in case a poll lands in the gap between jobs.
retried=
for _ in 1 2 3; do
  child=
  for _ in $(seq 1 100); do
    child=$(pgrep -P "$SERVE_PID" -f 'campaign exec' | head -1) || true
    [ -n "$child" ] && break
    sleep 0.05
  done
  [ -n "$child" ] || { echo "FAIL: never saw an nfi campaign exec child" >&2; exit 1; }
  kill -9 "$child" 2>/dev/null || true
  # A live kill shows up in the retry counter within the 10ms watchdog
  # poll; 2s of grace is generous before trying another child.
  for _ in $(seq 1 8); do
    if [ "$(json_field "$(req GET /v1/metrics)" retries)" -ge 1 ]; then
      retried=yes
      break 2
    fi
    sleep 0.25
  done
done
[ -n "$retried" ] || { echo "FAIL: killed children never produced a retry" >&2; exit 1; }
echo "child $child SIGKILLed; lane retried"

echo "== every accepted job completes without a restart =="
await "$SLOW_ID" >/dev/null
await "$BANKING_ID" >/dev/null
req GET "/v1/campaigns/$SLOW_ID/document" > "$WORK/alice.slow.jsonl"
req GET "/v1/campaigns/$BANKING_ID/document" > "$WORK/alice.banking.jsonl"
AUTH_TOKEN=bob-ci-token
await "$BOB_ID" >/dev/null
req GET "/v1/campaigns/$BOB_ID/document" > "$WORK/bob.jobqueue.jsonl"
AUTH_TOKEN=alice-ci-token

echo "== the shed submission lands once the quota drains =="
reply=$(req POST /v1/campaigns '{"program":"jobqueue"}')
RETRY_ID=$(json_field "$reply" id)
[ -n "$RETRY_ID" ] || { echo "FAIL: resubmission after drain was shed: $reply" >&2; exit 1; }
await "$RETRY_ID" >/dev/null
req GET "/v1/campaigns/$RETRY_ID/document" > "$WORK/alice.jobqueue.jsonl"

echo "== offline parity (tenant-scoped) =="
for spec in alice:slow alice:banking alice:jobqueue bob:jobqueue; do
  tenant=${spec%%:*}
  program=${spec#*:}
  if [ "$program" = slow ]; then
    "$NFI" campaign run --state-dir "$WORK/offline" --workers 1 \
      "$SLOW_SRC" --as "$spec" >/dev/null
  else
    "$NFI" campaign run --state-dir "$WORK/offline" --workers 1 \
      --program "$program" --as "$spec" >/dev/null
  fi
  if ! diff -q "$WORK/$tenant.$program.jsonl" "$WORK/offline/runs/$spec.jsonl" >/dev/null; then
    echo "FAIL: served $spec document differs from offline campaign run --as $spec" >&2
    diff "$WORK/$tenant.$program.jsonl" "$WORK/offline/runs/$spec.jsonl" >&2 || true
    exit 1
  fi
done

echo "== the counters recorded the abuse =="
metrics=$(req GET /v1/metrics)
echo "metrics: $metrics"
[ "$(json_field "$metrics" unauthorized)" -ge 1 ] \
  || { echo "FAIL: unauthorized counter never moved" >&2; exit 1; }
[ "$(json_field "$metrics" queue_shed)" -ge 1 ] \
  || { echo "FAIL: queue_shed counter never moved" >&2; exit 1; }
[ "$(json_field "$metrics" retries)" -ge 1 ] \
  || { echo "FAIL: retries counter never moved" >&2; exit 1; }
[ "$(json_field "$metrics" failed_units)" = 0 ] \
  || { echo "FAIL: retries should have salvaged every unit: $metrics" >&2; exit 1; }

echo "serve overload recovery: quota shed 429 + Retry-After before the journal;" \
     "SIGKILLed worker child retried; 4 tenant-scoped jobs byte-identical to offline --as"
