#!/usr/bin/env bash
# Shard-merge parity check: for every corpus program, plan a campaign,
# execute it as two shards, merge them, and require the merged document
# to be byte-identical to the unsharded threads=1 run.
#
# Usage: scripts/shard_parity.sh [program ...]   (default: all programs)
set -euo pipefail
cd "$(dirname "$0")/.."

NFI=./target/release/nfi
[ -x "$NFI" ] || cargo build --release --bin nfi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ "$#" -gt 0 ]; then
  PROGRAMS=("$@")
else
  # First column of `nfi corpus list`, minus the header row.
  mapfile -t PROGRAMS < <("$NFI" corpus list | tail -n +2 | awk '{print $1}')
fi

for program in "${PROGRAMS[@]}"; do
  plan="$WORK/$program.plan.jsonl"
  "$NFI" campaign plan --program "$program" --out "$plan" >/dev/null
  "$NFI" campaign exec --plan "$plan" --threads 1 --out "$WORK/$program.full.jsonl" >/dev/null
  "$NFI" campaign exec --plan "$plan" --threads 1 --shard 0/2 --out "$WORK/$program.s0.jsonl" >/dev/null
  "$NFI" campaign exec --plan "$plan" --threads 1 --shard 1/2 --out "$WORK/$program.s1.jsonl" >/dev/null
  "$NFI" campaign merge "$WORK/$program.s0.jsonl" "$WORK/$program.s1.jsonl" \
    --out "$WORK/$program.merged.jsonl" >/dev/null
  if ! diff -q "$WORK/$program.full.jsonl" "$WORK/$program.merged.jsonl" >/dev/null; then
    echo "FAIL: $program — merged shards differ from the unsharded run" >&2
    diff "$WORK/$program.full.jsonl" "$WORK/$program.merged.jsonl" >&2 || true
    exit 1
  fi
  echo "ok: $program ($(grep -c '"kind":"outcome"' "$WORK/$program.full.jsonl") plans)"
done
echo "shard parity: all programs byte-identical"
