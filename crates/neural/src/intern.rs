//! String interning: map tokens to dense `u32` ids in one pass.
//!
//! The LM, the TF-IDF embedder, and the NLP lexicon all repeatedly keyed
//! `HashMap<String, usize>` by owned strings, cloning every token on the
//! way in. An [`Interner`] pays the hash + clone once per *distinct*
//! token; afterwards everything downstream (training loops, retrieval,
//! classification) works on `u32` ids.

use std::collections::HashMap;
use std::sync::Arc;

/// A dense string ↔ `u32` id table. The map key and the id-indexed
/// table share one `Arc<str>` allocation per distinct token.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Id for `token`, inserting it if new. Allocates only on first
    /// sight (one shared `Arc<str>`).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = self.strings.len() as u32;
        let shared: Arc<str> = Arc::from(token);
        self.map.insert(Arc::clone(&shared), id);
        self.strings.push(shared);
        id
    }

    /// Id for `token` if already interned.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.map.get(token).copied()
    }

    /// The string behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns every token of a sequence.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = Interner::new();
        let a = i.intern("timeout");
        let b = i.intern("retry");
        let a2 = i.intern("timeout");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), "retry");
        assert_eq!(i.get("retry"), Some(1));
        assert_eq!(i.get("absent"), None);
    }

    #[test]
    fn intern_all_maps_sequences() {
        let mut i = Interner::new();
        let toks: Vec<String> = ["a", "b", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(i.intern_all(&toks), vec![0, 1, 0]);
    }
}
