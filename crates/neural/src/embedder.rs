//! TF-IDF text encoder used for retrieval over the fine-tuning corpus.

use crate::intern::Interner;
use crate::tensor::cosine;

/// A fitted TF-IDF vectorizer. The vocabulary is an [`Interner`]: tokens
/// are interned to dense `u32` ids in a single fit pass (no per-token
/// `String` clones), and embedding only hashes each query token once.
///
/// # Examples
///
/// ```
/// use nfi_neural::embedder::TfIdf;
///
/// let docs = vec![
///     vec!["timeout".to_string(), "database".to_string()],
///     vec!["race".to_string(), "condition".to_string()],
/// ];
/// let tfidf = TfIdf::fit(&docs);
/// let q = vec!["database".to_string(), "timeout".to_string()];
/// assert!(tfidf.similarity(&q, &docs[0]) > tfidf.similarity(&q, &docs[1]));
/// ```
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocab: Interner,
    idf: Vec<f32>,
}

impl TfIdf {
    /// Fits vocabulary and inverse document frequencies on a corpus of
    /// tokenized documents.
    pub fn fit(docs: &[Vec<String>]) -> Self {
        let mut vocab = Interner::new();
        let mut doc_freq: Vec<usize> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        for doc in docs {
            seen.clear();
            for tok in doc {
                let id = vocab.intern(tok);
                if id as usize == doc_freq.len() {
                    doc_freq.push(0);
                }
                if !seen.contains(&id) {
                    seen.push(id);
                }
            }
            for &id in &seen {
                doc_freq[id as usize] += 1;
            }
        }
        let n = docs.len().max(1) as f32;
        let idf = doc_freq
            .iter()
            .map(|df| ((n + 1.0) / (*df as f32 + 1.0)).ln() + 1.0)
            .collect();
        TfIdf { vocab, idf }
    }

    /// Dimensionality of embeddings (vocabulary size).
    pub fn dim(&self) -> usize {
        self.idf.len()
    }

    /// Interned id of a token, when in vocabulary.
    pub fn token_id(&self, token: &str) -> Option<u32> {
        self.vocab.get(token)
    }

    /// Interns a tokenized document to ids, dropping OOV tokens but
    /// reporting the original token count (TF normalization uses it).
    pub fn encode(&self, tokens: &[String]) -> (Vec<u32>, usize) {
        let ids = tokens.iter().filter_map(|t| self.vocab.get(t)).collect();
        (ids, tokens.len())
    }

    /// Embeds pre-encoded token ids as a dense TF-IDF vector.
    pub fn embed_ids(&self, ids: &[u32], token_count: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim()];
        if token_count == 0 {
            return v;
        }
        for &id in ids {
            v[id as usize] += 1.0;
        }
        let len = token_count as f32;
        for (x, idf) in v.iter_mut().zip(self.idf.iter()) {
            *x = (*x / len) * idf;
        }
        v
    }

    /// Embeds a tokenized document as a dense TF-IDF vector
    /// (out-of-vocabulary tokens are ignored).
    pub fn embed(&self, tokens: &[String]) -> Vec<f32> {
        let (ids, count) = self.encode(tokens);
        self.embed_ids(&ids, count)
    }

    /// Cosine similarity between two tokenized documents.
    pub fn similarity(&self, a: &[String], b: &[String]) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }

    /// Indices of the `k` most similar corpus documents to the query,
    /// given pre-embedded corpus vectors. Ties broken by lower index.
    pub fn top_k(&self, query: &[String], corpus_vecs: &[Vec<f32>], k: usize) -> Vec<(usize, f32)> {
        let q = self.embed(query);
        let mut scored: Vec<(usize, f32)> = corpus_vecs
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine(&q, v)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

/// Lowercases and splits text into word tokens (alphanumeric runs).
pub fn word_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Vec<String> {
        word_tokens(s)
    }

    #[test]
    fn rare_words_get_higher_idf() {
        let docs = vec![
            doc("the timeout failed"),
            doc("the race failed"),
            doc("the leak failed"),
        ];
        let t = TfIdf::fit(&docs);
        let the_id = t.token_id("the").unwrap() as usize;
        let timeout_id = t.token_id("timeout").unwrap() as usize;
        assert!(t.idf[timeout_id] > t.idf[the_id]);
    }

    #[test]
    fn retrieval_prefers_overlapping_document() {
        let docs = vec![
            doc("simulate a database timeout in the transaction"),
            doc("introduce a race condition between workers"),
            doc("leak a file handle by never closing it"),
        ];
        let t = TfIdf::fit(&docs);
        let vecs: Vec<Vec<f32>> = docs.iter().map(|d| t.embed(d)).collect();
        let hits = t.top_k(&doc("database transaction timeout"), &vecs, 2);
        assert_eq!(hits[0].0, 0);
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn oov_query_embeds_to_zero() {
        let docs = vec![doc("alpha beta")];
        let t = TfIdf::fit(&docs);
        let v = t.embed(&doc("gamma delta"));
        assert!(v.iter().all(|x| *x == 0.0));
        assert_eq!(t.similarity(&doc("gamma"), &doc("alpha")), 0.0);
    }

    #[test]
    fn word_tokens_normalize_case_and_punctuation() {
        assert_eq!(
            word_tokens("Simulate a DB-timeout, now!"),
            vec!["simulate", "a", "db", "timeout", "now"]
        );
    }

    #[test]
    fn empty_inputs_are_safe() {
        let t = TfIdf::fit(&[]);
        assert_eq!(t.dim(), 0);
        assert!(t.embed(&[]).is_empty());
    }
}
