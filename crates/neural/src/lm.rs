//! A neural n-gram language model over (code) tokens.
//!
//! Architecture (Bengio et al. 2003 style): each of the `context`
//! previous tokens is embedded, embeddings are concatenated, passed
//! through one tanh hidden layer, and projected to vocabulary logits.
//! Training is stochastic gradient descent on cross-entropy with manual
//! backprop (including embedding gradients).
//!
//! In the workspace this model plays the role of the LLM's *token-level*
//! backbone: it is fine-tuned on faulty-code corpora, provides fluency
//! scores for candidate snippets, and yields the perplexity-vs-dataset
//! learning curve of experiment E6.

use crate::tensor::Matrix;
use crate::{sample_index, softmax_with_temperature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Hyper-parameters for [`NgramLm`].
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Number of previous tokens used as context.
    pub context: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            context: 3,
            dim: 16,
            hidden: 32,
            seed: 0xBEEF,
        }
    }
}

/// Reserved id for beginning-of-sequence padding.
pub const BOS: usize = 0;
/// Reserved id for out-of-vocabulary tokens.
pub const UNK: usize = 1;

/// The neural n-gram language model.
#[derive(Debug, Clone)]
pub struct NgramLm {
    vocab: Vec<String>,
    lookup: HashMap<String, usize>,
    embed: Matrix,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    config: LmConfig,
}

impl NgramLm {
    /// Creates an untrained model with a vocabulary built from the given
    /// sequences (tokens occurring at least once).
    pub fn new(sequences: &[Vec<String>], config: LmConfig) -> Self {
        let mut vocab = vec!["<s>".to_string(), "<unk>".to_string()];
        let mut lookup: HashMap<String, usize> = HashMap::new();
        lookup.insert(vocab[0].clone(), BOS);
        lookup.insert(vocab[1].clone(), UNK);
        for seq in sequences {
            for tok in seq {
                if !lookup.contains_key(tok) {
                    lookup.insert(tok.clone(), vocab.len());
                    vocab.push(tok.clone());
                }
            }
        }
        let v = vocab.len();
        let in_dim = config.context * config.dim;
        NgramLm {
            embed: Matrix::xavier(v, config.dim, config.seed),
            w1: Matrix::xavier(config.hidden, in_dim, config.seed.wrapping_add(1)),
            b1: vec![0.0; config.hidden],
            w2: Matrix::xavier(v, config.hidden, config.seed.wrapping_add(2)),
            b2: vec![0.0; v],
            vocab,
            lookup,
            config,
        }
    }

    /// Vocabulary size (including `<s>` and `<unk>`).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Token → id (OOV maps to `<unk>`).
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens
            .iter()
            .map(|t| self.lookup.get(t).copied().unwrap_or(UNK))
            .collect()
    }

    fn context_vector(&self, ctx: &[usize]) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.config.context * self.config.dim);
        for id in ctx {
            x.extend_from_slice(self.embed.row(*id));
        }
        x
    }

    fn logits(&self, ctx: &[usize]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let x = self.context_vector(ctx);
        let mut h = self.w1.matvec(&x);
        for (hj, bj) in h.iter_mut().zip(self.b1.iter()) {
            *hj = (*hj + bj).tanh();
        }
        let mut logits = self.w2.matvec(&h);
        for (lj, bj) in logits.iter_mut().zip(self.b2.iter()) {
            *lj += bj;
        }
        (x, h, logits)
    }

    /// One epoch of SGD over all positions of all sequences; returns the
    /// average negative log-likelihood (natural log).
    pub fn train_epoch(&mut self, sequences: &[Vec<String>], lr: f32) -> f64 {
        let mut total_nll = 0.0f64;
        let mut count = 0usize;
        let encoded: Vec<Vec<usize>> = sequences.iter().map(|s| self.encode(s)).collect();
        for seq in &encoded {
            let mut ctx = vec![BOS; self.config.context];
            for &target in seq {
                total_nll += self.sgd_example(&ctx, target, lr);
                count += 1;
                ctx.remove(0);
                ctx.push(target);
            }
        }
        if count == 0 {
            0.0
        } else {
            total_nll / count as f64
        }
    }

    fn sgd_example(&mut self, ctx: &[usize], target: usize, lr: f32) -> f64 {
        let (x, h, logits) = self.logits(ctx);
        let probs = crate::softmax(&logits);
        let nll = -(probs[target].max(1e-12) as f64).ln();

        // dL/dlogits = p - onehot(target)
        let mut dlogits = probs;
        dlogits[target] -= 1.0;

        // Output layer.
        let dh_raw = self.w2.matvec_t(&dlogits);
        self.w2.add_outer(-lr, &dlogits, &h);
        for (b, d) in self.b2.iter_mut().zip(dlogits.iter()) {
            *b -= lr * d;
        }

        // Hidden layer (tanh).
        let dz: Vec<f32> = dh_raw
            .iter()
            .zip(h.iter())
            .map(|(d, y)| d * (1.0 - y * y))
            .collect();
        let dx = self.w1.matvec_t(&dz);
        self.w1.add_outer(-lr, &dz, &x);
        for (b, d) in self.b1.iter_mut().zip(dz.iter()) {
            *b -= lr * d;
        }

        // Embedding gradients: slice dx back to each context position.
        for (pos, id) in ctx.iter().enumerate() {
            let from = pos * self.config.dim;
            let row = self.embed.row_mut(*id);
            for (j, r) in row.iter_mut().enumerate() {
                *r -= lr * dx[from + j];
            }
        }
        nll
    }

    /// Average per-token negative log-likelihood over sequences.
    pub fn nll(&self, sequences: &[Vec<String>]) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for seq in sequences {
            let ids = self.encode(seq);
            let mut ctx = vec![BOS; self.config.context];
            for &target in &ids {
                let (_, _, logits) = self.logits(&ctx);
                let probs = crate::softmax(&logits);
                total += -(probs[target].max(1e-12) as f64).ln();
                count += 1;
                ctx.remove(0);
                ctx.push(target);
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Perplexity `exp(nll)`.
    pub fn perplexity(&self, sequences: &[Vec<String>]) -> f64 {
        self.nll(sequences).exp()
    }

    /// Average log-probability of a single token sequence (fluency score;
    /// higher is more fluent).
    pub fn fluency(&self, tokens: &[String]) -> f64 {
        -self.nll(std::slice::from_ref(&tokens.to_vec()))
    }

    /// Samples up to `max_len` tokens after `prefix` with the given
    /// temperature, using a seeded RNG.
    pub fn sample(&self, prefix: &[String], max_len: usize, temperature: f32, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = vec![BOS; self.config.context];
        for id in self.encode(prefix) {
            ctx.remove(0);
            ctx.push(id);
        }
        let mut out = Vec::new();
        for _ in 0..max_len {
            let (_, _, logits) = self.logits(&ctx);
            let probs = softmax_with_temperature(&logits, temperature);
            let pick = sample_index(&probs, rng.gen::<f32>());
            if pick == BOS {
                break;
            }
            out.push(self.vocab[pick].clone());
            ctx.remove(0);
            ctx.push(pick);
        }
        out
    }
}

/// Splits source text into crude code tokens: identifiers, numbers, and
/// single punctuation characters. Shared by the LM corpus builder and
/// the fluency scorer so both see the same token stream.
pub fn code_tokens(source: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in source.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            } else if c == '\n' {
                tokens.push("<nl>".to_string());
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<Vec<String>> {
        let lines = [
            "raise TimeoutError ( msg )",
            "raise ValueError ( msg )",
            "try : x = f ( ) except TimeoutError : pass",
            "raise TimeoutError ( msg )",
        ];
        lines
            .iter()
            .map(|l| l.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn training_reduces_nll() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        let before = lm.nll(&corpus);
        for _ in 0..30 {
            lm.train_epoch(&corpus, 0.05);
        }
        let after = lm.nll(&corpus);
        assert!(
            after < before * 0.7,
            "nll did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn perplexity_is_exp_of_nll() {
        let corpus = tiny_corpus();
        let lm = NgramLm::new(&corpus, LmConfig::default());
        let nll = lm.nll(&corpus);
        assert!((lm.perplexity(&corpus) - nll.exp()).abs() < 1e-9);
    }

    #[test]
    fn oov_tokens_map_to_unk() {
        let corpus = tiny_corpus();
        let lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode(&["utterly_novel_token".to_string()]);
        assert_eq!(ids, vec![UNK]);
    }

    #[test]
    fn trained_model_prefers_seen_continuations() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        for _ in 0..60 {
            lm.train_epoch(&corpus, 0.05);
        }
        let seen: Vec<String> = "raise TimeoutError ( msg )"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let shuffled: Vec<String> = ") msg ( TimeoutError raise"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        assert!(
            lm.fluency(&seen) > lm.fluency(&shuffled),
            "fluency should prefer trained order"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        for _ in 0..20 {
            lm.train_epoch(&corpus, 0.05);
        }
        let prefix = vec!["raise".to_string()];
        let a = lm.sample(&prefix, 5, 0.8, 11);
        let b = lm.sample(&prefix, 5, 0.8, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn code_tokens_split_identifiers_and_punctuation() {
        let toks = code_tokens("raise TimeoutError(\"db timeout\")");
        assert!(toks.contains(&"raise".to_string()));
        assert!(toks.contains(&"TimeoutError".to_string()));
        assert!(toks.contains(&"(".to_string()));
        assert!(toks.contains(&"\"".to_string()));
    }

    #[test]
    fn empty_corpus_yields_zero_nll() {
        let lm = NgramLm::new(&[], LmConfig::default());
        assert_eq!(lm.nll(&[]), 0.0);
        assert_eq!(lm.vocab_size(), 2);
    }
}
