//! A neural n-gram language model over (code) tokens.
//!
//! Architecture (Bengio et al. 2003 style): each of the `context`
//! previous tokens is embedded, embeddings are concatenated, passed
//! through one tanh hidden layer, and projected to vocabulary logits.
//! Training is gradient descent on cross-entropy with manual backprop
//! (including embedding gradients).
//!
//! Two kernel paths exist:
//!
//! * the **per-example** path ([`NgramLm::train_epoch`],
//!   [`NgramLm::example_gradients`]) — one `matvec`/`add_outer` pass per
//!   position, the original reference implementation;
//! * the **batched** path ([`NgramLm::train_epoch_batched`],
//!   [`NgramLm::batch_gradients`]) — minibatch GEMM kernels
//!   ([`Matrix::matmul_nt`] and friends, SIMD where available, plus the
//!   vectorizable [`crate::exp_approx`] softmax) whose batch gradients
//!   equal the sum of per-example gradients within 1e-5 (the parity
//!   suite enforces this). Batch boundaries are fixed by position
//!   order, so results are fully deterministic.
//!
//! The vocabulary is interned once ([`crate::intern::Interner`]): tokens
//! become dense `u32` ids up front, and the training loop never hashes
//! or clones a `String` again.
//!
//! In the workspace this model plays the role of the LLM's *token-level*
//! backbone: it is fine-tuned on faulty-code corpora, provides fluency
//! scores for candidate snippets, and yields the perplexity-vs-dataset
//! learning curve of experiment E6.

use crate::intern::Interner;
use crate::tensor::Matrix;
use crate::{sample_index, softmax_with_temperature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`NgramLm`].
#[derive(Debug, Clone)]
pub struct LmConfig {
    /// Number of previous tokens used as context.
    pub context: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            context: 3,
            dim: 16,
            hidden: 32,
            seed: 0xBEEF,
        }
    }
}

/// Reserved id for beginning-of-sequence padding.
pub const BOS: usize = 0;
/// Reserved id for out-of-vocabulary tokens.
pub const UNK: usize = 1;

/// Default minibatch size for [`NgramLm::train_epoch_batched`].
pub const DEFAULT_BATCH: usize = 32;

/// Summed gradients (and total NLL) over a set of positions, shaped like
/// the model's parameters.
#[derive(Debug, Clone)]
pub struct LmGradients {
    /// Embedding-table gradient.
    pub embed: Matrix,
    /// Hidden-layer weight gradient.
    pub w1: Matrix,
    /// Hidden-layer bias gradient.
    pub b1: Vec<f32>,
    /// Output-layer weight gradient.
    pub w2: Matrix,
    /// Output-layer bias gradient.
    pub b2: Vec<f32>,
    /// Total negative log-likelihood of the positions.
    pub nll: f64,
    /// Number of positions.
    pub count: usize,
}

/// The neural n-gram language model.
#[derive(Debug, Clone)]
pub struct NgramLm {
    vocab: Interner,
    embed: Matrix,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
    config: LmConfig,
}

impl NgramLm {
    /// Creates an untrained model with a vocabulary interned from the
    /// given sequences in one pass (tokens occurring at least once).
    pub fn new(sequences: &[Vec<String>], config: LmConfig) -> Self {
        let mut vocab = Interner::new();
        vocab.intern("<s>");
        vocab.intern("<unk>");
        for seq in sequences {
            for tok in seq {
                vocab.intern(tok);
            }
        }
        let v = vocab.len();
        let in_dim = config.context * config.dim;
        NgramLm {
            embed: Matrix::xavier(v, config.dim, config.seed),
            w1: Matrix::xavier(config.hidden, in_dim, config.seed.wrapping_add(1)),
            b1: vec![0.0; config.hidden],
            w2: Matrix::xavier(v, config.hidden, config.seed.wrapping_add(2)),
            b2: vec![0.0; v],
            vocab,
            config,
        }
    }

    /// Vocabulary size (including `<s>` and `<unk>`).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Token → id (OOV maps to `<unk>`).
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens
            .iter()
            .map(|t| self.vocab.get(t).map(|id| id as usize).unwrap_or(UNK))
            .collect()
    }

    /// Token → dense `u32` id (OOV maps to `<unk>`).
    pub fn encode_ids(&self, tokens: &[String]) -> Vec<u32> {
        tokens
            .iter()
            .map(|t| self.vocab.get(t).unwrap_or(UNK as u32))
            .collect()
    }

    /// Encodes a whole corpus to id sequences in one pass — do this once
    /// before an epoch loop instead of re-hashing every epoch.
    pub fn encode_corpus(&self, sequences: &[Vec<String>]) -> Vec<Vec<u32>> {
        sequences.iter().map(|s| self.encode_ids(s)).collect()
    }

    fn context_vector(&self, ctx: &[usize]) -> Vec<f32> {
        let mut x = Vec::with_capacity(self.config.context * self.config.dim);
        for id in ctx {
            x.extend_from_slice(self.embed.row(*id));
        }
        x
    }

    fn logits(&self, ctx: &[usize]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let x = self.context_vector(ctx);
        let mut h = self.w1.matvec(&x);
        for (hj, bj) in h.iter_mut().zip(self.b1.iter()) {
            *hj = (*hj + bj).tanh();
        }
        let mut logits = self.w2.matvec(&h);
        for (lj, bj) in logits.iter_mut().zip(self.b2.iter()) {
            *lj += bj;
        }
        (x, h, logits)
    }

    // ---- flattened position windows -----------------------------------

    /// Flattens id sequences into `(contexts, targets)`: position `t` of
    /// a sequence has context `pad[t..t+C]` with `pad = [BOS; C] ++ seq`
    /// and target `seq[t]`. Order is sequence order then position order —
    /// the batched path's fixed batch boundaries derive from it.
    fn flatten_positions(&self, ids: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
        let c = self.config.context;
        let total: usize = ids.iter().map(Vec::len).sum();
        let mut ctxs = Vec::with_capacity(total * c);
        let mut targets = Vec::with_capacity(total);
        for seq in ids {
            let mut ctx = vec![BOS as u32; c];
            for &target in seq {
                ctxs.extend_from_slice(&ctx);
                targets.push(target);
                ctx.remove(0);
                ctx.push(target);
            }
        }
        (ctxs, targets)
    }

    /// Batched forward: gathers context embeddings into `X: B×(C·dim)`,
    /// computes `H = tanh(X·W1ᵀ + b1)` and `logits = H·W2ᵀ + b2`.
    fn forward_batch(&self, ctxs: &[u32]) -> (Matrix, Matrix, Matrix) {
        let c = self.config.context;
        let d = self.config.dim;
        let b = ctxs.len() / c;
        let mut x = Matrix::zeros(b, c * d);
        for e in 0..b {
            let row = x.row_mut(e);
            for (pos, id) in ctxs[e * c..(e + 1) * c].iter().enumerate() {
                row[pos * d..(pos + 1) * d].copy_from_slice(self.embed.row(*id as usize));
            }
        }
        let mut h = x.matmul_nt(&self.w1);
        for e in 0..b {
            for (hj, bj) in h.row_mut(e).iter_mut().zip(self.b1.iter()) {
                *hj = (*hj + bj).tanh();
            }
        }
        let mut logits = h.matmul_nt(&self.w2);
        logits.add_row_bias(&self.b2);
        (x, h, logits)
    }

    /// Zero-shaped gradient accumulator.
    fn zero_gradients(&self) -> LmGradients {
        LmGradients {
            embed: Matrix::zeros(self.embed.rows(), self.embed.cols()),
            w1: Matrix::zeros(self.w1.rows(), self.w1.cols()),
            b1: vec![0.0; self.b1.len()],
            w2: Matrix::zeros(self.w2.rows(), self.w2.cols()),
            b2: vec![0.0; self.b2.len()],
            nll: 0.0,
            count: 0,
        }
    }

    /// Summed cross-entropy gradients over a minibatch of positions,
    /// computed with the GEMM kernels at the current parameters.
    ///
    /// `ctxs` holds `targets.len() * context` ids, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `ctxs.len() != targets.len() * context`.
    pub fn batch_gradients(&self, ctxs: &[u32], targets: &[u32]) -> LmGradients {
        let mut grads = self.zero_gradients();
        self.fill_batch_gradients(ctxs, targets, &mut grads);
        grads
    }

    /// [`NgramLm::batch_gradients`] into a caller-owned (zeroed)
    /// accumulator — the epoch loop reuses one allocation across every
    /// batch.
    fn fill_batch_gradients(&self, ctxs: &[u32], targets: &[u32], grads: &mut LmGradients) {
        let c = self.config.context;
        assert_eq!(
            ctxs.len(),
            targets.len() * c,
            "context window shape mismatch"
        );
        if targets.is_empty() {
            return;
        }
        let b = targets.len();
        let (x, h, logits) = self.forward_batch(ctxs);

        // dL/dlogits = softmax(logits) - onehot(target), row-wise, with
        // the vectorizable `exp_approx` (the parity suite bounds the
        // difference from the libm-exp reference path at 1e-5).
        let mut dlogits = logits;
        for (e, tgt) in targets.iter().enumerate() {
            let row = dlogits.row_mut(e);
            let target = *tgt as usize;
            grads.nll += softmax_row_in_place(row, target);
            row[target] -= 1.0;
        }

        // Output layer.
        grads.w2.add_matmul_tn(1.0, &dlogits, &h);
        for (g, d) in grads.b2.iter_mut().zip(dlogits.col_sums()) {
            *g += d;
        }

        // Hidden layer (tanh).
        let mut dz = dlogits.matmul_nn(&self.w2);
        for e in 0..b {
            for (d, y) in dz.row_mut(e).iter_mut().zip(h.row(e).iter()) {
                *d *= 1.0 - y * y;
            }
        }
        grads.w1.add_matmul_tn(1.0, &dz, &x);
        for (g, d) in grads.b1.iter_mut().zip(dz.col_sums()) {
            *g += d;
        }

        // Embedding gradients: scatter dX rows back to context ids.
        let dx = dz.matmul_nn(&self.w1);
        let d = self.config.dim;
        for e in 0..b {
            let dx_row = dx.row(e);
            for (pos, id) in ctxs[e * c..(e + 1) * c].iter().enumerate() {
                let row = grads.embed.row_mut(*id as usize);
                for (g, v) in row.iter_mut().zip(dx_row[pos * d..(pos + 1) * d].iter()) {
                    *g += v;
                }
            }
        }
        grads.count += b;
    }

    /// Cross-entropy gradients of a single position via the per-example
    /// `matvec`/`add_outer` kernels — the reference the batched path is
    /// tested against.
    pub fn example_gradients(&self, ctx: &[usize], target: usize) -> LmGradients {
        let mut grads = self.zero_gradients();
        let (x, h, logits) = self.logits(ctx);
        let probs = crate::softmax(&logits);
        grads.nll = -((probs[target].max(1e-12)) as f64).ln();

        let mut dlogits = probs;
        dlogits[target] -= 1.0;

        grads.w2.add_outer(1.0, &dlogits, &h);
        for (g, d) in grads.b2.iter_mut().zip(dlogits.iter()) {
            *g += d;
        }

        let dh_raw = self.w2.matvec_t(&dlogits);
        let dz: Vec<f32> = dh_raw
            .iter()
            .zip(h.iter())
            .map(|(d, y)| d * (1.0 - y * y))
            .collect();
        grads.w1.add_outer(1.0, &dz, &x);
        for (g, d) in grads.b1.iter_mut().zip(dz.iter()) {
            *g += d;
        }

        let dx = self.w1.matvec_t(&dz);
        for (pos, id) in ctx.iter().enumerate() {
            let from = pos * self.config.dim;
            let row = grads.embed.row_mut(*id);
            for (j, g) in row.iter_mut().enumerate() {
                *g += dx[from + j];
            }
        }
        grads.count = 1;
        grads
    }

    /// Applies summed gradients: `θ -= lr · g`.
    pub fn apply_gradients(&mut self, grads: &LmGradients, lr: f32) {
        self.embed.add_scaled(-lr, &grads.embed);
        self.w1.add_scaled(-lr, &grads.w1);
        self.w2.add_scaled(-lr, &grads.w2);
        for (b, g) in self.b1.iter_mut().zip(grads.b1.iter()) {
            *b -= lr * g;
        }
        for (b, g) in self.b2.iter_mut().zip(grads.b2.iter()) {
            *b -= lr * g;
        }
    }

    /// One epoch of per-example SGD over all positions of all sequences;
    /// returns the average negative log-likelihood (natural log). The
    /// original reference path: one weight update per position.
    pub fn train_epoch(&mut self, sequences: &[Vec<String>], lr: f32) -> f64 {
        let mut total_nll = 0.0f64;
        let mut count = 0usize;
        let encoded: Vec<Vec<usize>> = sequences.iter().map(|s| self.encode(s)).collect();
        for seq in &encoded {
            let mut ctx = vec![BOS; self.config.context];
            for &target in seq {
                total_nll += self.sgd_example(&ctx, target, lr);
                count += 1;
                ctx.remove(0);
                ctx.push(target);
            }
        }
        if count == 0 {
            0.0
        } else {
            total_nll / count as f64
        }
    }

    /// One epoch of minibatch gradient descent over pre-encoded id
    /// sequences: fixed position-order batch boundaries, one GEMM-backed
    /// weight update per `batch` positions. Returns the average NLL.
    ///
    /// ~`batch`× fewer weight writes than [`NgramLm::train_epoch`] and
    /// no per-position allocation; gradients per batch equal the summed
    /// per-example gradients at the batch's starting parameters.
    pub fn train_epoch_batched(&mut self, ids: &[Vec<u32>], lr: f32, batch: usize) -> f64 {
        let batch = batch.max(1);
        let c = self.config.context;
        let (ctxs, targets) = self.flatten_positions(ids);
        if targets.is_empty() {
            return 0.0;
        }
        let mut total_nll = 0.0f64;
        // One reused accumulator; the dense layers are applied and
        // re-zeroed in full, the embedding table (the `vocab × dim`
        // giant) only on the ≤ batch·context rows a batch touched.
        let mut grads = self.zero_gradients();
        let mut touched: Vec<u32> = Vec::with_capacity(batch * c);
        for (ctx_chunk, target_chunk) in ctxs.chunks(batch * c).zip(targets.chunks(batch)) {
            grads.nll = 0.0;
            self.fill_batch_gradients(ctx_chunk, target_chunk, &mut grads);
            total_nll += grads.nll;

            self.w1.add_scaled(-lr, &grads.w1);
            self.w2.add_scaled(-lr, &grads.w2);
            for (b, g) in self.b1.iter_mut().zip(grads.b1.iter()) {
                *b -= lr * g;
            }
            for (b, g) in self.b2.iter_mut().zip(grads.b2.iter()) {
                *b -= lr * g;
            }
            grads.w1.fill_zero();
            grads.w2.fill_zero();
            grads.b1.iter_mut().for_each(|x| *x = 0.0);
            grads.b2.iter_mut().for_each(|x| *x = 0.0);

            touched.clear();
            touched.extend_from_slice(ctx_chunk);
            touched.sort_unstable();
            touched.dedup();
            for &id in &touched {
                let g_row = grads.embed.row_mut(id as usize);
                for (w, g) in self.embed.row_mut(id as usize).iter_mut().zip(g_row.iter()) {
                    *w -= lr * g;
                }
                g_row.iter_mut().for_each(|x| *x = 0.0);
            }
        }
        total_nll / targets.len() as f64
    }

    fn sgd_example(&mut self, ctx: &[usize], target: usize, lr: f32) -> f64 {
        let (x, h, logits) = self.logits(ctx);
        let probs = crate::softmax(&logits);
        let nll = -(probs[target].max(1e-12) as f64).ln();

        // dL/dlogits = p - onehot(target)
        let mut dlogits = probs;
        dlogits[target] -= 1.0;

        // Output layer.
        let dh_raw = self.w2.matvec_t(&dlogits);
        self.w2.add_outer(-lr, &dlogits, &h);
        for (b, d) in self.b2.iter_mut().zip(dlogits.iter()) {
            *b -= lr * d;
        }

        // Hidden layer (tanh).
        let dz: Vec<f32> = dh_raw
            .iter()
            .zip(h.iter())
            .map(|(d, y)| d * (1.0 - y * y))
            .collect();
        let dx = self.w1.matvec_t(&dz);
        self.w1.add_outer(-lr, &dz, &x);
        for (b, d) in self.b1.iter_mut().zip(dz.iter()) {
            *b -= lr * d;
        }

        // Embedding gradients: slice dx back to each context position.
        for (pos, id) in ctx.iter().enumerate() {
            let from = pos * self.config.dim;
            let row = self.embed.row_mut(*id);
            for (j, r) in row.iter_mut().enumerate() {
                *r -= lr * dx[from + j];
            }
        }
        nll
    }

    /// Average per-token negative log-likelihood over pre-encoded id
    /// sequences, evaluated with the batched forward kernel.
    pub fn nll_ids(&self, ids: &[Vec<u32>]) -> f64 {
        let c = self.config.context;
        let (ctxs, targets) = self.flatten_positions(ids);
        if targets.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        // Bounded batches keep the logits matrix (batch × vocab) small.
        for (ctx_chunk, target_chunk) in ctxs.chunks(256 * c).zip(targets.chunks(256)) {
            let (_, _, mut logits) = self.forward_batch(ctx_chunk);
            for (e, &target) in target_chunk.iter().enumerate() {
                total += softmax_row_in_place(logits.row_mut(e), target as usize);
            }
        }
        total / targets.len() as f64
    }

    /// Average per-token negative log-likelihood over sequences.
    pub fn nll(&self, sequences: &[Vec<String>]) -> f64 {
        self.nll_ids(&self.encode_corpus(sequences))
    }

    /// Perplexity `exp(nll)`.
    pub fn perplexity(&self, sequences: &[Vec<String>]) -> f64 {
        self.nll(sequences).exp()
    }

    /// Average log-probability of a single token sequence (fluency score;
    /// higher is more fluent).
    pub fn fluency(&self, tokens: &[String]) -> f64 {
        -self.nll_ids(std::slice::from_ref(&self.encode_ids(tokens)))
    }

    /// Samples up to `max_len` tokens after `prefix` with the given
    /// temperature, using a seeded RNG.
    pub fn sample(
        &self,
        prefix: &[String],
        max_len: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = vec![BOS; self.config.context];
        for id in self.encode(prefix) {
            ctx.remove(0);
            ctx.push(id);
        }
        let mut out = Vec::new();
        for _ in 0..max_len {
            let (_, _, logits) = self.logits(&ctx);
            let probs = softmax_with_temperature(&logits, temperature);
            let pick = sample_index(&probs, rng.gen::<f32>());
            if pick == BOS {
                break;
            }
            out.push(self.vocab.resolve(pick as u32).to_string());
            ctx.remove(0);
            ctx.push(pick);
        }
        out
    }
}

/// In-place softmax over one logits row with the vectorizable
/// [`crate::exp_approx`] / lane reductions, returning the negative log
/// likelihood of `target`. Shared by the batched gradient and batched
/// eval paths so train-time and eval-time probabilities stay
/// numerically identical.
fn softmax_row_in_place(row: &mut [f32], target: usize) -> f64 {
    let max = crate::tensor::max_lanes(row);
    for v in row.iter_mut() {
        *v = crate::exp_approx(*v - max);
    }
    let inv_sum = 1.0 / crate::tensor::sum_lanes(row);
    for v in row.iter_mut() {
        *v *= inv_sum;
    }
    -((row[target].max(1e-12)) as f64).ln()
}

/// Splits source text into crude code tokens: identifiers, numbers, and
/// single punctuation characters. Shared by the LM corpus builder and
/// the fluency scorer so both see the same token stream.
pub fn code_tokens(source: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in source.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            } else if c == '\n' {
                tokens.push("<nl>".to_string());
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<Vec<String>> {
        let lines = [
            "raise TimeoutError ( msg )",
            "raise ValueError ( msg )",
            "try : x = f ( ) except TimeoutError : pass",
            "raise TimeoutError ( msg )",
        ];
        lines
            .iter()
            .map(|l| l.split_whitespace().map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn training_reduces_nll() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        let before = lm.nll(&corpus);
        for _ in 0..30 {
            lm.train_epoch(&corpus, 0.05);
        }
        let after = lm.nll(&corpus);
        assert!(
            after < before * 0.7,
            "nll did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn batched_training_reduces_nll() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode_corpus(&corpus);
        let before = lm.nll_ids(&ids);
        for _ in 0..30 {
            lm.train_epoch_batched(&ids, 0.05, 8);
        }
        let after = lm.nll_ids(&ids);
        assert!(
            after < before * 0.7,
            "batched nll did not drop enough: {before} -> {after}"
        );
    }

    #[test]
    fn batch_gradients_equal_summed_example_gradients() {
        let corpus = tiny_corpus();
        let lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode_corpus(&corpus);
        // Build the first 8 positions by hand.
        let c = LmConfig::default().context;
        let mut ctxs: Vec<u32> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        'outer: for seq in &ids {
            let mut ctx = vec![BOS as u32; c];
            for &t in seq {
                ctxs.extend_from_slice(&ctx);
                targets.push(t);
                ctx.remove(0);
                ctx.push(t);
                if targets.len() == 8 {
                    break 'outer;
                }
            }
        }
        let batched = lm.batch_gradients(&ctxs, &targets);
        assert_eq!(batched.count, 8);

        let mut reference = lm.example_gradients(
            &ctxs[0..c].iter().map(|&i| i as usize).collect::<Vec<_>>(),
            targets[0] as usize,
        );
        for e in 1..8 {
            let ctx: Vec<usize> = ctxs[e * c..(e + 1) * c]
                .iter()
                .map(|&i| i as usize)
                .collect();
            let g = lm.example_gradients(&ctx, targets[e] as usize);
            reference.embed.add_scaled(1.0, &g.embed);
            reference.w1.add_scaled(1.0, &g.w1);
            reference.w2.add_scaled(1.0, &g.w2);
            for (a, b) in reference.b1.iter_mut().zip(g.b1.iter()) {
                *a += b;
            }
            for (a, b) in reference.b2.iter_mut().zip(g.b2.iter()) {
                *a += b;
            }
            reference.nll += g.nll;
        }

        let close = |a: &Matrix, b: &Matrix, what: &str| {
            for (x, y) in a.data().iter().zip(b.data().iter()) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "{what}: batched {x} vs per-example {y}"
                );
            }
        };
        close(&batched.embed, &reference.embed, "embed");
        close(&batched.w1, &reference.w1, "w1");
        close(&batched.w2, &reference.w2, "w2");
        for (x, y) in batched.b1.iter().zip(reference.b1.iter()) {
            assert!((x - y).abs() < 1e-5, "b1");
        }
        for (x, y) in batched.b2.iter().zip(reference.b2.iter()) {
            assert!((x - y).abs() < 1e-5, "b2");
        }
        assert!((batched.nll - reference.nll).abs() < 1e-5);
    }

    #[test]
    fn batched_nll_matches_per_example_nll() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        for _ in 0..5 {
            lm.train_epoch(&corpus, 0.05);
        }
        // Per-example reference NLL via the scalar kernels.
        let encoded: Vec<Vec<usize>> = corpus.iter().map(|s| lm.encode(s)).collect();
        let mut total = 0.0f64;
        let mut count = 0usize;
        for seq in &encoded {
            let mut ctx = vec![BOS; lm.config.context];
            for &target in seq {
                let (_, _, logits) = lm.logits(&ctx);
                let probs = crate::softmax(&logits);
                total += -(probs[target].max(1e-12) as f64).ln();
                count += 1;
                ctx.remove(0);
                ctx.push(target);
            }
        }
        let reference = total / count as f64;
        // The batched eval path uses exp_approx (~2e-7 relative), the
        // per-example reference libm exp.
        assert!((lm.nll(&corpus) - reference).abs() < 1e-6);
    }

    #[test]
    fn perplexity_is_exp_of_nll() {
        let corpus = tiny_corpus();
        let lm = NgramLm::new(&corpus, LmConfig::default());
        let nll = lm.nll(&corpus);
        assert!((lm.perplexity(&corpus) - nll.exp()).abs() < 1e-9);
    }

    #[test]
    fn oov_tokens_map_to_unk() {
        let corpus = tiny_corpus();
        let lm = NgramLm::new(&corpus, LmConfig::default());
        let ids = lm.encode(&["utterly_novel_token".to_string()]);
        assert_eq!(ids, vec![UNK]);
        assert_eq!(
            lm.encode_ids(&["utterly_novel_token".to_string()]),
            vec![UNK as u32]
        );
    }

    #[test]
    fn trained_model_prefers_seen_continuations() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        for _ in 0..60 {
            lm.train_epoch(&corpus, 0.05);
        }
        let seen: Vec<String> = "raise TimeoutError ( msg )"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let shuffled: Vec<String> = ") msg ( TimeoutError raise"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        assert!(
            lm.fluency(&seen) > lm.fluency(&shuffled),
            "fluency should prefer trained order"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let corpus = tiny_corpus();
        let mut lm = NgramLm::new(&corpus, LmConfig::default());
        for _ in 0..20 {
            lm.train_epoch(&corpus, 0.05);
        }
        let prefix = vec!["raise".to_string()];
        let a = lm.sample(&prefix, 5, 0.8, 11);
        let b = lm.sample(&prefix, 5, 0.8, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn code_tokens_split_identifiers_and_punctuation() {
        let toks = code_tokens("raise TimeoutError(\"db timeout\")");
        assert!(toks.contains(&"raise".to_string()));
        assert!(toks.contains(&"TimeoutError".to_string()));
        assert!(toks.contains(&"(".to_string()));
        assert!(toks.contains(&"\"".to_string()));
    }

    #[test]
    fn empty_corpus_yields_zero_nll() {
        let lm = NgramLm::new(&[], LmConfig::default());
        assert_eq!(lm.nll(&[]), 0.0);
        assert_eq!(lm.vocab_size(), 2);
        let mut lm2 = NgramLm::new(&[], LmConfig::default());
        assert_eq!(lm2.train_epoch_batched(&[], 0.05, 8), 0.0);
    }
}
