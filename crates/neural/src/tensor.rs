//! Minimal dense row-major matrices, plus the blocked minibatch GEMM
//! kernels behind the batched LM/MLP training paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row-tile size for the blocked GEMM kernels: a tile of weight rows
/// (`GEMM_TILE × cols` floats) stays L1-resident while the whole batch
/// streams against it.
const GEMM_TILE: usize = 32;

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Xavier-style uniform initialization in `[-s, s]` with
    /// `s = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..s)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = W x` (matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            *yr = acc;
        }
        y
    }

    /// `y = W^T x` (transposed matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, xr) in x.iter().enumerate() {
            let row = self.row(r);
            let xr = *xr;
            for (c, w) in row.iter().enumerate() {
                y[c] += w * xr;
            }
        }
        y
    }

    /// Rank-1 accumulation `self += a * u v^T` (outer product), the core
    /// of weight-gradient updates.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, a: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "outer product row mismatch");
        assert_eq!(v.len(), self.cols, "outer product col mismatch");
        for (r, ur) in u.iter().enumerate() {
            let row = self.row_mut(r);
            let ur = a * ur;
            for (c, w) in row.iter_mut().enumerate() {
                *w += ur * v[c];
            }
        }
    }

    /// Fills with zeros.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `C = self · B^T` for `self: m×k`, `b: n×k` — the minibatch
    /// forward kernel (`H = X · W^T` with weight rows contiguous).
    ///
    /// On x86-64 with AVX2+FMA this runs a lane-parallel SIMD
    /// microkernel (within ~1e-6 relative of the scalar summation
    /// order); elsewhere every output element is a row-dot with
    /// ascending `k`, bitwise identical to [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.cols()`.
    pub fn matmul_nt(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.cols, "matmul_nt inner dimension mismatch");
        let m = self.rows;
        let n = b.rows;
        let k_len = self.cols;
        let mut out = Matrix::zeros(m, n);
        #[cfg(target_arch = "x86_64")]
        if simd::fma_available() && k_len >= 8 {
            // SAFETY: feature-detected above; kernel only reads within
            // the asserted `m×k` / `n×k` bounds.
            unsafe { simd::matmul_nt_fma(&self.data, &b.data, &mut out.data, m, n, k_len) };
            return out;
        }
        // Scalar fallback: register-block over 8 of b's rows so eight
        // independent dot-product chains advance together. Each element
        // is one ascending-k dot product — bitwise equal to the
        // per-example `matvec` path.
        const JW: usize = 8;
        for j0 in (0..n).step_by(JW) {
            let jw = JW.min(n - j0);
            for i in 0..m {
                let a_row = &self.data[i * k_len..(i + 1) * k_len];
                let mut acc = [0.0f32; JW];
                if jw == JW {
                    let rows: [&[f32]; JW] = std::array::from_fn(|jj| b.row(j0 + jj));
                    for (k, av) in a_row.iter().enumerate() {
                        for jj in 0..JW {
                            acc[jj] += av * rows[jj][k];
                        }
                    }
                } else {
                    for (jj, a) in acc.iter_mut().enumerate().take(jw) {
                        *a = dot(a_row, b.row(j0 + jj));
                    }
                }
                out.data[i * n + j0..i * n + j0 + jw].copy_from_slice(&acc[..jw]);
            }
        }
        out
    }

    /// `C = self · B` for `self: m×k`, `b: k×n` — the minibatch backward
    /// kernel (`dH = dLogits · W`). Row-major friendly: each output row
    /// accumulates axpy contributions from `b`'s rows in ascending `k`,
    /// the order [`Matrix::matvec_t`] uses (FMA-fused on x86-64).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul_nn(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul_nn inner dimension mismatch");
        let m = self.rows;
        let n = b.cols;
        let mut out = Matrix::zeros(m, n);
        #[cfg(target_arch = "x86_64")]
        if simd::fma_available() && n >= 8 {
            // SAFETY: feature-detected; kernel stays within the asserted
            // `m×k` / `k×n` / `m×n` bounds.
            unsafe { simd::matmul_nn_fma(&self.data, &b.data, &mut out.data, m, n, self.cols) };
            return out;
        }
        // Tile over the contraction dimension so a tile of b's rows
        // stays L1-hot across the whole batch; per output element the
        // contributions still accumulate in ascending k (tiles ascend,
        // inner k ascends), matching `matvec_t` bitwise.
        for k0 in (0..self.cols).step_by(GEMM_TILE) {
            let k1 = (k0 + GEMM_TILE).min(self.cols);
            for i in 0..m {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (k, ak) in a_row[k0..k1].iter().enumerate() {
                    for (o, bk) in out_row.iter_mut().zip(b.row(k0 + k).iter()) {
                        *o += ak * bk;
                    }
                }
            }
        }
        out
    }

    /// `self += a · U^T · V` for `u: B×m`, `v: B×n`, `self: m×n` — the
    /// minibatch weight-gradient kernel. Accumulates example-by-example
    /// in ascending batch order, i.e. the same sequence of rank-1
    /// updates [`Matrix::add_outer`] performs per example.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_matmul_tn(&mut self, a: f32, u: &Matrix, v: &Matrix) {
        assert_eq!(u.rows, v.rows, "add_matmul_tn batch dimension mismatch");
        assert_eq!(u.cols, self.rows, "add_matmul_tn row mismatch");
        assert_eq!(v.cols, self.cols, "add_matmul_tn col mismatch");
        #[cfg(target_arch = "x86_64")]
        if simd::fma_available() && self.cols >= 8 {
            // SAFETY: feature-detected; kernel stays within the asserted
            // `B×m` / `B×n` / `m×n` bounds.
            unsafe {
                simd::add_matmul_tn_fma(
                    &mut self.data,
                    a,
                    &u.data,
                    &v.data,
                    u.rows,
                    self.rows,
                    self.cols,
                )
            };
            return;
        }
        // Tile over the output rows so the accumulator tile stays
        // L1-hot across the batch (the full accumulator streams through
        // cache once per call, not once per example); per element the
        // batch contributions still sum in ascending example order,
        // matching a sequence of `add_outer` calls.
        let cols = self.cols;
        for r0 in (0..self.rows).step_by(GEMM_TILE) {
            let r1 = (r0 + GEMM_TILE).min(self.rows);
            for e in 0..u.rows {
                let u_row = u.row(e);
                let v_row = v.row(e);
                for (r, uval) in u_row.iter().enumerate().take(r1).skip(r0) {
                    let scaled = a * uval;
                    let out_row = &mut self.data[r * cols..(r + 1) * cols];
                    for (o, vc) in out_row.iter_mut().zip(v_row.iter()) {
                        *o += scaled * vc;
                    }
                }
            }
        }
    }

    /// Adds `bias` to every row (batched bias application).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Column sums (batched bias gradient), accumulated in ascending row
    /// order to match per-example accumulation.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r).iter()) {
                *o += x;
            }
        }
        out
    }

    /// `self += a * other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, a: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled col mismatch");
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += a * y;
        }
    }
}

/// AVX2+FMA microkernel for the batched forward GEMM. Lane-parallel
/// accumulation reorders the per-element float sums (within ~1e-6
/// relative of the scalar order — the kernel parity suite bounds end
/// results at 1e-5); the scalar fallback keeps the exact `matvec`
/// summation order.
#[cfg(target_arch = "x86_64")]
mod simd {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Whether the FMA kernel may be used on this machine.
    pub fn fma_available() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    /// `out[i][..] = Σ_k a[i][k] · b[k][..]` for row-major `a: m×k`,
    /// `b: k×n`, `out: m×n`: the output row tile lives in registers
    /// while `k` streams (one store per tile instead of a read-modify-
    /// write per `k`).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA (check [`fma_available`]) and slices sized
    /// exactly `m*k`, `k*n`, `m*n`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_nn_fma(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        k: usize,
    ) {
        const NW: usize = 4; // 4 × 8 lanes = 32 output columns in flight
        let simd_n = n - n % 8;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let mut j0 = 0;
            while j0 < simd_n {
                let tile = ((simd_n - j0) / 8).min(NW);
                let mut acc = [_mm256_setzero_ps(); NW];
                for (kk, av_s) in a_row.iter().enumerate() {
                    let av = _mm256_set1_ps(*av_s);
                    for (t, accv) in acc.iter_mut().enumerate().take(tile) {
                        let bv = _mm256_loadu_ps(b.as_ptr().add(kk * n + j0 + t * 8));
                        *accv = _mm256_fmadd_ps(av, bv, *accv);
                    }
                }
                for (t, accv) in acc.iter().enumerate().take(tile) {
                    _mm256_storeu_ps(out.as_mut_ptr().add(i * n + j0 + t * 8), *accv);
                }
                j0 += tile * 8;
            }
            // Scalar tail columns.
            for j in simd_n..n {
                let mut total = 0.0f32;
                for (kk, av) in a_row.iter().enumerate() {
                    total = av.mul_add(b[kk * n + j], total);
                }
                out[i * n + j] = total;
            }
        }
    }

    /// `out[r][..] += a · Σ_e u[e][r] · v[e][..]` for row-major
    /// `u: bsz×m`, `v: bsz×n`, `out: m×n`: the output row tile lives in
    /// registers while the batch streams.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA (check [`fma_available`]) and slices sized
    /// exactly `bsz*m`, `bsz*n`, `m*n`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_matmul_tn_fma(
        out: &mut [f32],
        a: f32,
        u: &[f32],
        v: &[f32],
        bsz: usize,
        m: usize,
        n: usize,
    ) {
        let simd_n = n - n % 8;
        for r in 0..m {
            let mut j0 = 0;
            while j0 < simd_n {
                let mut acc = _mm256_setzero_ps();
                for e in 0..bsz {
                    let scaled = _mm256_set1_ps(a * u[e * m + r]);
                    let vv = _mm256_loadu_ps(v.as_ptr().add(e * n + j0));
                    acc = _mm256_fmadd_ps(scaled, vv, acc);
                }
                let cur = _mm256_loadu_ps(out.as_ptr().add(r * n + j0));
                _mm256_storeu_ps(out.as_mut_ptr().add(r * n + j0), _mm256_add_ps(cur, acc));
                j0 += 8;
            }
            for j in simd_n..n {
                let mut total = 0.0f32;
                for e in 0..bsz {
                    total = (a * u[e * m + r]).mul_add(v[e * n + j], total);
                }
                out[r * n + j] += total;
            }
        }
    }

    /// `out[i][j] = dot(a[i][..], b[j][..])` for row-major `a: m×k`,
    /// `b: n×k`, `out: m×n`: four b-rows × 8 SIMD lanes per step.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA (check [`fma_available`]) and slices sized
    /// exactly `m*k`, `n*k`, `m*n`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_nt_fma(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        n: usize,
        k: usize,
    ) {
        const JW: usize = 4;
        let simd_k = k - k % 8;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let mut j0 = 0;
            while j0 + JW <= n {
                let mut acc = [_mm256_setzero_ps(); JW];
                let mut kk = 0;
                while kk < simd_k {
                    let av = _mm256_loadu_ps(a_row.as_ptr().add(kk));
                    for (jj, accv) in acc.iter_mut().enumerate() {
                        let bv = _mm256_loadu_ps(b.as_ptr().add((j0 + jj) * k + kk));
                        *accv = _mm256_fmadd_ps(av, bv, *accv);
                    }
                    kk += 8;
                }
                for (jj, accv) in acc.iter().enumerate() {
                    // Horizontal sum of the 8 lanes.
                    let hi = _mm256_extractf128_ps(*accv, 1);
                    let lo = _mm256_castps256_ps128(*accv);
                    let sum4 = _mm_add_ps(hi, lo);
                    let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
                    let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 1));
                    let mut total = _mm_cvtss_f32(sum1);
                    for kk in simd_k..k {
                        total += a_row[kk] * b[(j0 + jj) * k + kk];
                    }
                    out[i * n + j0 + jj] = total;
                }
                j0 += JW;
            }
            while j0 < n {
                let b_row = &b[j0 * k..(j0 + 1) * k];
                out[i * n + j0] = super::dot(a_row, b_row);
                j0 += 1;
            }
        }
    }
}

/// 8-lane parallel sum: a vectorizable reduction (independent lane
/// accumulators, fixed combine order — deterministic, but not the same
/// float-order as a serial `iter().sum()`).
pub fn sum_lanes(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = xs.chunks_exact(8);
    let rem = chunks.remainder();
    for ch in chunks {
        for (a, x) in acc.iter_mut().zip(ch.iter()) {
            *a += x;
        }
    }
    let mut total = 0.0;
    for a in acc {
        total += a;
    }
    for x in rem {
        total += x;
    }
    total
}

/// 8-lane parallel max (deterministic; `max` over f32 lanes).
pub fn max_lanes(xs: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; 8];
    let chunks = xs.chunks_exact(8);
    let rem = chunks.remainder();
    for ch in chunks {
        for (a, x) in acc.iter_mut().zip(ch.iter()) {
            *a = a.max(*x);
        }
    }
    let mut total = f32::NEG_INFINITY;
    for a in acc {
        total = total.max(a);
    }
    for x in rem {
        total = total.max(*x);
    }
    total
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine similarity; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_computes_products() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_dimensions() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.0], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let a = Matrix::xavier(4, 4, 1);
        let b = Matrix::xavier(4, 4, 1);
        let c = Matrix::xavier(4, 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bound = (6.0f32 / 8.0).sqrt();
        assert!(a.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn matmul_nt_matches_per_row_matvec() {
        // Wide enough to exercise the SIMD kernel's main loop + tail.
        let x = Matrix::xavier(5, 19, 1);
        let w = Matrix::xavier(7, 19, 2);
        let h = x.matmul_nt(&w);
        assert_eq!(h.rows(), 5);
        assert_eq!(h.cols(), 7);
        for e in 0..5 {
            let per_example = w.matvec(x.row(e));
            for (a, b) in h.row(e).iter().zip(per_example.iter()) {
                assert!((a - b).abs() < 1e-5, "row {e}: batched {a} vs matvec {b}");
            }
        }
    }

    #[test]
    fn matmul_nn_matches_per_row_matvec_t() {
        // Wide enough to exercise the SIMD kernel's tiles + tail.
        let dz = Matrix::xavier(5, 21, 3);
        let w = Matrix::xavier(21, 43, 4);
        let dx = dz.matmul_nn(&w);
        for e in 0..5 {
            let per_example = w.matvec_t(dz.row(e));
            for (a, b) in dx.row(e).iter().zip(per_example.iter()) {
                assert!((a - b).abs() < 1e-5, "row {e}: batched {a} vs matvec_t {b}");
            }
        }
    }

    #[test]
    fn add_matmul_tn_matches_per_example_outer() {
        let u = Matrix::xavier(6, 14, 5);
        let v = Matrix::xavier(6, 21, 6);
        let mut batched = Matrix::zeros(14, 21);
        batched.add_matmul_tn(2.0, &u, &v);
        let mut reference = Matrix::zeros(14, 21);
        for e in 0..6 {
            reference.add_outer(2.0, u.row(e), v.row(e));
        }
        for (a, b) in batched.data().iter().zip(reference.data().iter()) {
            assert!((a - b).abs() < 1e-5, "batched {a} vs per-example {b}");
        }
    }

    #[test]
    fn lane_reductions_match_serial() {
        let xs: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let serial_sum: f32 = xs.iter().sum();
        let serial_max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!((sum_lanes(&xs) - serial_sum).abs() < 1e-5);
        assert_eq!(max_lanes(&xs), serial_max);
        assert_eq!(sum_lanes(&[]), 0.0);
        assert_eq!(max_lanes(&[1.5]), 1.5);
    }

    #[test]
    fn bias_and_col_sum_helpers() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.add_row_bias(&[10.0, 20.0, 30.0]);
        assert_eq!(m.row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(m.col_sums(), vec![25.0, 47.0, 69.0]);
        let mut acc = Matrix::zeros(2, 3);
        acc.add_scaled(0.5, &m);
        assert_eq!(acc.get(0, 0), 5.5);
    }

    #[test]
    fn cosine_similarity_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
