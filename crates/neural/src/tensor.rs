//! Minimal dense row-major matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Xavier-style uniform initialization in `[-s, s]` with
    /// `s = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..s)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// A row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = W x` (matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            y[r] = acc;
        }
        y
    }

    /// `y = W^T x` (transposed matrix-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            for (c, w) in row.iter().enumerate() {
                y[c] += w * xr;
            }
        }
        y
    }

    /// Rank-1 accumulation `self += a * u v^T` (outer product), the core
    /// of weight-gradient updates.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, a: f32, u: &[f32], v: &[f32]) {
        assert_eq!(u.len(), self.rows, "outer product row mismatch");
        assert_eq!(v.len(), self.cols, "outer product col mismatch");
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let ur = a * u[r];
            for (c, w) in row.iter_mut().enumerate() {
                *w += ur * v[c];
            }
        }
    }

    /// Fills with zeros.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine similarity; zero vectors yield 0.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_computes_products() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_dimensions() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.0], &[3.0, 4.0]);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let a = Matrix::xavier(4, 4, 1);
        let b = Matrix::xavier(4, 4, 1);
        let c = Matrix::xavier(4, 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bound = (6.0f32 / 8.0).sqrt();
        assert!(a.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn cosine_similarity_properties() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
