//! Optimizers: plain SGD and Adam.

/// Adam optimizer state for one parameter tensor (flattened).
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Adam {
    /// Creates Adam state for `n` parameters with standard defaults.
    pub fn new(n: usize, lr: f32) -> Self {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Applies one update step: `params -= lr * m_hat / (sqrt(v_hat) + eps)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the state size.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "adam param size mismatch");
        assert_eq!(grads.len(), self.m.len(), "adam grad size mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// One SGD step: `params -= lr * grads`.
pub fn sgd_step(params: &mut [f32], grads: &[f32], lr: f32) {
    debug_assert_eq!(params.len(), grads.len());
    for (p, g) in params.iter_mut().zip(grads.iter()) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_a_quadratic() {
        // f(x) = (x - 3)^2, f'(x) = 2(x - 3)
        let mut x = [0.0f32];
        for _ in 0..100 {
            let g = [2.0 * (x[0] - 3.0)];
            sgd_step(&mut x, &g, 0.1);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut x = [10.0f32];
        let mut adam = Adam::new(1, 0.3);
        for _ in 0..300 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "got {}", x[0]);
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        let mut x = [5.0f32, 5.0];
        let mut adam = Adam::new(2, 0.2);
        for _ in 0..200 {
            // Only the first coordinate gets gradient signal.
            let g = [2.0 * x[0], 0.0];
            adam.step(&mut x, &g);
        }
        assert!(x[0].abs() < 0.1);
        assert!((x[1] - 5.0).abs() < 1e-6);
    }
}
