//! Multi-layer perceptrons with manual backpropagation.
//!
//! The implementation is intentionally small: dense layers, one hidden
//! activation type, identity output. Correctness is enforced by a
//! finite-difference gradient check in the test suite.

use crate::optim::{sgd_step, Adam};
use crate::tensor::Matrix;

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No non-linearity (linear network).
    Identity,
}

impl Activation {
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *post-activation* value.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// Gradients for every parameter tensor of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-layer weight gradients.
    pub weights: Vec<Matrix>,
    /// Per-layer bias gradients.
    pub biases: Vec<Vec<f32>>,
}

/// A feed-forward network: `dims = [in, h1, ..., out]`, hidden layers use
/// the configured activation, the output layer is linear.
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
    act: Activation,
}

impl Mlp {
    /// Creates a network with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], act: Activation, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            weights.push(Matrix::xavier(w[1], w[0], seed.wrapping_add(i as u64)));
            biases.push(vec![0.0; w[1]]);
        }
        Mlp {
            weights,
            biases,
            act,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights[0].cols()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights[self.weights.len() - 1].rows()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.weights
            .iter()
            .map(|w| w.rows() * w.cols())
            .sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_cached(x).pop().expect("at least one layer")
    }

    /// Scalar convenience for networks with a single output.
    pub fn scalar(&self, x: &[f32]) -> f32 {
        self.forward(x)[0]
    }

    /// Forward pass returning every layer's post-activation output
    /// (excluding the input itself), last entry = network output.
    fn forward_cached(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let n_layers = self.weights.len();
        let mut outs: Vec<Vec<f32>> = Vec::with_capacity(n_layers);
        let mut cur = x.to_vec();
        for (i, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            let mut z = w.matvec(&cur);
            for (zj, bj) in z.iter_mut().zip(b.iter()) {
                *zj += bj;
            }
            let is_output = i == n_layers - 1;
            if !is_output {
                for zj in z.iter_mut() {
                    *zj = self.act.apply(*zj);
                }
            }
            outs.push(z.clone());
            cur = z;
        }
        outs
    }

    /// Batched forward pass over `x: B×in`, returning `B×out` — one GEMM
    /// per layer instead of one matvec per example.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input dimension.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        self.forward_batch_cached(x)
            .pop()
            .expect("at least one layer")
    }

    /// Batched forward returning every layer's post-activation output,
    /// last entry = network output.
    fn forward_batch_cached(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(
            x.cols(),
            self.input_dim(),
            "batched input dimension mismatch"
        );
        let n_layers = self.weights.len();
        let mut outs: Vec<Matrix> = Vec::with_capacity(n_layers);
        for (i, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            let input = outs.last().unwrap_or(x);
            let mut z = input.matmul_nt(w);
            z.add_row_bias(b);
            if i != n_layers - 1 {
                for v in z.data_mut().iter_mut() {
                    *v = self.act.apply(*v);
                }
            }
            outs.push(z);
        }
        outs
    }

    /// Batched backprop: `grad_out: B×out` rows are dL/d output per
    /// example; returns gradients *summed* over the batch (equal to
    /// accumulating [`Mlp::backward`] per example).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn backward_batch(&self, x: &Matrix, grad_out: &Matrix) -> Gradients {
        assert_eq!(x.rows(), grad_out.rows(), "batch size mismatch");
        assert_eq!(
            grad_out.cols(),
            self.output_dim(),
            "output dimension mismatch"
        );
        let outs = self.forward_batch_cached(x);
        let n = self.weights.len();
        let mut grads = self.zero_gradients();

        let mut delta = grad_out.clone();
        for layer in (0..n).rev() {
            let input: &Matrix = if layer == 0 { x } else { &outs[layer - 1] };
            grads.weights[layer].add_matmul_tn(1.0, &delta, input);
            for (g, d) in grads.biases[layer].iter_mut().zip(delta.col_sums()) {
                *g += d;
            }
            if layer > 0 {
                let mut prev = delta.matmul_nn(&self.weights[layer]);
                for e in 0..prev.rows() {
                    for (p, y) in prev
                        .row_mut(e)
                        .iter_mut()
                        .zip(outs[layer - 1].row(e).iter())
                    {
                        *p *= self.act.derivative_from_output(*y);
                    }
                }
                delta = prev;
            }
        }
        grads
    }

    /// Backpropagates `grad_out` (dL/d output) for input `x`, returning
    /// parameter gradients.
    pub fn backward(&self, x: &[f32], grad_out: &[f32]) -> Gradients {
        let outs = self.forward_cached(x);
        let n = self.weights.len();
        let mut gw: Vec<Matrix> = self
            .weights
            .iter()
            .map(|w| Matrix::zeros(w.rows(), w.cols()))
            .collect();
        let mut gb: Vec<Vec<f32>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        // delta = dL/dz for the current layer (output layer is linear).
        let mut delta = grad_out.to_vec();
        for layer in (0..n).rev() {
            let input: &[f32] = if layer == 0 { x } else { &outs[layer - 1] };
            gw[layer].add_outer(1.0, &delta, input);
            for (g, d) in gb[layer].iter_mut().zip(delta.iter()) {
                *g += d;
            }
            if layer > 0 {
                // Propagate: dL/d input = W^T delta, then through activation.
                let mut prev = self.weights[layer].matvec_t(&delta);
                for (p, y) in prev.iter_mut().zip(outs[layer - 1].iter()) {
                    *p *= self.act.derivative_from_output(*y);
                }
                delta = prev;
            }
        }
        Gradients {
            weights: gw,
            biases: gb,
        }
    }

    /// Applies gradients with plain SGD.
    pub fn apply_sgd(&mut self, grads: &Gradients, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(grads.weights.iter()) {
            sgd_step(w.data_mut(), g.data(), lr);
        }
        for (b, g) in self.biases.iter_mut().zip(grads.biases.iter()) {
            sgd_step(b, g, lr);
        }
    }

    /// Applies gradients with Adam (state in a matching [`MlpAdam`]).
    pub fn apply_adam(&mut self, grads: &Gradients, opt: &mut MlpAdam) {
        for ((w, g), a) in self
            .weights
            .iter_mut()
            .zip(grads.weights.iter())
            .zip(opt.weights.iter_mut())
        {
            a.step(w.data_mut(), g.data());
        }
        for ((b, g), a) in self
            .biases
            .iter_mut()
            .zip(grads.biases.iter())
            .zip(opt.biases.iter_mut())
        {
            a.step(b, g);
        }
    }

    /// One SGD step on the squared error `|y - target|^2 / 2`.
    ///
    /// Returns the loss before the update.
    pub fn train_mse_step(&mut self, x: &[f32], target: &[f32], lr: f32) -> f32 {
        let y = self.forward(x);
        let grad: Vec<f32> = y.iter().zip(target.iter()).map(|(a, b)| a - b).collect();
        let loss: f32 = grad.iter().map(|g| g * g).sum::<f32>() / 2.0;
        let grads = self.backward(x, &grad);
        self.apply_sgd(&grads, lr);
        loss
    }

    /// Merges another gradient set into `into` (for minibatching).
    pub fn accumulate(into: &mut Gradients, from: &Gradients) {
        for (a, b) in into.weights.iter_mut().zip(from.weights.iter()) {
            for (x, y) in a.data_mut().iter_mut().zip(b.data().iter()) {
                *x += y;
            }
        }
        for (a, b) in into.biases.iter_mut().zip(from.biases.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }

    /// A zeroed gradient set shaped like this network.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            weights: self
                .weights
                .iter()
                .map(|w| Matrix::zeros(w.rows(), w.cols()))
                .collect(),
            biases: self.biases.iter().map(|b| vec![0.0; b.len()]).collect(),
        }
    }

    #[cfg(test)]
    fn weight_mut(&mut self, layer: usize, r: usize, c: usize) -> &mut f32 {
        self.weights[layer].get_mut(r, c)
    }
}

/// Adam state matching an [`Mlp`]'s parameter tensors.
#[derive(Debug, Clone)]
pub struct MlpAdam {
    weights: Vec<Adam>,
    biases: Vec<Adam>,
}

impl MlpAdam {
    /// Creates optimizer state for a network.
    pub fn new(net: &Mlp, lr: f32) -> Self {
        MlpAdam {
            weights: net
                .weights
                .iter()
                .map(|w| Adam::new(w.rows() * w.cols(), lr))
                .collect(),
            biases: net.biases.iter().map(|b| Adam::new(b.len(), lr)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, 1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut net = Mlp::new(&[4, 6, 3], Activation::Tanh, 42);
        let x = [0.3, -0.2, 0.5, 0.1];
        // Loss = sum of outputs, so dL/dy = 1 for every output.
        let grad_out = vec![1.0; 3];
        let grads = net.backward(&x, &grad_out);
        let eps = 1e-3;
        for (layer, r, c) in [(0usize, 0usize, 1usize), (0, 3, 2), (1, 2, 4), (1, 0, 0)] {
            let orig = *net.weight_mut(layer, r, c);
            *net.weight_mut(layer, r, c) = orig + eps;
            let plus: f32 = net.forward(&x).iter().sum();
            *net.weight_mut(layer, r, c) = orig - eps;
            let minus: f32 = net.forward(&x).iter().sum();
            *net.weight_mut(layer, r, c) = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads.weights[layer].get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "layer {layer} w[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn learns_a_linear_map() {
        // y = 2a - b is learnable by a linear net.
        let mut net = Mlp::new(&[2, 1], Activation::Identity, 3);
        for _ in 0..500 {
            for (a, b) in [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (0.5, 0.25)] {
                net.train_mse_step(&[a, b], &[2.0 * a - b], 0.1);
            }
        }
        assert!((net.scalar(&[1.0, 1.0]) - 1.0).abs() < 0.05);
        assert!((net.scalar(&[0.0, 1.0]) + 1.0).abs() < 0.05);
    }

    #[test]
    fn xor_requires_the_hidden_layer() {
        let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let ys = [0.0, 1.0, 1.0, 0.0];
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, 7);
        for _ in 0..800 {
            for (x, y) in xs.iter().zip(ys.iter()) {
                net.train_mse_step(x, &[*y], 0.1);
            }
        }
        for (x, y) in xs.iter().zip(ys.iter()) {
            let out = net.scalar(x);
            assert!((out - y).abs() < 0.25, "xor({x:?}) = {out}, expected {y}");
        }
    }

    #[test]
    fn adam_training_converges_faster_than_nothing() {
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, 9);
        let mut opt = MlpAdam::new(&net, 0.01);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            let mut total = 0.0;
            for i in 0..8 {
                let x = i as f32 / 8.0;
                let t = (x * 3.0).sin();
                let y = net.forward(&[x]);
                let grad = vec![y[0] - t];
                total += (y[0] - t) * (y[0] - t);
                let g = net.backward(&[x], &grad);
                net.apply_adam(&g, &mut opt);
            }
            if first_loss.is_none() {
                first_loss = Some(total);
            }
            last_loss = total;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.1,
            "loss failed to drop: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn batched_forward_matches_per_example() {
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, 11);
        let rows = [
            vec![0.1, -0.2, 0.3],
            vec![0.5, 0.0, -0.4],
            vec![-0.9, 0.8, 0.2],
        ];
        let x = Matrix::from_vec(3, 3, rows.iter().flatten().copied().collect());
        let batched = net.forward_batch(&x);
        for (e, row) in rows.iter().enumerate() {
            let per_example = net.forward(row);
            for (a, b) in batched.row(e).iter().zip(per_example.iter()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "row {e}: batched {a} vs per-example {b}"
                );
            }
        }
    }

    #[test]
    fn batched_backward_matches_summed_per_example() {
        let net = Mlp::new(&[4, 6, 2], Activation::Tanh, 13);
        let rows = [
            [0.3, -0.2, 0.5, 0.1],
            [0.0, 0.9, -0.5, 0.4],
            [-0.7, 0.2, 0.2, -0.1],
        ];
        let grad_rows = [[1.0, -0.5], [0.25, 0.75], [-1.0, 0.5]];
        let x = Matrix::from_vec(3, 4, rows.iter().flatten().copied().collect());
        let g = Matrix::from_vec(3, 2, grad_rows.iter().flatten().copied().collect());
        let batched = net.backward_batch(&x, &g);
        let mut reference = net.zero_gradients();
        for (row, grad) in rows.iter().zip(grad_rows.iter()) {
            Mlp::accumulate(&mut reference, &net.backward(row, grad));
        }
        for (a, b) in batched.weights.iter().zip(reference.weights.iter()) {
            for (x, y) in a.data().iter().zip(b.data().iter()) {
                assert!((x - y).abs() < 1e-5, "weight grad {x} vs {y}");
            }
        }
        for (a, b) in batched.biases.iter().zip(reference.biases.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-5, "bias grad {x} vs {y}");
            }
        }
    }

    #[test]
    fn minibatch_accumulation_matches_sum() {
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, 5);
        let g1 = net.backward(&[0.1, 0.2], &[1.0]);
        let g2 = net.backward(&[-0.3, 0.4], &[1.0]);
        let mut acc = net.zero_gradients();
        Mlp::accumulate(&mut acc, &g1);
        Mlp::accumulate(&mut acc, &g2);
        let expected = g1.weights[0].get(0, 0) + g2.weights[0].get(0, 0);
        assert!((acc.weights[0].get(0, 0) - expected).abs() < 1e-6);
    }
}
