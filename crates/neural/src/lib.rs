//! # nfi-neural — a from-scratch micro neural-network library
//!
//! The Rust ML ecosystem is deliberately not used (offline build, thin
//! ecosystem — see DESIGN.md §1); this crate implements exactly the
//! pieces the neural fault-injection pipeline needs:
//!
//! * [`tensor::Matrix`] — minimal dense row-major matrices,
//! * [`mlp::Mlp`] — multi-layer perceptrons with manual backprop and
//!   [`optim::Adam`], gradient-checked against finite differences,
//! * [`lm::NgramLm`] — a neural n-gram language model over code tokens
//!   (embeddings → tanh hidden layer → softmax), used for fluency
//!   scoring and the fine-tuning learning-curve experiment (E6),
//! * [`embedder::TfIdf`] — a TF-IDF text encoder with cosine similarity
//!   for retrieval over the fine-tuning corpus.
//!
//! ```
//! use nfi_neural::mlp::{Activation, Mlp};
//!
//! // Learn XOR: the classic non-linear sanity check.
//! let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let ys = [0.0, 1.0, 1.0, 0.0];
//! let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, 7);
//! for _ in 0..800 {
//!     for (x, y) in xs.iter().zip(ys.iter()) {
//!         net.train_mse_step(x, &[*y], 0.1);
//!     }
//! }
//! let out = net.forward(&xs[1]);
//! assert!(out[0] > 0.5);
//! ```

pub mod embedder;
pub mod intern;
pub mod lm;
pub mod mlp;
pub mod optim;
pub mod tensor;

/// Fast `exp` for the batched kernels: Cephes-style range reduction +
/// 6th-order polynomial, accurate to ~2e-7 relative on the float range.
/// Branch-free (clamp/floor/bit-assembly), so the compiler vectorizes
/// it across a logits row — unlike libm `expf`, which is the dominant
/// cost of full-vocabulary softmax at training time. The batched
/// LM path uses this; the per-example reference path keeps libm `exp`,
/// and the parity suite bounds the difference at 1e-5.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(-87.0, 87.0);
    let n = (LOG2E * x + 0.5).floor();
    let r = x - n * LN2_HI - n * LN2_LO;
    let mut p = 1.987_569_1e-4f32;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5.000_000_3e-1;
    let poly = p * r * r + r + 1.0;
    let two_n = f32::from_bits((((n as i32) + 127) << 23) as u32);
    poly * two_n
}

/// Numerically stable softmax over a slice.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax with a temperature: `t -> 0` approaches argmax, large `t`
/// approaches uniform.
///
/// # Panics
///
/// Panics if `temperature` is not strictly positive.
pub fn softmax_with_temperature(xs: &[f32], temperature: f32) -> Vec<f32> {
    assert!(
        temperature > 0.0,
        "temperature must be positive, got {temperature}"
    );
    let scaled: Vec<f32> = xs.iter().map(|x| x / temperature).collect();
    softmax(&scaled)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Samples an index from a probability distribution using a uniform draw
/// in `[0, 1)` (callers supply the randomness for determinism).
pub fn sample_index(probs: &[f32], uniform: f32) -> usize {
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if uniform < acc {
            return i;
        }
    }
    probs.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn temperature_sharpens_and_flattens() {
        let logits = [1.0, 2.0];
        let sharp = softmax_with_temperature(&logits, 0.1);
        let flat = softmax_with_temperature(&logits, 10.0);
        assert!(sharp[1] > 0.99);
        assert!((flat[1] - 0.5).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let _ = softmax_with_temperature(&[1.0], 0.0);
    }

    #[test]
    fn sample_index_respects_distribution_edges() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(sample_index(&p, 0.0), 0);
        assert_eq!(sample_index(&p, 0.3), 1);
        assert_eq!(sample_index(&p, 0.99), 2);
        assert_eq!(sample_index(&p, 1.0), 2, "clamped to last index");
    }

    #[test]
    fn exp_approx_tracks_libm_exp() {
        for i in -2000..2000 {
            let x = i as f32 * 0.01; // [-20, 20]
            let exact = x.exp();
            let approx = exp_approx(x);
            let rel = ((approx - exact) / exact.max(f32::MIN_POSITIVE)).abs();
            assert!(
                rel < 1e-6,
                "x={x}: approx {approx} vs exact {exact} (rel {rel})"
            );
        }
        assert!(exp_approx(-200.0) > 0.0, "clamped, not denormal-zero");
        assert!(exp_approx(200.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }
}
