//! Trace spans: per-job span trees with monotonic clocks, a
//! thread-local context for implicit parenting, and the env-var /
//! stderr-line protocol that carries spans across the `nfi campaign
//! exec` process boundary.
//!
//! A [`Trace`] is minted at the serving edge (`POST /v1/campaigns`) or
//! by `nfi campaign run --trace`, handed to whichever thread works the
//! job via [`push_context`], and filled by [`Span`] guards as the
//! orchestrator moves through its phases. Spawned worker children
//! receive `NFI_TRACE=<trace>:<parent-span>` and echo their own spans
//! back as `NFI-SPAN {...}` stderr lines, which the parent re-anchors
//! under its execute span — so one tree covers accept → queue wait →
//! plan → replay/execute (with per-shard child spans) → merge →
//! persist.

use crate::json::JsonBuf;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Span records retained per trace; later spans count as dropped.
pub const MAX_SPANS: usize = 512;

/// Name of the environment variable carrying trace context to worker
/// child processes.
pub const TRACE_ENV: &str = "NFI_TRACE";

/// Prefix of the stderr lines a child process echoes its spans on.
pub const SPAN_LINE_PREFIX: &str = "NFI-SPAN ";

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints a fresh id: wall-clock nanoseconds, pid, and a process
    /// counter folded through FNV-1a — unique enough for correlating
    /// logs, with no RNG dependency.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut h = 0xcbf29ce484222325u64;
        for word in [
            nanos,
            u64::from(std::process::id()),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ] {
            for b in word.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        // Never zero: zero is the "no trace" sentinel in the env format.
        TraceId(h.max(1))
    }

    /// Parses 16 hex digits (the [`fmt::Display`] form).
    pub fn parse(s: &str) -> Option<TraceId> {
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One finished span. `parent == 0` marks a root span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within its trace (> 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Phase/operation name.
    pub name: String,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    dropped: u64,
    next_span: u64,
}

/// A bounded collection of spans sharing one monotonic epoch.
#[derive(Debug)]
pub struct Trace {
    id: TraceId,
    epoch: Instant,
    inner: Mutex<TraceInner>,
}

impl Trace {
    /// A new empty trace with the given id; the epoch is now.
    pub fn new(id: TraceId) -> Arc<Trace> {
        Arc::new(Trace {
            id,
            epoch: Instant::now(),
            inner: Mutex::new(TraceInner::default()),
        })
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Microseconds since the trace epoch.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Allocates the next span id (> 0).
    pub fn alloc_span(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.next_span += 1;
        inner.next_span
    }

    /// Appends a finished span; past [`MAX_SPANS`] it only counts the
    /// drop (the ring stays bounded however pathological a job gets).
    pub fn record(&self, rec: SpanRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Imported child spans carry ids allocated elsewhere; keep the
        // allocator ahead of everything recorded.
        if rec.id > inner.next_span {
            inner.next_span = rec.id;
        }
        if inner.spans.len() < MAX_SPANS {
            inner.spans.push(rec);
        } else {
            inner.dropped += 1;
        }
    }

    /// All finished spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .clone()
    }

    /// Spans dropped past the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Imports a child process's span, re-anchored: ids are offset to
    /// stay unique in this trace, the child's root spans (parent 0)
    /// are attached under `parent`, and start offsets shift by
    /// `epoch_offset_us` (the child's spawn time relative to this
    /// trace's epoch).
    pub fn import_child(&self, rec: &SpanRecord, parent: u64, id_base: u64, epoch_offset_us: u64) {
        self.record(SpanRecord {
            id: id_base + rec.id,
            parent: if rec.parent == 0 {
                parent
            } else {
                id_base + rec.parent
            },
            name: rec.name.clone(),
            start_us: epoch_offset_us + rec.start_us,
            dur_us: rec.dur_us,
        });
    }

    /// Reserves an id range for [`Trace::import_child`]: returns a
    /// base strictly above every id allocated so far, and bumps the
    /// allocator past `width` ids.
    pub fn reserve_ids(&self, width: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let base = inner.next_span;
        inner.next_span += width;
        base
    }

    /// Renders the span tree as JSON into `j` as two members of the
    /// current object: `"trace_id"` and `"spans"` (roots with nested
    /// `"children"`, durations in microseconds), plus `"spans_dropped"`
    /// when the ring overflowed.
    pub fn render_into(&self, j: &mut JsonBuf) {
        let spans = self.spans();
        j.field_str("trace_id", &self.id.to_string());
        let dropped = self.dropped();
        if dropped > 0 {
            j.field_u64("spans_dropped", dropped);
        }
        j.key("spans").begin_arr();
        // Roots in start order; children nested under each.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
        let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        for &i in &order {
            // A span whose parent was dropped renders as a root rather
            // than vanishing.
            if spans[i].parent == 0 || !known.contains(&spans[i].parent) {
                render_span(j, &spans, &order, i);
            }
        }
        j.end_arr();
    }

    /// The `NFI_TRACE` value handing `parent` to a child process.
    pub fn context_env(&self, parent: u64) -> String {
        format!("{}:{:x}", self.id, parent)
    }

    /// Writes every span as an `NFI-SPAN {...}` line (the child half
    /// of the cross-process protocol).
    pub fn emit_spans<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for s in self.spans() {
            writeln!(
                out,
                "{SPAN_LINE_PREFIX}{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
                s.id,
                s.parent,
                crate::json::escape(&s.name),
                s.start_us,
                s.dur_us
            )?;
        }
        Ok(())
    }
}

fn render_span(j: &mut JsonBuf, spans: &[SpanRecord], order: &[usize], at: usize) {
    let s = &spans[at];
    j.begin_obj();
    j.field_u64("id", s.id)
        .field_str("name", &s.name)
        .field_u64("start_us", s.start_us)
        .field_u64("dur_us", s.dur_us);
    let children: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| i != at && spans[i].parent == s.id)
        .collect();
    if !children.is_empty() {
        j.key("children").begin_arr();
        for c in children {
            render_span(j, spans, order, c);
        }
        j.end_arr();
    }
    j.end_obj();
}

/// Parses the `NFI_TRACE` env value: `<trace-hex>:<parent-span-hex>`.
pub fn parse_context_env(value: &str) -> Option<(TraceId, u64)> {
    let (trace, parent) = value.split_once(':')?;
    Some((
        TraceId::parse(trace)?,
        u64::from_str_radix(parent, 16).ok()?,
    ))
}

/// Parses one child stderr line; `None` when it isn't a span line.
pub fn parse_span_line(line: &str) -> Option<SpanRecord> {
    let body = line.strip_prefix(SPAN_LINE_PREFIX)?;
    let field_u64 = |name: &str| -> Option<u64> {
        let at = body.find(&format!("\"{name}\":"))? + name.len() + 3;
        let digits: String = body[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    };
    let name_at = body.find("\"name\":\"")? + 8;
    let name_end = name_at + body[name_at..].find('"')?;
    Some(SpanRecord {
        id: field_u64("id")?,
        parent: field_u64("parent")?,
        // Span names are static identifiers in our own code; the
        // unescape-free read is fine for everything we emit.
        name: body[name_at..name_end].to_string(),
        start_us: field_u64("start_us")?,
        dur_us: field_u64("dur_us")?,
    })
}

thread_local! {
    /// The innermost (trace, span) this thread is working under.
    static CONTEXT: RefCell<Vec<(Arc<Trace>, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Makes `(trace, parent)` the current context for this thread until
/// the guard drops. Worker threads call this with a context captured
/// on the dispatching thread via [`current_context`].
pub fn push_context(trace: Arc<Trace>, parent: u64) -> ContextGuard {
    CONTEXT.with(|c| c.borrow_mut().push((trace, parent)));
    ContextGuard { popped: false }
}

/// The current (trace, innermost span id) of this thread, if any.
pub fn current_context() -> Option<(Arc<Trace>, u64)> {
    CONTEXT.with(|c| c.borrow().last().cloned())
}

/// Pops its context entry on drop.
#[derive(Debug)]
pub struct ContextGuard {
    popped: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if !self.popped {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// A live span guard: starts on creation, records into the current
/// trace (if any) and an optional histogram on drop. While alive it is
/// the thread's innermost span, so nested spans parent to it.
#[derive(Debug)]
pub struct Span {
    trace: Option<(Arc<Trace>, u64, u64)>, // (trace, own id, start_us)
    started: Instant,
    name: &'static str,
    hist: Option<&'static crate::AtomicHistogram>,
}

impl Span {
    /// Opens a span named `name` under the current context.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_with(name, None)
    }

    /// Opens a span that additionally records its duration into
    /// `hist` on drop (histograms record whether or not a trace is
    /// current — phase latencies aggregate across all jobs).
    pub fn enter_with(name: &'static str, hist: Option<&'static crate::AtomicHistogram>) -> Span {
        let trace = current_context().map(|(trace, _parent)| {
            let id = trace.alloc_span();
            let start_us = trace.elapsed_us();
            CONTEXT.with(|c| c.borrow_mut().push((trace.clone(), id)));
            (trace, id, start_us)
        });
        Span {
            trace,
            started: Instant::now(),
            name,
            hist,
        }
    }

    /// The span's id within its trace (0 when no trace is current).
    pub fn id(&self) -> u64 {
        self.trace.as_ref().map(|(_, id, _)| *id).unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.started.elapsed();
        if let Some(h) = self.hist {
            h.record(dur);
        }
        if let Some((trace, id, start_us)) = self.trace.take() {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
            let parent = current_context().map(|(_, p)| p).unwrap_or(0);
            trace.record(SpanRecord {
                id,
                parent,
                name: self.name.to_string(),
                start_us,
                dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_mint_unique_and_round_trip() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        let text = a.to_string();
        assert_eq!(text.len(), 16);
        assert_eq!(TraceId::parse(&text), Some(a));
    }

    #[test]
    fn spans_nest_under_the_thread_context() {
        let trace = Trace::new(TraceId::mint());
        {
            let _ctx = push_context(trace.clone(), 0);
            let outer = Span::enter("outer");
            let outer_id = outer.id();
            assert!(outer_id > 0);
            {
                let inner = Span::enter("inner");
                assert_ne!(inner.id(), outer_id);
            }
            drop(outer);
        }
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id, "inner must nest under outer");
        assert_eq!(outer.parent, 0);
        assert!(current_context().is_none(), "context must pop with guard");
    }

    #[test]
    fn spans_without_context_record_nothing_but_histograms() {
        let hist: &'static crate::AtomicHistogram =
            Box::leak(Box::new(crate::AtomicHistogram::new()));
        {
            let s = Span::enter_with("free", Some(hist));
            assert_eq!(s.id(), 0);
        }
        assert_eq!(hist.snapshot().count, 1);
    }

    #[test]
    fn ring_bound_counts_drops() {
        let trace = Trace::new(TraceId::mint());
        for i in 0..(MAX_SPANS as u64 + 10) {
            trace.record(SpanRecord {
                id: i + 1,
                parent: 0,
                name: "s".into(),
                start_us: i,
                dur_us: 1,
            });
        }
        assert_eq!(trace.spans().len(), MAX_SPANS);
        assert_eq!(trace.dropped(), 10);
    }

    #[test]
    fn env_and_span_lines_round_trip() {
        let trace = Trace::new(TraceId::mint());
        let env = trace.context_env(7);
        let (id, parent) = parse_context_env(&env).unwrap();
        assert_eq!(id, trace.id());
        assert_eq!(parent, 7);
        assert!(parse_context_env("garbage").is_none());

        trace.record(SpanRecord {
            id: 1,
            parent: 0,
            name: "exec".into(),
            start_us: 42,
            dur_us: 1000,
        });
        let mut buf = Vec::new();
        trace.emit_spans(&mut buf).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let rec = parse_span_line(line.trim()).unwrap();
        assert_eq!(
            rec,
            SpanRecord {
                id: 1,
                parent: 0,
                name: "exec".into(),
                start_us: 42,
                dur_us: 1000
            }
        );
        assert!(parse_span_line("plain stderr chatter").is_none());
    }

    #[test]
    fn child_import_re_anchors_ids_and_offsets() {
        let parent_trace = Trace::new(TraceId::mint());
        let _ctx = push_context(parent_trace.clone(), 0);
        let execute = Span::enter("execute");
        let exec_id = execute.id();
        let child = SpanRecord {
            id: 1,
            parent: 0,
            name: "child_exec".into(),
            start_us: 5,
            dur_us: 50,
        };
        let base = parent_trace.reserve_ids(2);
        parent_trace.import_child(&child, exec_id, base, 1000);
        drop(execute);

        let spans = parent_trace.spans();
        let imported = spans.iter().find(|s| s.name == "child_exec").unwrap();
        assert_eq!(imported.parent, exec_id, "child roots nest under execute");
        assert_eq!(imported.start_us, 1005);
        assert!(imported.id > exec_id);
        // A later span must not collide with the imported id range.
        let later = Span::enter("later");
        assert!(later.id() > imported.id);
    }

    #[test]
    fn render_nests_children_in_json() {
        let trace = Trace::new(TraceId::mint());
        let _ctx = push_context(trace.clone(), 0);
        {
            let _run = Span::enter("run");
            let _plan = Span::enter("plan");
        }
        let mut j = JsonBuf::new();
        j.begin_obj();
        trace.render_into(&mut j);
        j.end_obj();
        let doc = j.finish();
        assert!(doc.contains("\"trace_id\":\""), "{doc}");
        let run_at = doc.find("\"name\":\"run\"").unwrap();
        let children_at = doc.find("\"children\":[").unwrap();
        let plan_at = doc.find("\"name\":\"plan\"").unwrap();
        assert!(run_at < children_at && children_at < plan_at, "{doc}");
    }
}
