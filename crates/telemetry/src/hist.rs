//! Fixed-bucket log2 latency histograms (HDR-lite).
//!
//! Bucket `i` counts samples whose value in microseconds is `<= 2^i`
//! (and `> 2^(i-1)` for `i > 0`); the last bucket is the `+Inf`
//! overflow. 32 buckets cover 1µs .. ~2147s with ≤ 2x relative error —
//! plenty for request, queue, and phase latencies — in 256 bytes of
//! counters, so every lane can record lock-free and snapshots merge by
//! addition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Bucket count, including the final `+Inf` overflow bucket.
pub const BUCKETS: usize = 32;

/// Index of the bucket whose upper bound first covers `micros`.
fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        0
    } else {
        let i = (u64::BITS - (micros - 1).leading_zeros()) as usize;
        i.min(BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` in microseconds; `None` is `+Inf`.
pub fn bucket_upper_micros(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// An owned histogram snapshot: mergeable, with percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Per-bucket sample counts (not cumulative).
    pub counts: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_micros: u64,
    /// Largest recorded sample in microseconds.
    pub max_micros: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `micros`.
    pub fn record_micros(&mut self, micros: u64) {
        self.counts[bucket_index(micros)] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Adds every sample of `other` into `self`. Merging is
    /// commutative and associative: lanes can be folded in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Estimated quantile `q` in `[0, 1]`, in microseconds: the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the recorded maximum (which also
    /// gives the `+Inf` bucket a finite answer). 0 when empty.
    /// Monotone in `q` by construction.
    pub fn percentile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = bucket_upper_micros(i).unwrap_or(u64::MAX);
                return upper.min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// p50 in microseconds.
    pub fn p50_micros(&self) -> u64 {
        self.percentile_micros(0.50)
    }

    /// p90 in microseconds.
    pub fn p90_micros(&self) -> u64 {
        self.percentile_micros(0.90)
    }

    /// p99 in microseconds.
    pub fn p99_micros(&self) -> u64 {
        self.percentile_micros(0.99)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }
}

/// A histogram recorded with relaxed atomics — one shared instance per
/// (family, label set), hot-path safe from any thread. `snapshot()`
/// folds it into an owned [`Histogram`] for rendering/merging.
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one sample of `micros`. A no-op while telemetry is
    /// disabled ([`crate::set_enabled`]).
    pub fn record_micros(&self, micros: u64) {
        if !crate::enabled() {
            return;
        }
        self.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// An owned copy of the current counts. Buckets are loaded
    /// individually (relaxed), so a snapshot taken mid-record can be
    /// off by the in-flight sample — fine for exposition.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum_micros = self.sum_micros.load(Ordering::Relaxed);
        h.max_micros = self.max_micros.load(Ordering::Relaxed);
        h
    }
}

/// One registered histogram series: a family name plus its label set.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Family name, e.g. `http_request_duration`.
    pub family: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The series' current histogram.
    pub hist: Histogram,
}

/// The process-wide histogram registry. Lookup takes a lock and
/// allocates, so hot paths call [`Registry::histogram`] once at setup
/// and keep the returned `&'static` handle; recording itself is
/// lock-free.
/// One registry entry: (family, labels, the live histogram).
type SeriesEntry = (String, Vec<(String, String)>, &'static AtomicHistogram);

#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<Vec<SeriesEntry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `(family, labels)`, created on first use.
    /// The handle is `'static`: series live for the process (the
    /// label space is bounded — route templates, status classes,
    /// phase names — never raw user input).
    pub fn histogram(&self, family: &str, labels: &[(&str, &str)]) -> &'static AtomicHistogram {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, _, h)) = series
            .iter()
            .find(|(f, l, _)| f == family && label_eq(l, labels))
        {
            return h;
        }
        let hist: &'static AtomicHistogram = Box::leak(Box::new(AtomicHistogram::new()));
        series.push((
            family.to_string(),
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            hist,
        ));
        hist
    }

    /// Snapshots every series, sorted by (family, labels) for stable
    /// exposition order.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<SeriesSnapshot> = series
            .iter()
            .map(|(family, labels, hist)| SeriesSnapshot {
                family: family.clone(),
                labels: labels.clone(),
                hist: hist.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| (&a.family, &a.labels).cmp(&(&b.family, &b.labels)));
        out
    }

    /// Merges every series of `family` into one histogram (e.g. all
    /// routes of `http_request_duration`).
    pub fn merged(&self, family: &str) -> Histogram {
        let mut h = Histogram::new();
        for s in self.snapshot() {
            if s.family == family {
                h.merge(&s.hist);
            }
        }
        h
    }
}

fn label_eq(owned: &[(String, String)], borrowed: &[(&str, &str)]) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed.iter())
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 and 1 land in the first bucket (le 1µs).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Each power of two lands exactly on its own bucket's upper
        // bound; one more spills into the next bucket.
        for i in 1..(BUCKETS - 1) {
            let bound = 1u64 << i;
            assert_eq!(bucket_index(bound), i, "le bound 2^{i} is inclusive");
            assert_eq!(bucket_index(bound + 1), i + 1, "2^{i}+1 overflows to next");
        }
        // Everything past the last finite bound is the +Inf bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_micros(BUCKETS - 1), None);
    }

    #[test]
    fn record_and_percentiles_track_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record_micros(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum_micros, 11_106);
        assert_eq!(h.max_micros, 10_000);
        // p50 covers the 3rd sample (value 3, bucket le 4).
        assert_eq!(h.p50_micros(), 4);
        // p99 resolves to the max-clamped top bucket.
        assert_eq!(h.p99_micros(), 10_000);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        // Property: for any sample set, q1 <= q2 implies
        // percentile(q1) <= percentile(q2). Pseudo-random samples from
        // a deterministic LCG (no external RNG dep).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..50 {
            let mut h = Histogram::new();
            for _ in 0..100 {
                h.record_micros(next() % 5_000_000);
            }
            let mut prev = 0u64;
            for step in 0..=20 {
                let q = step as f64 / 20.0;
                let p = h.percentile_micros(q);
                assert!(p >= prev, "percentile not monotone at q={q}");
                prev = p;
            }
            assert!(h.percentile_micros(1.0) <= h.max_micros.max(1));
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        // Property: merge(a, b) has the same counts/percentiles as
        // recording every sample into a single histogram, regardless
        // of how samples were split.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..20 {
            let samples: Vec<u64> = (0..200).map(|_| next() % 10_000_000).collect();
            let split = (next() % 200) as usize;
            let mut whole = Histogram::new();
            let (mut a, mut b) = (Histogram::new(), Histogram::new());
            for (i, &v) in samples.iter().enumerate() {
                whole.record_micros(v);
                if i < split {
                    a.record_micros(v);
                } else {
                    b.record_micros(v);
                }
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, whole, "merge differs from single-histogram recording");
            assert_eq!(ba, whole, "merge is not commutative");
        }
    }

    /// Tests toggling or depending on the process-wide enabled flag
    /// serialize here so a parallel `set_enabled(false)` can't swallow
    /// another test's samples.
    fn enabled_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        let _guard = enabled_guard();
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0u64, 1, 7, 65, 4096, 123_456_789] {
            atomic.record_micros(v);
            plain.record_micros(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn disabled_telemetry_skips_recording() {
        let _guard = enabled_guard();
        let atomic = AtomicHistogram::new();
        crate::set_enabled(false);
        atomic.record_micros(10);
        crate::set_enabled(true);
        atomic.record_micros(10);
        assert_eq!(atomic.snapshot().count, 1, "disabled sample recorded");
    }

    #[test]
    fn registry_reuses_series_and_merges_families() {
        let _guard = enabled_guard();
        let r = Registry::new();
        let a = r.histogram("f", &[("route", "/x")]);
        let b = r.histogram("f", &[("route", "/x")]);
        assert!(std::ptr::eq(a, b), "same labels must share a series");
        let c = r.histogram("f", &[("route", "/y")]);
        assert!(!std::ptr::eq(a, c));
        a.record_micros(10);
        c.record_micros(1000);
        let merged = r.merged("f");
        assert_eq!(merged.count, 2);
        assert_eq!(r.snapshot().len(), 2);
    }
}
