//! Dependency-free telemetry for the campaign service — the same
//! hand-rolled idiom as the HTTP stack (no tokio, no tracing).
//!
//! Three layers:
//!
//! * **spans + structured logs** ([`trace`], [`log`]): [`TraceId`]s
//!   minted at the serving edge, monotonic [`Span`]s collected into a
//!   bounded per-trace buffer, propagated to worker child processes via
//!   an env var and echoed back as stderr lines; leveled JSON-lines
//!   logging to stderr controlled by `NFI_LOG` / `--log-level`;
//! * **latency histograms** ([`hist`]): fixed-bucket log2 (HDR-lite)
//!   [`Histogram`]s with lock-free [`AtomicHistogram`] recording,
//!   mergeable across lanes, exported with p50/p90/p99, collected in a
//!   process-wide [`Registry`];
//! * **exposition** ([`prom`], [`json`]): a Prometheus text-format
//!   renderer (HELP/TYPE families, label escaping, `_bucket`/`_sum`/
//!   `_count`) and a tiny JSON builder shared by the trace endpoint and
//!   `nfi store inspect --json`.
//!
//! Everything observes; nothing alters outputs — served documents stay
//! byte-identical with telemetry on, off, or at any log level.

pub mod hist;
pub mod json;
pub mod log;
pub mod prom;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram, Registry, BUCKETS};
pub use log::Level;
pub use trace::{Span, SpanRecord, Trace, TraceId};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide kill switch: when disabled, histogram recording and
/// log emission become a single relaxed load — the "telemetry off"
/// side of the bench overhead comparison.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all telemetry recording on or off. On by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide histogram registry behind `/metrics` and the
/// `latency` section of `/v1/metrics`.
pub fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Histogram family names shared by recorders and exposition.
pub mod families {
    /// HTTP request duration, labeled (route, status class).
    pub const HTTP: &str = "http_request_duration";
    /// Queue wait from accept to lane start.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Orchestrator phase duration, labeled (phase).
    pub const PHASE: &str = "phase_duration";
}
