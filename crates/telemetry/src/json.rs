//! A tiny JSON document builder — the shared renderer behind the
//! trace endpoint and `nfi store inspect --json`.
//!
//! The workspace's flat-object *parser* lives in `nfi_sfi::jsontext`;
//! this is the writing side for the layers below `nfi-sfi` in the
//! dependency graph. Comma placement is tracked per nesting level, so
//! callers just emit keys and values in order.

/// Escapes `s` for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON builder. Objects and arrays nest; values at the
/// top level or inside arrays are emitted with the `*_val`/`push_*`
/// methods, members inside objects with the `field_*` methods.
#[derive(Debug, Default)]
pub struct JsonBuf {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonBuf {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`) as a value.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`) as a value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.buf.push(']');
        self
    }

    /// Emits an object key; the next emitted value becomes its member.
    pub fn key(&mut self, name: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
        // The value that follows must not re-insert a comma.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Emits an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emits a float value with three decimals (the workspace's stable
    /// rate format).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        self.buf.push_str(&format!("{v:.3}"));
        self
    }

    /// Emits a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// `key(name)` followed by `str_val(v)`.
    pub fn field_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name).str_val(v)
    }

    /// `key(name)` followed by `u64_val(v)`.
    pub fn field_u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name).u64_val(v)
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_nested_documents_with_correct_commas() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_str("name", "x").field_u64("n", 3);
        j.key("items").begin_arr();
        j.u64_val(1).u64_val(2);
        j.begin_obj().field_str("k", "v").end_obj();
        j.end_arr();
        j.key("ok").bool_val(true);
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"x","n":3,"items":[1,2,{"k":"v"}],"ok":true}"#
        );
    }
}
