//! Leveled JSON-lines logging to stderr.
//!
//! One line per event: `{"ts_us":...,"level":"info","event":"...",
//! "key":"value",...}`. The level comes from `NFI_LOG` (or the
//! daemon's `--log-level` flag) and defaults to `info`; `off` silences
//! everything. Emission is a single locked stderr write, so lines from
//! concurrent lanes never interleave mid-record.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded but handled conditions (retries, sheds, corrupt lines).
    Warn = 2,
    /// Job lifecycle events. The default.
    Info = 3,
    /// Per-request detail (the HTTP access log).
    Debug = 4,
    /// Everything, including per-phase chatter.
    Trace = 5,
}

impl Level {
    /// Parses `off|error|warn|info|debug|trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Applies `NFI_LOG` if set and valid; returns the resulting level.
pub fn init_from_env() -> Level {
    if let Ok(v) = std::env::var("NFI_LOG") {
        if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
    level()
}

/// Whether events at `at` currently pass the level filter (and
/// telemetry is enabled at all).
pub fn enabled_at(at: Level) -> bool {
    crate::enabled() && at != Level::Off && at <= level()
}

/// Emits one JSON event line to stderr when `at` passes the filter.
/// `fields` values are escaped; callers must pre-redact secrets
/// (bearer tokens never reach this layer).
pub fn log(at: Level, event: &str, fields: &[(&str, &str)]) {
    if !enabled_at(at) {
        return;
    }
    let ts_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(96);
    line.push_str("{\"ts_us\":");
    line.push_str(&ts_us.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(at.as_str());
    line.push_str("\",\"event\":\"");
    line.push_str(&crate::json::escape(event));
    line.push('"');
    for (k, v) in fields {
        line.push_str(",\"");
        line.push_str(&crate::json::escape(k));
        line.push_str("\":\"");
        line.push_str(&crate::json::escape(v));
        line.push('"');
    }
    line.push_str("}\n");
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels_and_orders_them() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn level_filter_gates_emission() {
        // Tests share the process-wide level; restore it after.
        let before = level();
        set_level(Level::Warn);
        assert!(enabled_at(Level::Error));
        assert!(enabled_at(Level::Warn));
        assert!(!enabled_at(Level::Info));
        set_level(Level::Off);
        assert!(!enabled_at(Level::Error));
        set_level(before);
    }
}
