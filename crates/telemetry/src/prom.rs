//! Prometheus text-format exposition (version 0.0.4).
//!
//! Families are announced once with `# HELP`/`# TYPE`; histogram
//! families expand to cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`, with bucket bounds converted from the histogram's
//! microsecond buckets to seconds (the Prometheus base unit). Label
//! values are escaped per the format spec (`\\`, `\"`, `\n`).

use crate::hist::{bucket_upper_micros, Histogram, BUCKETS};
use std::collections::BTreeMap;

/// The content type a `/metrics` response must carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a label value per the exposition format.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with_le(labels: &[(&str, &str)], le: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

/// A text-format document under construction. Each family is
/// announced exactly once even when series arrive interleaved; a
/// family re-announced with a different type is a caller bug and is
/// rejected (`debug_assert`) rather than emitting a malformed page.
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
    families: BTreeMap<String, &'static str>,
}

impl PromText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) {
        if let Some(&seen) = self.families.get(name) {
            debug_assert_eq!(seen, kind, "family {name} re-announced as {kind}");
            return;
        }
        self.families.insert(name.to_string(), kind);
        self.buf
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, help, "counter");
        self.buf
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, help, "gauge");
        self.buf
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emits one histogram series: cumulative buckets (in seconds),
    /// `+Inf`, `_sum`, `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.family(name, help, "histogram");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += h.counts[i];
            let le = match bucket_upper_micros(i) {
                Some(us) => format!("{}", us as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            // Empty interior buckets are elided to keep pages small;
            // +Inf always renders so _count is checkable.
            if h.counts[i] == 0 && bucket_upper_micros(i).is_some() && cumulative != h.count {
                continue;
            }
            self.buf.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                render_labels_with_le(labels, &le)
            ));
            if cumulative == h.count && bucket_upper_micros(i).is_some() {
                // Every later bucket repeats the total; jump to +Inf.
                self.buf.push_str(&format!(
                    "{name}_bucket{} {cumulative}\n",
                    render_labels_with_le(labels, "+Inf")
                ));
                break;
            }
        }
        self.buf.push_str(&format!(
            "{name}_sum{} {}\n",
            render_labels(labels),
            h.sum_micros as f64 / 1e6
        ));
        self.buf.push_str(&format!(
            "{name}_count{} {}\n",
            render_labels(labels),
            h.count
        ));
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A minimal conformance check over a rendered page, shared by the
/// exposition tests in every crate that renders `/metrics`: HELP/TYPE
/// announced exactly once per family, every sample's family announced
/// before use, and histogram `_bucket` series cumulative, ending in
/// `+Inf`, and consistent with `_count`.
pub fn check_conformance(page: &str) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut helped = BTreeSet::new();
    let mut typed = BTreeMap::new();
    let mut bucket_last: BTreeMap<String, (u64, bool)> = BTreeMap::new(); // series -> (cumulative, saw +Inf)
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in page.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split(' ').next().unwrap_or("");
            if !helped.insert(fam.to_string()) {
                return Err(format!("duplicate HELP for {fam}"));
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let fam = it.next().unwrap_or("").to_string();
            let kind = it.next().unwrap_or("").to_string();
            if typed.insert(fam.clone(), kind).is_some() {
                return Err(format!("duplicate TYPE for {fam}"));
            }
            if !helped.contains(&fam) {
                return Err(format!("TYPE before HELP for {fam}"));
            }
        } else if !line.is_empty() {
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            let fam = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
                .unwrap_or(name);
            if !typed.contains_key(fam) {
                return Err(format!("sample for unannounced family: {line}"));
            }
            let value: f64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("unparseable value: {line}"))?;
            if name.ends_with("_bucket") {
                let series = line[..line.rfind(' ').unwrap_or(0)]
                    .replace(' ', "")
                    .split("le=\"")
                    .next()
                    .unwrap_or("")
                    .to_string();
                let entry = bucket_last.entry(series).or_insert((0, false));
                if (value as u64) < entry.0 {
                    return Err(format!("non-cumulative bucket: {line}"));
                }
                entry.0 = value as u64;
                if line.contains("le=\"+Inf\"") {
                    entry.1 = true;
                }
            } else if name.ends_with("_count")
                && typed.get(fam).map(String::as_str) == Some("histogram")
            {
                counts.insert(fam.to_string(), value as u64);
            }
        }
    }
    for (series, (last, saw_inf)) in &bucket_last {
        if !saw_inf {
            return Err(format!("bucket series without +Inf: {series}"));
        }
        let fam = series.split('{').next().unwrap_or("");
        let fam = fam.strip_suffix("_bucket").unwrap_or(fam);
        if let Some(count) = counts.get(fam) {
            if last > count {
                return Err(format!("bucket cumulative {last} exceeds _count {count}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_announce_once_and_escape_labels() {
        let mut p = PromText::new();
        p.counter(
            "nfi_requests_total",
            "Requests.",
            &[("route", "/a\"b\\c")],
            3,
        );
        p.counter("nfi_requests_total", "Requests.", &[("route", "/d")], 4);
        p.gauge("nfi_depth", "Depth.", &[], 2.0);
        let page = p.finish();
        assert_eq!(page.matches("# HELP nfi_requests_total").count(), 1);
        assert_eq!(page.matches("# TYPE nfi_requests_total").count(), 1);
        assert!(page.contains("route=\"/a\\\"b\\\\c\""), "{page}");
        assert!(page.contains("nfi_depth 2\n"));
        check_conformance(&page).unwrap();
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_count() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 1_000, 1_000_000] {
            h.record_micros(v);
        }
        let mut p = PromText::new();
        p.histogram(
            "nfi_req_seconds",
            "Request latency.",
            &[("route", "/x")],
            &h,
        );
        let page = p.finish();
        assert!(page.contains("le=\"0.000001\"} 1\n"), "{page}");
        assert!(page.contains("le=\"0.000002\"} 2\n"), "{page}");
        assert!(page.contains("le=\"+Inf\"} 4\n"), "{page}");
        assert!(
            page.contains("nfi_req_seconds_count{route=\"/x\"} 4"),
            "{page}"
        );
        assert!(
            page.contains("nfi_req_seconds_sum{route=\"/x\"} 1.001003"),
            "{page}"
        );
        check_conformance(&page).unwrap();
    }

    #[test]
    fn empty_histogram_still_exposes_inf_and_count() {
        let mut p = PromText::new();
        p.histogram(
            "nfi_empty_seconds",
            "Never sampled.",
            &[],
            &Histogram::new(),
        );
        let page = p.finish();
        assert!(page.contains("le=\"+Inf\"} 0"), "{page}");
        assert!(page.contains("nfi_empty_seconds_count 0"), "{page}");
        check_conformance(&page).unwrap();
    }

    #[test]
    fn conformance_rejects_duplicates_and_gaps() {
        assert!(check_conformance("# HELP a x\n# HELP a x\n").is_err());
        assert!(check_conformance("b 1\n").is_err());
        assert!(check_conformance(
            "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"
        )
        .is_err());
    }
}
