//! # nfi-sfi — programmable software fault injection
//!
//! A ProFIPy-style (Cotroneo et al., DSN'20) programmable fault-injection
//! tool over PyLite ASTs. It fills two roles from the paper:
//!
//! 1. **Dataset factory** (§IV-1): systematically inject faults into seed
//!    codebases, documenting "both the fault conditions and the resultant
//!    code changes" — consumed by `nfi-dataset` to fine-tune the LLM.
//! 2. **Conventional-SFI baseline** (§V): the fixed, predefined fault
//!    model that the neural approach is compared against in the
//!    efficiency / coverage / representativeness experiments.
//!
//! The operator library follows the G-SWFIT / ODC tradition (omission,
//! wrong value, wrong algorithm, exception handling) and extends it with
//! the "complex scenarios" the paper calls out as missing from existing
//! tools: race conditions, resource leaks, timing faults, and buffer
//! overflows.
//!
//! ```
//! use nfi_sfi::{registry, FaultClass};
//!
//! let module = nfi_pylite::parse(
//!     "def f(x):\n    if x > 0:\n        log(x)\n    return x\n",
//! )?;
//! let ops = registry();
//! // At least one operator finds an applicable site in this module.
//! assert!(ops.iter().any(|op| !op.find_sites(&module).is_empty()));
//! assert!(ops.iter().any(|op| op.class() == FaultClass::Omission));
//! # Ok::<(), nfi_pylite::PyliteError>(())
//! ```

use nfi_pylite::ast::NodeId;
use nfi_pylite::Module;
use std::fmt;

pub mod campaign;
pub mod jsontext;
mod operators;
pub mod plan;

pub use campaign::{apply_plan, Campaign, CampaignReport, FaultPlan};
pub use operators::{by_name, registry};
pub use plan::{plan_hash, CampaignSpec, Shard, WorkUnit};

/// High-level class of an injected fault, aligned with the fault types
/// the paper's §IV-1 dataset covers ("logic errors, race conditions,
/// memory leaks, and buffer overflows", plus interface/timing classes
/// from the ODC tradition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Missing statement / call / branch (G-SWFIT MFC, MIA, MIEB, ...).
    Omission,
    /// Wrong value, parameter, operator, or boundary (WVAV, WPFV, ...).
    WrongValue,
    /// Broken exception handling (swallowed, wrong kind, spurious raise).
    ExceptionHandling,
    /// Race conditions from missing synchronization.
    Concurrency,
    /// Resource leaks (unclosed handles) and double releases.
    ResourceLeak,
    /// Writes past buffer capacity.
    BufferOverflow,
    /// Delays and timeouts from slow or stalled dependencies.
    Timing,
    /// Wrong interaction with another component's interface.
    Interface,
}

impl FaultClass {
    /// All classes, in stable order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::Omission,
        FaultClass::WrongValue,
        FaultClass::ExceptionHandling,
        FaultClass::Concurrency,
        FaultClass::ResourceLeak,
        FaultClass::BufferOverflow,
        FaultClass::Timing,
        FaultClass::Interface,
    ];

    /// Stable lowercase identifier.
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::Omission => "omission",
            FaultClass::WrongValue => "wrong_value",
            FaultClass::ExceptionHandling => "exception_handling",
            FaultClass::Concurrency => "concurrency",
            FaultClass::ResourceLeak => "resource_leak",
            FaultClass::BufferOverflow => "buffer_overflow",
            FaultClass::Timing => "timing",
            FaultClass::Interface => "interface",
        }
    }

    /// Parses a class from its [`FaultClass::key`].
    pub fn from_key(key: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().copied().find(|c| c.key() == key)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A concrete location where an operator can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Node id of the statement being targeted (pre-mutation numbering).
    pub stmt_id: NodeId,
    /// Enclosing function, when not at module level.
    pub function: Option<String>,
    /// Source line of the statement.
    pub line: u32,
    /// Operator-specific detail (e.g. the name of the removed call).
    pub detail: String,
}

/// The result of applying an operator at a site: a mutated module plus
/// provenance.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// Operator that produced the mutation.
    pub operator: &'static str,
    /// Fault class of the mutation.
    pub class: FaultClass,
    /// Where it was injected.
    pub site: Site,
    /// The mutated module (node ids renumbered).
    pub module: Module,
    /// Human-readable description of the fault condition ("documented
    /// fault conditions" per §IV-1).
    pub description: String,
}

/// A fault operator: scans for applicable sites and rewrites the AST.
///
/// Implementations live in this crate; the trait is object-safe so the
/// registry can hold a heterogeneous operator set.
pub trait FaultOperator: Send + Sync {
    /// Short unique mnemonic (e.g. `"MFC"`).
    fn name(&self) -> &'static str;

    /// Fault class of the mutations this operator produces.
    fn class(&self) -> FaultClass;

    /// One-line description of the fault model.
    fn doc(&self) -> &'static str;

    /// All sites in `module` where this operator applies.
    fn find_sites(&self, module: &Module) -> Vec<Site>;

    /// Applies the operator at `site`, returning the mutated module.
    ///
    /// Returns `None` when the site no longer exists in `module` (e.g.
    /// stale ids after another mutation).
    fn apply(&self, module: &Module, site: &Site) -> Option<Module>;

    /// A natural-language description of the fault injected at `site`.
    fn describe(&self, site: &Site) -> String;
}

/// The classic predefined fault model of conventional SFI tools: code
/// omission / wrong-value / exception operators only. The paper's §II-1
/// argues such models "fall short in simulating complex scenarios such as
/// race conditions" — which is exactly what this subset cannot express.
pub fn conventional_operator_names() -> Vec<&'static str> {
    registry()
        .iter()
        .filter(|op| {
            matches!(
                op.class(),
                FaultClass::Omission
                    | FaultClass::WrongValue
                    | FaultClass::ExceptionHandling
                    | FaultClass::Interface
            )
        })
        .map(|op| op.name())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_keys_roundtrip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_key(c.key()), Some(c));
        }
        assert_eq!(FaultClass::from_key("nope"), None);
    }

    #[test]
    fn registry_has_unique_names_and_all_classes() {
        let ops = registry();
        assert!(ops.len() >= 18, "expected a rich operator set");
        let mut names: Vec<_> = ops.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "operator names must be unique");
        for class in FaultClass::ALL {
            assert!(
                ops.iter().any(|o| o.class() == class),
                "no operator covers {class}"
            );
        }
    }

    #[test]
    fn conventional_subset_excludes_complex_classes() {
        let conventional = conventional_operator_names();
        assert!(!conventional.is_empty());
        let ops = registry();
        for op in ops.iter() {
            let in_subset = conventional.contains(&op.name());
            let complex = matches!(
                op.class(),
                FaultClass::Concurrency
                    | FaultClass::ResourceLeak
                    | FaultClass::BufferOverflow
                    | FaultClass::Timing
            );
            assert_eq!(
                in_subset,
                !complex,
                "operator {} misclassified for the baseline",
                op.name()
            );
        }
    }
}
