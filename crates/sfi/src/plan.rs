//! The campaign plan IR: a serializable, module-independent
//! representation of *what to inject*, decoupled from *how it
//! executes*.
//!
//! A [`Campaign`] enumerates [`FaultPlan`]s against one in-memory
//! module; those plans borrow `&'static` operator names and are tied to
//! the process that built them. The plan IR lifts that enumeration into
//! plain data:
//!
//! * a [`WorkUnit`] is one injection — operator key, [`Site`], and the
//!   scheduler seed to run it under — addressable by its stable index
//!   in the enumeration;
//! * a [`CampaignSpec`] is the whole campaign — program name, the
//!   program source itself (so a spec is self-contained across hosts),
//!   the module fingerprint it was enumerated against, and the units.
//!
//! Specs have a stable JSONL text encoding ([`CampaignSpec::encode`] /
//! [`CampaignSpec::decode`]): generate a plan once, split it into
//! [`Shard`]s, execute the shards anywhere (other processes, other
//! hosts), and merge the results — the executor side lives in
//! `nfi_core::service`.

use crate::jsontext::{
    escape, get_hex_u64, get_opt_str, get_str, get_u64, get_usize, parse_flat_object,
};
use crate::{operators, Campaign, FaultClass, FaultPlan, Site};
use nfi_pylite::anchors::ModuleAnchors;
use nfi_pylite::ast::NodeId;
use nfi_pylite::fingerprint::{fnv1a, fnv1a_extend};
use std::fmt;

/// A stable content hash of a fault plan: operator key plus every site
/// field. Two plans with equal hashes request the same mutation of the
/// same module — the mutant-cache key half that doesn't depend on the
/// module itself.
pub fn plan_hash(plan: &FaultPlan) -> u64 {
    site_hash(fnv1a(plan.operator.as_bytes()), &plan.site)
}

/// Folds every [`Site`] field into `h` — the shared tail of
/// [`plan_hash`] and [`WorkUnit::store_key`], so the two stay
/// field-for-field in sync.
fn site_hash(mut h: u64, site: &Site) -> u64 {
    h = fnv1a_extend(h, &site.stmt_id.0.to_le_bytes());
    if let Some(f) = &site.function {
        h = fnv1a_extend(h, b"\x01");
        h = fnv1a_extend(h, f.as_bytes());
    } else {
        h = fnv1a_extend(h, b"\x00");
    }
    h = fnv1a_extend(h, &site.line.to_le_bytes());
    fnv1a_extend(h, site.detail.as_bytes())
}

/// One shard of a plan: this process executes unit indices `i` with
/// `i % count == index` (a strided partition, so shards stay balanced
/// even when plan cost varies along the enumeration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: usize,
    /// Total shard count.
    pub count: usize,
}

impl Shard {
    /// The trivial shard covering everything.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// Parses `"i/n"` (e.g. `"0/2"`), validating `i < n` and `n > 0`.
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("shard `{text}` is not of the form i/n"))?;
        let index: usize = i
            .parse()
            .map_err(|_| format!("shard index `{i}` is not a number"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("shard count `{n}` is not a number"))?;
        if count == 0 {
            return Err("shard count must be positive".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard covers global unit index `i`.
    pub fn covers(self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// Whether this is the full (unsharded) run.
    pub fn is_full(self) -> bool {
        self.count == 1
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::FULL
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One planned injection as plain data: operator key + site + the
/// scheduler seed for the experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Stable index in the campaign enumeration (the sharding key).
    pub index: usize,
    /// Operator mnemonic, resolvable via the operator registry.
    pub operator: String,
    /// Fault class of the operator.
    pub class: FaultClass,
    /// Target site.
    pub site: Site,
    /// Scheduler seed for the differential experiment.
    pub seed: u64,
    /// Site-stable structural anchor of the enclosing function (or the
    /// top-level group) — see [`nfi_pylite::anchors`]. Insensitive to
    /// edits outside that neighborhood, which is what lets
    /// [`store_key`](WorkUnit::store_key) survive them.
    pub anchor: u64,
    /// Pre-order position of the site statement within its anchor
    /// group (disambiguates repeated statements in one function).
    pub ordinal: u32,
}

impl WorkUnit {
    /// Captures an in-memory plan as a work unit with its site-stable
    /// anchor.
    pub fn from_plan(
        index: usize,
        plan: &FaultPlan,
        seed: u64,
        anchor: u64,
        ordinal: u32,
    ) -> WorkUnit {
        WorkUnit {
            index,
            operator: plan.operator.to_string(),
            class: plan.class,
            site: plan.site.clone(),
            seed,
            anchor,
            ordinal,
        }
    }

    /// The unit's stable content key for the incremental campaign
    /// store: operator key, the site's structural anchor + ordinal,
    /// the operator's site detail, and the scheduler seed the
    /// experiment runs under. Deliberately *not* the raw site
    /// position ([`plan_hash`] folds statement id and line number):
    /// anchors survive edits outside the enclosing function, so a
    /// unit in an untouched function computes the *same* key across
    /// module versions — the property the store's anchor-fallback
    /// replay path keys on. Computable from the serialized form alone
    /// (no operator-registry resolution) and identical across
    /// processes and hosts.
    pub fn store_key(&self) -> u64 {
        let mut h = fnv1a(self.operator.as_bytes());
        h = fnv1a_extend(h, &self.anchor.to_le_bytes());
        h = fnv1a_extend(h, &self.ordinal.to_le_bytes());
        h = fnv1a_extend(h, self.site.detail.as_bytes());
        fnv1a_extend(h, &self.seed.to_le_bytes())
    }

    /// Resolves the unit back into an executable [`FaultPlan`] through
    /// the operator registry. Returns `None` for an unknown operator
    /// key (a plan from a newer registry, say).
    pub fn to_plan(&self) -> Option<FaultPlan> {
        let op = operators::by_name(&self.operator)?;
        Some(FaultPlan {
            operator: op.name(),
            class: op.class(),
            site: self.site.clone(),
        })
    }

    /// Encodes the unit as one JSON line.
    pub fn encode(&self) -> String {
        let function = match &self.site.function {
            Some(f) => format!("\"{}\"", escape(f)),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":\"unit\",\"index\":{},\"operator\":\"{}\",\"class\":\"{}\",\"stmt_id\":{},\"function\":{},\"line\":{},\"detail\":\"{}\",\"anchor\":\"{:016x}\",\"ordinal\":{},\"seed\":{}}}",
            self.index,
            escape(&self.operator),
            self.class.key(),
            self.site.stmt_id.0,
            function,
            self.site.line,
            escape(&self.site.detail),
            self.anchor,
            self.ordinal,
            self.seed,
        )
    }

    /// Decodes a unit from its JSON line.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn decode(line: &str) -> Result<WorkUnit, String> {
        let fields = parse_flat_object(line)?;
        let unit = WorkUnit {
            index: get_usize(&fields, "index")?,
            operator: get_str(&fields, "operator")?,
            class: {
                let key = get_str(&fields, "class")?;
                FaultClass::from_key(&key).ok_or_else(|| format!("unknown fault class `{key}`"))?
            },
            site: Site {
                stmt_id: NodeId(
                    u32::try_from(get_u64(&fields, "stmt_id")?)
                        .map_err(|_| "field `stmt_id` does not fit in u32".to_string())?,
                ),
                function: get_opt_str(&fields, "function")?,
                line: u32::try_from(get_u64(&fields, "line")?)
                    .map_err(|_| "field `line` does not fit in u32".to_string())?,
                detail: get_str(&fields, "detail")?,
            },
            // Exact: the seed is a full-range u64 and must never be
            // squeezed through an f64 (2^53 silently truncates).
            seed: get_u64(&fields, "seed")?,
            // Tolerated when absent (pre-anchor plan documents, e.g. a
            // journaled spec from an older daemon): the fallback keeps
            // keys unique per spec — module-fp keyed segments still
            // replay them, anchor fallback simply never hits.
            anchor: match fields.get("anchor") {
                Some(_) => get_hex_u64(&fields, "anchor")?,
                None => 0,
            },
            ordinal: match fields.get("ordinal") {
                Some(_) => u32::try_from(get_u64(&fields, "ordinal")?)
                    .map_err(|_| "field `ordinal` does not fit in u32".to_string())?,
                None => u32::try_from(get_u64(&fields, "stmt_id")?)
                    .map_err(|_| "field `stmt_id` does not fit in u32".to_string())?,
            },
        };
        Ok(unit)
    }
}

/// A whole campaign as plain data: self-contained (the program source
/// rides along) and executable anywhere the operator registry exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Program name (provenance; corpus name or file stem).
    pub program: String,
    /// The program source the campaign was enumerated against.
    pub source: String,
    /// Fingerprint of the parsed module ([`nfi_pylite::fingerprint`]),
    /// validated at execution time against the re-parsed source.
    pub module_fp: u64,
    /// The enumerated units, in stable index order.
    pub units: Vec<WorkUnit>,
}

impl CampaignSpec {
    /// Captures a campaign's full enumeration, stamping every unit with
    /// `seed` as its experiment scheduler seed.
    pub fn from_campaign(program: &str, campaign: &Campaign, seed: u64) -> CampaignSpec {
        let anchors = ModuleAnchors::compute(campaign.module());
        let module_fp = nfi_pylite::fingerprint(campaign.module());
        CampaignSpec {
            program: program.to_string(),
            source: nfi_pylite::print_module(campaign.module()),
            module_fp,
            units: campaign
                .plans()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    // Every site statement is anchored; the module-fp
                    // fallback keeps keys unique (and per-version) if
                    // a future operator ever targets something else.
                    let (anchor, ordinal) = match anchors.get(p.site.stmt_id) {
                        Some(a) => (a.anchor, a.ordinal),
                        None => (module_fp, p.site.stmt_id.0),
                    };
                    WorkUnit::from_plan(i, p, seed, anchor, ordinal)
                })
                .collect(),
        }
    }

    /// Unit indices covered by `shard`, in index order.
    pub fn shard_unit_indices(&self, shard: Shard) -> Vec<usize> {
        (0..self.units.len()).filter(|&i| shard.covers(i)).collect()
    }

    /// The spec restricted to the units whose **global** index is in
    /// `indices` — same program, source, and fingerprint, so any
    /// executor accepts it, and the surviving units keep their global
    /// indices, so their outcome lines merge back into the full run
    /// untouched. This is how an orchestrator hands an arbitrary
    /// store-miss set to another executor: the serve daemon's process
    /// pool encodes the subset once and strides it over `nfi campaign
    /// exec --shard i/n` children, and its worker fleet encodes one
    /// subset per hash chunk and ships each to a remote `nfi worker`
    /// as a self-contained assignment (the subset carries the source,
    /// so the worker needs no shared filesystem). Because indices are
    /// global and units carry their own seeds, a subset's outcome
    /// lines are byte-for-byte the lines a full local run would have
    /// produced for those units — the foundation of the
    /// byte-identical-merge guarantee across all dispatch tiers.
    pub fn subset(&self, indices: &[usize]) -> CampaignSpec {
        let wanted: std::collections::HashSet<usize> = indices.iter().copied().collect();
        CampaignSpec {
            program: self.program.clone(),
            source: self.source.clone(),
            module_fp: self.module_fp,
            units: self
                .units
                .iter()
                .filter(|u| wanted.contains(&u.index))
                .cloned()
                .collect(),
        }
    }

    /// Encodes the spec as a JSONL document: one header line, then one
    /// line per unit.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"campaign_spec\",\"program\":\"{}\",\"module_fp\":\"{:016x}\",\"units\":{},\"source\":\"{}\"}}\n",
            escape(&self.program),
            self.module_fp,
            self.units.len(),
            escape(&self.source),
        );
        for unit in &self.units {
            out.push_str(&unit.encode());
            out.push('\n');
        }
        out
    }

    /// Decodes a JSONL plan document.
    ///
    /// # Errors
    ///
    /// Reports the first undecodable line with its number, a missing
    /// header, or a unit-count mismatch.
    pub fn decode(text: &str) -> Result<CampaignSpec, String> {
        let mut spec: Option<CampaignSpec> = None;
        let mut declared_units = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |e: String| format!("line {}: {e}", i + 1);
            if line.contains("\"kind\":\"campaign_spec\"") {
                if spec.is_some() {
                    return Err(format!(
                        "line {}: second campaign_spec header (concatenated documents?)",
                        i + 1
                    ));
                }
                let fields = parse_flat_object(line).map_err(err)?;
                declared_units = get_usize(&fields, "units").map_err(err)?;
                spec = Some(CampaignSpec {
                    program: get_str(&fields, "program").map_err(err)?,
                    source: get_str(&fields, "source").map_err(err)?,
                    module_fp: get_hex_u64(&fields, "module_fp").map_err(err)?,
                    units: Vec::new(),
                });
            } else if line.contains("\"kind\":\"unit\"") {
                let unit = WorkUnit::decode(line).map_err(err)?;
                spec.as_mut()
                    .ok_or_else(|| format!("line {}: unit before header", i + 1))?
                    .units
                    .push(unit);
            } else {
                return Err(format!("line {}: unknown record kind", i + 1));
            }
        }
        let spec = spec.ok_or("no campaign_spec header found")?;
        if spec.units.len() != declared_units {
            return Err(format!(
                "header declares {declared_units} units, found {}",
                spec.units.len()
            ));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn campaign() -> Campaign {
        let module = parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n",
        )
        .unwrap();
        Campaign::full(&module)
    }

    #[test]
    fn spec_roundtrips_through_text() {
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 7);
        let decoded = CampaignSpec::decode(&spec.encode()).unwrap();
        assert_eq!(spec, decoded);
        assert_eq!(decoded.units.len(), c.plans().len());
    }

    #[test]
    fn units_resolve_back_to_identical_plans() {
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 0);
        for (unit, plan) in spec.units.iter().zip(c.plans()) {
            let resolved = unit.to_plan().expect("registry resolves");
            assert_eq!(resolved.operator, plan.operator);
            assert_eq!(resolved.class, plan.class);
            assert_eq!(resolved.site, plan.site);
            assert_eq!(plan_hash(&resolved), plan_hash(plan));
        }
    }

    #[test]
    fn plan_hash_distinguishes_operator_and_site() {
        let c = campaign();
        let plans = c.plans();
        let mut hashes: Vec<u64> = plans.iter().map(plan_hash).collect();
        hashes.sort_unstable();
        let before = hashes.len();
        hashes.dedup();
        assert_eq!(hashes.len(), before, "plan hashes must be unique");
    }

    #[test]
    fn seeds_above_f64_precision_round_trip_exactly() {
        let c = campaign();
        // 2^53 + 1 is the first u64 an f64 cannot represent; u64::MAX
        // is the worst case. Both must survive the text round trip.
        for seed in [(1u64 << 53) + 1, u64::MAX] {
            let spec = CampaignSpec::from_campaign("demo", &c, seed);
            let decoded = CampaignSpec::decode(&spec.encode()).unwrap();
            assert_eq!(decoded, spec);
            for unit in &decoded.units {
                assert_eq!(unit.seed, seed);
            }
        }
    }

    #[test]
    fn store_keys_are_unique_stable_and_seed_sensitive() {
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 7);
        let mut keys: Vec<u64> = spec.units.iter().map(WorkUnit::store_key).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "unit store keys must be unique");
        // Stable across a text round trip (the store replays by key).
        let decoded = CampaignSpec::decode(&spec.encode()).unwrap();
        for (a, b) in spec.units.iter().zip(&decoded.units) {
            assert_eq!(a.store_key(), b.store_key());
        }
        // A different experiment seed is a different key.
        let reseeded = CampaignSpec::from_campaign("demo", &c, 8);
        for (a, b) in spec.units.iter().zip(&reseeded.units) {
            assert_ne!(a.store_key(), b.store_key());
        }
    }

    #[test]
    fn store_keys_survive_edits_outside_the_enclosing_function() {
        // Edit test_add's body (a different function): every unit of
        // the unchanged module regions keeps its exact store key, even
        // though statement ids, line numbers, and the module
        // fingerprint all shift.
        let edited = parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n    assert add(1) == 2\n",
        )
        .unwrap();
        let before = CampaignSpec::from_campaign("demo", &campaign(), 7);
        let after = CampaignSpec::from_campaign("demo", &Campaign::full(&edited), 7);
        assert_ne!(before.module_fp, after.module_fp);
        // Pair units across versions by (operator, function, detail,
        // ordinal) — shape-preserving edits keep ordinals — and
        // compare keys.
        let ident = |u: &WorkUnit| {
            (
                u.operator.clone(),
                u.site.function.clone(),
                u.site.detail.clone(),
                u.ordinal,
            )
        };
        for b in &before.units {
            let Some(a) = after.units.iter().find(|a| ident(a) == ident(b)) else {
                continue;
            };
            assert_eq!(
                b.store_key(),
                a.store_key(),
                "unit {:?} must keep its key across an unrelated edit",
                ident(b)
            );
        }
        // While a unit inside the *edited* function gets a new key:
        // appending to add()'s body shifts every add unit's anchor.
        let touched = parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v + 0\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n",
        )
        .unwrap();
        let touched = CampaignSpec::from_campaign("demo", &Campaign::full(&touched), 7);
        let mut paired = 0usize;
        for b in before
            .units
            .iter()
            .filter(|u| u.site.function.as_deref() == Some("add"))
        {
            let Some(a) = touched.units.iter().find(|a| ident(a) == ident(b)) else {
                continue;
            };
            paired += 1;
            assert_ne!(a.anchor, b.anchor, "add's anchor must change");
            assert_ne!(a.store_key(), b.store_key(), "and with it the key");
        }
        assert!(paired > 0, "the edited function must still pair units");
    }

    #[test]
    fn shards_partition_the_unit_indices() {
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 0);
        let n = spec.units.len();
        for count in [1usize, 2, 3, 5] {
            let mut seen = Vec::new();
            for index in 0..count {
                seen.extend(spec.shard_unit_indices(Shard { index, count }));
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "count={count}");
        }
    }

    #[test]
    fn subset_keeps_global_indices_and_roundtrips() {
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 7);
        let picked: Vec<usize> = spec.units.iter().map(|u| u.index).step_by(3).collect();
        let sub = spec.subset(&picked);
        assert_eq!(sub.program, spec.program);
        assert_eq!(sub.module_fp, spec.module_fp);
        assert_eq!(sub.units.len(), picked.len());
        for (unit, want) in sub.units.iter().zip(&picked) {
            assert_eq!(unit.index, *want, "global indices survive the subset");
        }
        // A subset document is a valid spec in its own right.
        let decoded = CampaignSpec::decode(&sub.encode()).unwrap();
        assert_eq!(decoded, sub);
        // Unknown indices are simply absent, never invented.
        assert!(spec.subset(&[usize::MAX]).units.is_empty());
    }

    #[test]
    fn shard_parsing_validates() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert!(Shard::parse("1/1").unwrap_err().contains("out of range"));
        assert!(Shard::parse("x/2").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert_eq!(Shard::FULL.to_string(), "0/1");
    }

    #[test]
    fn decode_rejects_corrupt_documents() {
        assert!(CampaignSpec::decode("").is_err(), "empty");
        assert!(
            CampaignSpec::decode("{\"kind\":\"unit\"}").is_err(),
            "unit before header"
        );
        let c = campaign();
        let spec = CampaignSpec::from_campaign("demo", &c, 0);
        let encoded = spec.encode();
        let mut truncated: Vec<&str> = encoded.lines().collect();
        truncated.pop();
        let text = truncated.join("\n");
        assert!(CampaignSpec::decode(&text).unwrap_err().contains("units"));
        let concatenated = format!("{encoded}{encoded}");
        assert!(CampaignSpec::decode(&concatenated)
            .unwrap_err()
            .contains("second campaign_spec header"));
    }
}
