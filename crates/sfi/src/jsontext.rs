//! Minimal flat JSON text codec shared across the workspace.
//!
//! The offline dependency set has no `serde_json`, so every text
//! format in the workspace — campaign plan files ([`crate::plan`]),
//! campaign shard/report documents (`nfi_core::service`), and the
//! dataset JSONL (`nfi_dataset::jsonl`) — is built on this one
//! purpose-built codec: an escaper for writing and a flat-object
//! parser (strings / numbers / booleans / null, no nesting) for
//! reading. Keeping a single implementation keeps the escaping rules
//! — and therefore the byte-stable encodings the shard-merge
//! guarantees depend on — identical everywhere.

use std::collections::BTreeMap;

/// Escapes a string for JSON.
///
/// Control characters become `\uXXXX` escapes; characters outside the
/// Basic Multilingual Plane become UTF-16 surrogate *pairs* (JSON's
/// `\uXXXX` escape carries a UTF-16 code unit, not a code point), so
/// every escaped document is plain ASCII-safe JSON that any conforming
/// reader — including [`parse_flat_object`] — decodes back verbatim.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c if (c as u32) > 0xFFFF => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units).iter() {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// A scalar value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A non-integer number (anything written with `.`/`e`/`E`).
    Num(f64),
    /// An integer, kept exact — `u64` fingerprints and seeds round-trip
    /// losslessly instead of being squeezed through an `f64` (which
    /// silently corrupts values above 2^53).
    Int(i128),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is any number (integers widen to
    /// `f64`, lossily above 2^53 — use [`JsonValue::as_u64`] where
    /// exactness matters).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The exact integer payload, if this is an integer in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parsed flat JSON object.
pub type JsonObject = BTreeMap<String, JsonValue>;

/// Required string field of a parsed object.
///
/// # Errors
///
/// Reports a missing or mistyped field.
pub fn get_str(fields: &JsonObject, key: &str) -> Result<String, String> {
    match fields.get(key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Nullable string field (`null` and absent both read as `None`).
///
/// # Errors
///
/// Reports a non-string, non-null value.
pub fn get_opt_str(fields: &JsonObject, key: &str) -> Result<Option<String>, String> {
    match fields.get(key) {
        Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
        Some(JsonValue::Null) | None => Ok(None),
        Some(other) => Err(format!("field `{key}` invalid: {other:?}")),
    }
}

/// Required boolean field of a parsed object.
///
/// # Errors
///
/// Reports a missing or mistyped field.
pub fn get_bool(fields: &JsonObject, key: &str) -> Result<bool, String> {
    match fields.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("field `{key}` is not a boolean: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Required exact unsigned integer field (never routed through `f64`).
///
/// # Errors
///
/// Reports a missing, mistyped, fractional, or out-of-range field.
pub fn get_u64(fields: &JsonObject, key: &str) -> Result<u64, String> {
    match fields.get(key) {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not an unsigned integer: {v:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// Optional exact unsigned integer field (`null` and absent both read
/// as `None`) — submit bodies over HTTP carry optional seeds.
///
/// # Errors
///
/// Reports a present value that is not an unsigned integer.
pub fn get_opt_u64(fields: &JsonObject, key: &str) -> Result<Option<u64>, String> {
    match fields.get(key) {
        Some(JsonValue::Null) | None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is not an unsigned integer: {v:?}")),
    }
}

/// [`get_u64`] narrowed to `usize` (counts and indices).
///
/// # Errors
///
/// Same contract as [`get_u64`].
pub fn get_usize(fields: &JsonObject, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(fields, key)?)
        .map_err(|_| format!("field `{key}` does not fit in usize"))
}

/// Required fingerprint field: a `u64` written as a zero-padded hex
/// *string* (the workspace convention for content hashes, predating
/// exact integers — kept for document stability).
///
/// # Errors
///
/// Reports a missing, mistyped, or non-hex field.
pub fn get_hex_u64(fields: &JsonObject, key: &str) -> Result<u64, String> {
    let hex = get_str(fields, key)?;
    u64::from_str_radix(&hex, 16).map_err(|_| format!("field `{key}` is not hex: `{hex}`"))
}

/// Parses a flat (non-nested) JSON object of scalar values.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn parse_flat_object(s: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let chars: Vec<char> = s.trim().chars().collect();
    let mut i = 0usize;
    let mut out = BTreeMap::new();
    expect(&chars, &mut i, '{')?;
    skip_ws(&chars, &mut i);
    if peek(&chars, i) == Some('}') {
        return Ok(out);
    }
    loop {
        skip_ws(&chars, &mut i);
        let key = parse_string(&chars, &mut i)?;
        skip_ws(&chars, &mut i);
        expect(&chars, &mut i, ':')?;
        skip_ws(&chars, &mut i);
        let value = match peek(&chars, i) {
            Some('"') => JsonValue::Str(parse_string(&chars, &mut i)?),
            Some('n') => {
                expect_word(&chars, &mut i, "null")?;
                JsonValue::Null
            }
            Some('t') => {
                expect_word(&chars, &mut i, "true")?;
                JsonValue::Bool(true)
            }
            Some('f') => {
                expect_word(&chars, &mut i, "false")?;
                JsonValue::Bool(false)
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = i;
                while peek(&chars, i)
                    .map(|c| {
                        c.is_ascii_digit()
                            || c == '-'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c == '+'
                    })
                    .unwrap_or(false)
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // Integer-looking numbers stay exact (i128 covers the
                // full u64 range); everything else parses as f64.
                if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
                    JsonValue::Int(text.parse().map_err(|_| format!("bad number `{text}`"))?)
                } else {
                    JsonValue::Num(text.parse().map_err(|_| format!("bad number `{text}`"))?)
                }
            }
            other => return Err(format!("unexpected value start {other:?} at {i}")),
        };
        out.insert(key, value);
        skip_ws(&chars, &mut i);
        match peek(&chars, i) {
            Some(',') => {
                i += 1;
            }
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
    Ok(out)
}

fn peek(chars: &[char], i: usize) -> Option<char> {
    chars.get(i).copied()
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while peek(chars, *i).map(|c| c.is_whitespace()).unwrap_or(false) {
        *i += 1;
    }
}

fn expect(chars: &[char], i: &mut usize, c: char) -> Result<(), String> {
    if peek(chars, *i) == Some(c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{c}` at {}, found {:?}",
            i,
            peek(chars, *i)
        ))
    }
}

fn expect_word(chars: &[char], i: &mut usize, word: &str) -> Result<(), String> {
    for c in word.chars() {
        expect(chars, i, c)?;
    }
    Ok(())
}

/// Reads the four hex digits of a `\uXXXX` escape starting at `start`.
fn read_hex4(chars: &[char], start: usize) -> Result<u32, String> {
    let hex: String = chars
        .get(start..start + 4)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    if hex.len() != 4 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("bad \\u escape `{hex}`"));
    }
    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))
}

fn parse_string(chars: &[char], i: &mut usize) -> Result<String, String> {
    expect(chars, i, '"')?;
    let mut out = String::new();
    loop {
        match peek(chars, *i) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *i += 1;
                return Ok(out);
            }
            Some('\\') => {
                *i += 1;
                match peek(chars, *i) {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('u') => {
                        let code = read_hex4(chars, *i + 1)?;
                        *i += 4;
                        match code {
                            // High surrogate: JSON encodes astral code
                            // points as a UTF-16 pair of \u escapes, so
                            // the low half must follow immediately.
                            0xD800..=0xDBFF => {
                                if peek(chars, *i + 1) != Some('\\')
                                    || peek(chars, *i + 2) != Some('u')
                                {
                                    return Err(format!(
                                        "unpaired high surrogate \\u{code:04x} (expected a \
                                         \\uDC00-\\uDFFF low surrogate next)"
                                    ));
                                }
                                let low = read_hex4(chars, *i + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{code:04x} followed by \\u{low:04x}, \
                                         which is not a low surrogate"
                                    ));
                                }
                                *i += 6;
                                let astral = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(astral).ok_or_else(|| {
                                    format!("surrogate pair decodes to invalid scalar {astral:#x}")
                                })?);
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "unpaired low surrogate \\u{code:04x} (no preceding high \
                                     surrogate)"
                                ));
                            }
                            _ => out.push(char::from_u32(code).ok_or_else(|| {
                                format!("\\u{code:04x} is not a valid scalar value")
                            })?),
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *i += 1;
            }
            Some(c) => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_scalar_kinds() {
        let obj =
            parse_flat_object("{\"s\":\"a\\nb\",\"n\":-1.5,\"t\":true,\"f\":false,\"z\":null}")
                .unwrap();
        assert_eq!(obj["s"].as_str(), Some("a\nb"));
        assert_eq!(obj["n"].as_num(), Some(-1.5));
        assert_eq!(obj["t"].as_bool(), Some(true));
        assert_eq!(obj["f"].as_bool(), Some(false));
        assert_eq!(obj["z"], JsonValue::Null);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1}";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let obj = parse_flat_object(&line).unwrap();
        assert_eq!(obj["k"].as_str(), Some(nasty));
    }

    #[test]
    fn integers_round_trip_exactly_even_above_f64_precision() {
        let obj = parse_flat_object(&format!(
            "{{\"seed\":{},\"odd\":{},\"neg\":-7,\"frac\":2.0}}",
            u64::MAX,
            (1u64 << 53) + 1,
        ))
        .unwrap();
        assert_eq!(obj["seed"].as_u64(), Some(u64::MAX));
        assert_eq!(obj["odd"].as_u64(), Some((1u64 << 53) + 1));
        assert_eq!(get_u64(&obj, "seed").unwrap(), u64::MAX);
        // Negative and fractional values are not unsigned integers...
        assert_eq!(obj["neg"], JsonValue::Int(-7));
        assert!(get_u64(&obj, "neg").is_err());
        assert!(get_u64(&obj, "frac").is_err());
        // ...but everything numeric still widens through as_num.
        assert_eq!(obj["neg"].as_num(), Some(-7.0));
        assert_eq!(obj["frac"].as_num(), Some(2.0));
    }

    #[test]
    fn typed_accessors_report_missing_and_mistyped_fields() {
        let obj = parse_flat_object("{\"s\":\"x\",\"n\":3,\"b\":true,\"z\":null}").unwrap();
        assert_eq!(get_str(&obj, "s").unwrap(), "x");
        assert_eq!(get_usize(&obj, "n").unwrap(), 3);
        assert!(get_bool(&obj, "b").unwrap());
        assert_eq!(get_opt_str(&obj, "z").unwrap(), None);
        assert_eq!(get_opt_str(&obj, "absent").unwrap(), None);
        assert!(get_str(&obj, "absent").unwrap_err().contains("missing"));
        assert!(get_str(&obj, "n").unwrap_err().contains("not a string"));
        assert!(get_bool(&obj, "s").unwrap_err().contains("not a boolean"));
        assert!(get_u64(&obj, "b").unwrap_err().contains("unsigned"));
        assert_eq!(get_opt_u64(&obj, "n").unwrap(), Some(3));
        assert_eq!(get_opt_u64(&obj, "z").unwrap(), None);
        assert_eq!(get_opt_u64(&obj, "absent").unwrap(), None);
        assert!(get_opt_u64(&obj, "s").unwrap_err().contains("unsigned"));
        let hexed = parse_flat_object("{\"fp\":\"00ff\",\"bad\":\"xyz\"}").unwrap();
        assert_eq!(get_hex_u64(&hexed, "fp").unwrap(), 0xff);
        assert!(get_hex_u64(&hexed, "bad").unwrap_err().contains("hex"));
    }

    #[test]
    fn rejects_malformed_objects() {
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"k\":tru}").is_err());
        assert!(parse_flat_object("{\"k\":1 \"j\":2}").is_err());
    }

    #[test]
    fn escape_emits_surrogate_pairs_for_astral_chars() {
        assert_eq!(escape("\u{1F600}"), "\\ud83d\\ude00");
        assert_eq!(escape("a\u{10000}b"), "a\\ud800\\udc00b");
        // BMP characters stay literal (byte-stable existing encodings).
        assert_eq!(escape("é\u{2028}"), "é\u{2028}");
    }

    #[test]
    fn decodes_utf16_surrogate_pairs() {
        let obj = parse_flat_object("{\"k\":\"\\ud83d\\ude00\"}").unwrap();
        assert_eq!(obj["k"].as_str(), Some("\u{1F600}"));
        // Round trip through our own escaper.
        let line = format!(
            "{{\"k\":\"{}\"}}",
            escape("grin \u{1F600} / plane2 \u{20000}")
        );
        let back = parse_flat_object(&line).unwrap();
        assert_eq!(
            back["k"].as_str(),
            Some("grin \u{1F600} / plane2 \u{20000}")
        );
        // Raw (unescaped) astral characters in the input also survive.
        let raw = parse_flat_object("{\"k\":\"\u{1F680}\"}").unwrap();
        assert_eq!(raw["k"].as_str(), Some("\u{1F680}"));
    }

    #[test]
    fn rejects_lone_and_malformed_surrogates() {
        let err = |s: &str| parse_flat_object(s).unwrap_err();
        assert!(err("{\"k\":\"\\ud83d\"}").contains("unpaired high surrogate"));
        assert!(err("{\"k\":\"\\ud83d tail\"}").contains("unpaired high surrogate"));
        assert!(err("{\"k\":\"\\ude00\"}").contains("unpaired low surrogate"));
        assert!(err("{\"k\":\"\\ud83d\\u0041\"}").contains("not a low surrogate"));
        assert!(err("{\"k\":\"\\uzzzz\"}").contains("bad \\u escape"));
        assert!(err("{\"k\":\"\\ud8\"}").contains("bad \\u escape"));
    }
}
