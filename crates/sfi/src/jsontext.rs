//! Minimal flat JSON text codec shared across the workspace.
//!
//! The offline dependency set has no `serde_json`, so every text
//! format in the workspace — campaign plan files ([`crate::plan`]),
//! campaign shard/report documents (`nfi_core::service`), and the
//! dataset JSONL (`nfi_dataset::jsonl`) — is built on this one
//! purpose-built codec: an escaper for writing and a flat-object
//! parser (strings / numbers / booleans / null, no nesting) for
//! reading. Keeping a single implementation keeps the escaping rules
//! — and therefore the byte-stable encodings the shard-merge
//! guarantees depend on — identical everywhere.

use std::collections::BTreeMap;

/// Escapes a string for JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A scalar value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A number (all JSON numbers parse as `f64`).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a flat (non-nested) JSON object of scalar values.
///
/// # Errors
///
/// Returns a message describing the first structural problem.
pub fn parse_flat_object(s: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let chars: Vec<char> = s.trim().chars().collect();
    let mut i = 0usize;
    let mut out = BTreeMap::new();
    expect(&chars, &mut i, '{')?;
    skip_ws(&chars, &mut i);
    if peek(&chars, i) == Some('}') {
        return Ok(out);
    }
    loop {
        skip_ws(&chars, &mut i);
        let key = parse_string(&chars, &mut i)?;
        skip_ws(&chars, &mut i);
        expect(&chars, &mut i, ':')?;
        skip_ws(&chars, &mut i);
        let value = match peek(&chars, i) {
            Some('"') => JsonValue::Str(parse_string(&chars, &mut i)?),
            Some('n') => {
                expect_word(&chars, &mut i, "null")?;
                JsonValue::Null
            }
            Some('t') => {
                expect_word(&chars, &mut i, "true")?;
                JsonValue::Bool(true)
            }
            Some('f') => {
                expect_word(&chars, &mut i, "false")?;
                JsonValue::Bool(false)
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = i;
                while peek(&chars, i)
                    .map(|c| {
                        c.is_ascii_digit()
                            || c == '-'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c == '+'
                    })
                    .unwrap_or(false)
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                JsonValue::Num(text.parse().map_err(|_| format!("bad number `{text}`"))?)
            }
            other => return Err(format!("unexpected value start {other:?} at {i}")),
        };
        out.insert(key, value);
        skip_ws(&chars, &mut i);
        match peek(&chars, i) {
            Some(',') => {
                i += 1;
            }
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, found {other:?}")),
        }
    }
    Ok(out)
}

fn peek(chars: &[char], i: usize) -> Option<char> {
    chars.get(i).copied()
}

fn skip_ws(chars: &[char], i: &mut usize) {
    while peek(chars, *i).map(|c| c.is_whitespace()).unwrap_or(false) {
        *i += 1;
    }
}

fn expect(chars: &[char], i: &mut usize, c: char) -> Result<(), String> {
    if peek(chars, *i) == Some(c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{c}` at {}, found {:?}",
            i,
            peek(chars, *i)
        ))
    }
}

fn expect_word(chars: &[char], i: &mut usize, word: &str) -> Result<(), String> {
    for c in word.chars() {
        expect(chars, i, c)?;
    }
    Ok(())
}

fn parse_string(chars: &[char], i: &mut usize) -> Result<String, String> {
    expect(chars, i, '"')?;
    let mut out = String::new();
    loop {
        match peek(chars, *i) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *i += 1;
                return Ok(out);
            }
            Some('\\') => {
                *i += 1;
                match peek(chars, *i) {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*i + 1..*i + 5)
                            .map(|s| s.iter().collect())
                            .unwrap_or_default();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *i += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *i += 1;
            }
            Some(c) => {
                out.push(c);
                *i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_scalar_kinds() {
        let obj =
            parse_flat_object("{\"s\":\"a\\nb\",\"n\":-1.5,\"t\":true,\"f\":false,\"z\":null}")
                .unwrap();
        assert_eq!(obj["s"].as_str(), Some("a\nb"));
        assert_eq!(obj["n"].as_num(), Some(-1.5));
        assert_eq!(obj["t"].as_bool(), Some(true));
        assert_eq!(obj["f"].as_bool(), Some(false));
        assert_eq!(obj["z"], JsonValue::Null);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1}";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let obj = parse_flat_object(&line).unwrap();
        assert_eq!(obj["k"].as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_objects() {
        assert!(parse_flat_object("not json").is_err());
        assert!(parse_flat_object("{\"k\":tru}").is_err());
        assert!(parse_flat_object("{\"k\":1 \"j\":2}").is_err());
    }
}
