//! Fault-injection campaigns: enumerate, sample, and apply fault plans
//! over a module.

use crate::{operators, FaultClass, InjectedFault, Site};
use nfi_pylite::Module;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One planned injection: an operator applied at a site.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Operator mnemonic.
    pub operator: &'static str,
    /// Fault class.
    pub class: FaultClass,
    /// Target site.
    pub site: Site,
}

/// Summary statistics of a campaign enumeration.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Plans per operator mnemonic.
    pub per_operator: BTreeMap<&'static str, usize>,
    /// Plans per fault class key.
    pub per_class: BTreeMap<&'static str, usize>,
    /// Total number of plans.
    pub total: usize,
}

/// A fault-injection campaign over one module.
///
/// # Examples
///
/// ```
/// let module = nfi_pylite::parse("def f(x):\n    log(x)\n    return x + 1\n")?;
/// let campaign = nfi_sfi::Campaign::full(&module);
/// assert!(campaign.plans().len() >= 2);
/// let fault = campaign.apply(&campaign.plans()[0]).expect("applies");
/// assert!(!fault.description.is_empty());
/// # Ok::<(), nfi_pylite::PyliteError>(())
/// ```
pub struct Campaign {
    module: Arc<Module>,
    plans: Vec<FaultPlan>,
}

impl Campaign {
    /// Enumerates every (operator, site) pair using the full registry.
    pub fn full(module: &Module) -> Self {
        Self::with_operators(module, &operators::registry())
    }

    /// Enumerates plans restricted to the conventional (predefined-model)
    /// operator subset — the baseline tool of the comparative analysis.
    pub fn conventional(module: &Module) -> Self {
        let names = crate::conventional_operator_names();
        let ops: Vec<_> = operators::registry()
            .into_iter()
            .filter(|op| names.contains(&op.name()))
            .collect();
        Self::with_operators(module, &ops)
    }

    /// Enumerates plans for an explicit operator set.
    pub fn with_operators(module: &Module, ops: &[Box<dyn crate::FaultOperator>]) -> Self {
        let mut plans = Vec::new();
        for op in ops {
            for site in op.find_sites(module) {
                plans.push(FaultPlan {
                    operator: op.name(),
                    class: op.class(),
                    site,
                });
            }
        }
        Campaign {
            module: Arc::new(module.clone()),
            plans,
        }
    }

    /// All enumerated plans.
    pub fn plans(&self) -> &[FaultPlan] {
        &self.plans
    }

    /// The module the campaign was built from.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The module behind a cheap shared pointer (what the parallel
    /// execution engine clones instead of the whole AST).
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }

    /// A seeded random sample of at most `n` plans (without
    /// replacement), as borrowed views into the enumeration — no plan
    /// is ever cloned. Callers that need owned plans can clone
    /// individually; callers driving the execution engine should prefer
    /// [`Campaign::sample_indices`] and index-based execution.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<&FaultPlan> {
        self.sample_indices(n, seed)
            .into_iter()
            .map(|i| &self.plans[i])
            .collect()
    }

    /// Indices of a seeded random sample of at most `n` plans (without
    /// replacement), avoiding any plan clones.
    pub fn sample_indices(&self, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.plans.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(n);
        indices
    }

    /// Applies a plan, producing the mutated module plus provenance.
    ///
    /// Returns `None` when the plan is stale (site vanished).
    pub fn apply(&self, plan: &FaultPlan) -> Option<InjectedFault> {
        apply_plan(&self.module, plan)
    }

    /// Aggregate statistics over the enumerated plans.
    pub fn report(&self) -> CampaignReport {
        let mut report = CampaignReport::default();
        for plan in &self.plans {
            *report.per_operator.entry(plan.operator).or_insert(0) += 1;
            *report.per_class.entry(plan.class.key()).or_insert(0) += 1;
            report.total += 1;
        }
        report
    }
}

/// Applies a plan against any module, producing the mutated module plus
/// provenance — [`Campaign::apply`] without the campaign. This is the
/// primitive the plan-IR executor and the mutant cache build on: a plan
/// decoded from a [`crate::plan::CampaignSpec`] can be applied to the
/// re-parsed module directly.
///
/// Returns `None` when the operator is unknown or the site is stale.
pub fn apply_plan(module: &Module, plan: &FaultPlan) -> Option<InjectedFault> {
    let op = operators::by_name(plan.operator)?;
    let mutated = op.apply(module, &plan.site)?;
    Some(InjectedFault {
        operator: plan.operator,
        class: plan.class,
        site: plan.site.clone(),
        module: mutated,
        description: op.describe(&plan.site),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn corpus_like() -> Module {
        parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n",
        )
        .unwrap()
    }

    #[test]
    fn full_campaign_enumerates_multiple_classes() {
        let c = Campaign::full(&corpus_like());
        let report = c.report();
        assert!(report.total >= 5, "report: {report:?}");
        assert!(report.per_class.contains_key("concurrency"));
        assert!(report.per_class.contains_key("omission"));
    }

    #[test]
    fn conventional_campaign_has_no_concurrency_plans() {
        let c = Campaign::conventional(&corpus_like());
        let report = c.report();
        assert!(report.total > 0);
        assert!(!report.per_class.contains_key("concurrency"));
        assert!(!report.per_class.contains_key("timing"));
    }

    #[test]
    fn every_plan_applies_cleanly() {
        let c = Campaign::full(&corpus_like());
        for plan in c.plans() {
            let fault = c
                .apply(plan)
                .unwrap_or_else(|| panic!("stale plan {plan:?}"));
            // Mutated module must still print and reparse.
            let printed = nfi_pylite::print_module(&fault.module);
            parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", plan.operator));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let c = Campaign::full(&corpus_like());
        let a = c.sample(3, 42);
        let b = c.sample(3, 42);
        assert_eq!(a.len().min(3), a.len());
        assert_eq!(
            a.iter().map(|p| p.operator).collect::<Vec<_>>(),
            b.iter().map(|p| p.operator).collect::<Vec<_>>()
        );
        let d = c.sample(3, 43);
        let same = a
            .iter()
            .zip(d.iter())
            .all(|(x, y)| x.operator == y.operator && x.site == y.site);
        // Different seeds *may* coincide for tiny plan sets, but the
        // campaign here is large enough that they should not.
        assert!(!same || c.plans().len() <= 3);
    }

    #[test]
    fn report_counts_sum_to_total() {
        let c = Campaign::full(&corpus_like());
        let report = c.report();
        let by_op: usize = report.per_operator.values().sum();
        let by_class: usize = report.per_class.values().sum();
        assert_eq!(by_op, report.total);
        assert_eq!(by_class, report.total);
    }
}
