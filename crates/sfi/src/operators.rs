//! The fault-operator library.
//!
//! Operators are grouped by [`FaultClass`]:
//!
//! | Class | Operators |
//! |---|---|
//! | omission | MFC, MIA, MIEB, MVIV, MLPA, MRS |
//! | wrong_value | WVAV, WAEP, WLEC, OBOE |
//! | interface | WPFV, SDC |
//! | exception_handling | EHS, EHW, DFR |
//! | concurrency | LRA, LRM |
//! | resource_leak | RLK |
//! | buffer_overflow | BCS, BWO |
//! | timing | TDL, STL |
//!
//! Sites inside `test_*` functions are never offered: faults go into the
//! production code, and the embedded test suites act as the oracle.

use crate::{FaultClass, FaultOperator, Site};
use nfi_pylite::analysis::{rewrite_blocks, visit_exprs_stmt, visit_exprs_stmt_mut};
use nfi_pylite::ast::{build, Expr, ExprKind, Lit, Module, NodeId, Stmt, StmtKind};

/// Builds the full operator registry.
pub fn registry() -> Vec<Box<dyn FaultOperator>> {
    vec![
        Box::new(Mfc),
        Box::new(Mia),
        Box::new(Mieb),
        Box::new(Mviv),
        Box::new(Mlpa),
        Box::new(Mrs),
        Box::new(Wvav),
        Box::new(Waep),
        Box::new(Wlec),
        Box::new(Oboe),
        Box::new(Wpfv),
        Box::new(Sdc),
        Box::new(Ehs),
        Box::new(Ehw),
        Box::new(Dfr),
        Box::new(Lra),
        Box::new(Lrm),
        Box::new(Rlk),
        Box::new(Bcs),
        Box::new(Bwo),
        Box::new(Tdl),
        Box::new(Stl),
    ]
}

/// The registry behind a process-wide cache; lookups via [`by_name`]
/// never allocate, which matters in the campaign engine's per-plan hot
/// loop.
fn registry_cached() -> &'static [Box<dyn FaultOperator>] {
    static REGISTRY: std::sync::OnceLock<Vec<Box<dyn FaultOperator>>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(registry)
}

/// Finds an operator by mnemonic (allocation-free, cached registry).
pub fn by_name(name: &str) -> Option<&'static dyn FaultOperator> {
    registry_cached()
        .iter()
        .find(|op| op.name() == name)
        .map(Box::as_ref)
}

// ---- shared helpers --------------------------------------------------------

fn walk_fn_ctx<'a>(
    body: &'a [Stmt],
    func: Option<&'a str>,
    f: &mut dyn FnMut(&'a Stmt, Option<&'a str>),
) {
    for s in body {
        f(s, func);
        match &s.kind {
            StmtKind::Def { name, body, .. } => walk_fn_ctx(body, Some(name), f),
            StmtKind::If { then, orelse, .. } => {
                walk_fn_ctx(then, func, f);
                walk_fn_ctx(orelse, func, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk_fn_ctx(body, func, f),
            StmtKind::Try {
                body,
                handlers,
                finally,
            } => {
                walk_fn_ctx(body, func, f);
                for h in handlers {
                    walk_fn_ctx(&h.body, func, f);
                }
                walk_fn_ctx(finally, func, f);
            }
            _ => {}
        }
    }
}

/// Scans for sites, skipping statements inside `test_*` functions.
fn scan_sites(module: &Module, pred: &mut dyn FnMut(&Stmt) -> Option<String>) -> Vec<Site> {
    let mut sites = Vec::new();
    walk_fn_ctx(&module.body, None, &mut |stmt, func| {
        if func.is_some_and(|f| f.starts_with("test_")) {
            return;
        }
        if let Some(detail) = pred(stmt) {
            sites.push(Site {
                stmt_id: stmt.id,
                function: func.map(str::to_string),
                line: stmt.span.line,
                detail,
            });
        }
    });
    sites
}

/// Clones the module and removes the statement with the given id,
/// inserting `pass` when its block would become empty.
fn remove_stmt(module: &Module, id: NodeId) -> Option<Module> {
    splice_stmt(module, id, Vec::new())
}

/// Clones the module and replaces the statement with the given id by the
/// given statements (empty = removal).
fn splice_stmt(module: &Module, id: NodeId, with: Vec<Stmt>) -> Option<Module> {
    let mut m = module.clone();
    let mut done = false;
    rewrite_blocks(&mut m, &mut |block| {
        if done {
            return;
        }
        if let Some(pos) = block.iter().position(|s| s.id == id) {
            block.splice(pos..=pos, with.clone());
            if block.is_empty() {
                block.push(build::pass());
            }
            done = true;
        }
    });
    if done {
        m.renumber();
        Some(m)
    } else {
        None
    }
}

/// Clones the module and inserts a statement before the one with the
/// given id.
fn insert_before(module: &Module, id: NodeId, stmt: Stmt) -> Option<Module> {
    let mut m = module.clone();
    let mut done = false;
    rewrite_blocks(&mut m, &mut |block| {
        if done {
            return;
        }
        if let Some(pos) = block.iter().position(|s| s.id == id) {
            block.insert(pos, stmt.clone());
            done = true;
        }
    });
    if done {
        m.renumber();
        Some(m)
    } else {
        None
    }
}

/// Clones the module and mutates the statement with the given id in
/// place; `f` returns whether the mutation applied.
fn modify_stmt(
    module: &Module,
    id: NodeId,
    f: &mut dyn FnMut(&mut Stmt) -> bool,
) -> Option<Module> {
    let mut m = module.clone();
    let mut done = false;
    m.walk_stmts_mut(&mut |s| {
        if !done && s.id == id {
            done = f(s);
        }
    });
    if done {
        m.renumber();
        Some(m)
    } else {
        None
    }
}

/// The callee name of a direct call expression statement.
fn call_stmt_name(stmt: &Stmt) -> Option<String> {
    if let StmtKind::Expr(e) = &stmt.kind {
        match &e.kind {
            ExprKind::Call { func, .. } => {
                if let ExprKind::Name(n) = &func.kind {
                    return Some(n.clone());
                }
            }
            ExprKind::MethodCall { obj, name, .. } => {
                if let ExprKind::Name(o) = &obj.kind {
                    return Some(format!("{o}.{name}"));
                }
            }
            _ => {}
        }
    }
    None
}

/// A method-call expression statement `recv.method(...)` on a plain name.
fn method_call_stmt(stmt: &Stmt) -> Option<(String, String)> {
    if let StmtKind::Expr(e) = &stmt.kind {
        if let ExprKind::MethodCall { obj, name, .. } = &e.kind {
            if let ExprKind::Name(o) = &obj.kind {
                return Some((o.clone(), name.clone()));
            }
        }
    }
    None
}

fn perturb_lit(lit: &Lit) -> Option<Lit> {
    match lit {
        Lit::Int(0) => Some(Lit::Int(1)),
        Lit::Int(i) => Some(Lit::Int(i + 1)),
        Lit::Float(f) => Some(Lit::Float(f * 2.0 + 1.0)),
        Lit::Bool(b) => Some(Lit::Bool(!b)),
        Lit::Str(s) if !s.is_empty() => Some(Lit::Str(String::new())),
        _ => None,
    }
}

fn lit_repr(lit: &Lit) -> String {
    match lit {
        Lit::None => "None".to_string(),
        Lit::Bool(true) => "True".to_string(),
        Lit::Bool(false) => "False".to_string(),
        Lit::Int(i) => i.to_string(),
        Lit::Float(f) => format!("{f}"),
        Lit::Str(s) => format!("{s:?}"),
    }
}

// ---- omission operators ----------------------------------------------------

/// MFC — missing function call.
struct Mfc;

impl FaultOperator for Mfc {
    fn name(&self) -> &'static str {
        "MFC"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "remove a function-call statement (missing function call)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| call_stmt_name(s))
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        remove_stmt(module, site.stmt_id)
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "remove the call to {} so its side effects never happen",
            site.detail
        )
    }
}

/// MIA — missing if construct around statements.
struct Mia;

impl FaultOperator for Mia {
    fn name(&self) -> &'static str {
        "MIA"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "remove an if guard, unconditionally executing its body"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::If { orelse, cond, .. } if orelse.is_empty() => {
                Some(nfi_pylite::print_expr(cond))
            }
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        let mut body = None;
        module.walk_stmts(&mut |s| {
            if s.id == site.stmt_id {
                if let StmtKind::If { then, .. } = &s.kind {
                    body = Some(then.clone());
                }
            }
        });
        splice_stmt(module, site.stmt_id, body?)
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "drop the guard `if {}` so the guarded code always runs",
            site.detail
        )
    }
}

/// MIEB — missing else branch.
struct Mieb;

impl FaultOperator for Mieb {
    fn name(&self) -> &'static str {
        "MIEB"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "remove the else branch of a conditional"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::If { orelse, .. } if !orelse.is_empty() => {
                Some(format!("{} statement(s) in the else branch", orelse.len()))
            }
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::If { orelse, .. } = &mut s.kind {
                if !orelse.is_empty() {
                    orelse.clear();
                    return true;
                }
            }
            false
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("remove the else branch ({})", site.detail)
    }
}

/// MVIV — missing variable initialization with a value.
struct Mviv;

impl FaultOperator for Mviv {
    fn name(&self) -> &'static str {
        "MVIV"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "remove a constant variable initialization"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Assign {
                target: nfi_pylite::ast::Target::Name(n),
                value,
            } if matches!(value.kind, ExprKind::Const(_)) => Some(n.clone()),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        remove_stmt(module, site.stmt_id)
    }
    fn describe(&self, site: &Site) -> String {
        format!("remove the initialization of variable `{}`", site.detail)
    }
}

/// MLPA — missing small part of the algorithm (an update statement).
struct Mlpa;

impl FaultOperator for Mlpa {
    fn name(&self) -> &'static str {
        "MLPA"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "remove an augmented-assignment update step"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::AugAssign { target, .. } => match target {
                nfi_pylite::ast::Target::Name(n) => Some(n.clone()),
                _ => Some("<subscript>".to_string()),
            },
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        remove_stmt(module, site.stmt_id)
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "skip the update of `{}` (missing algorithm step)",
            site.detail
        )
    }
}

/// MRS — missing return statement.
struct Mrs;

impl FaultOperator for Mrs {
    fn name(&self) -> &'static str {
        "MRS"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Omission
    }
    fn doc(&self) -> &'static str {
        "drop a return value (function silently returns None)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Return(Some(e)) => Some(nfi_pylite::print_expr(e)),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        splice_stmt(module, site.stmt_id, vec![build::return_(None)])
    }
    fn describe(&self, site: &Site) -> String {
        format!("return None instead of `{}`", site.detail)
    }
}

// ---- wrong-value operators ---------------------------------------------------

/// WVAV — wrong value assigned to a variable.
struct Wvav;

impl FaultOperator for Wvav {
    fn name(&self) -> &'static str {
        "WVAV"
    }
    fn class(&self) -> FaultClass {
        FaultClass::WrongValue
    }
    fn doc(&self) -> &'static str {
        "perturb a constant on the right-hand side of an assignment"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Assign { value, .. } => first_perturbable(value).map(|l| lit_repr(&l)),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::Assign { value, .. } = &mut s.kind {
                perturb_first_const(value)
            } else {
                false
            }
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("assign a wrong value (perturbing constant {})", site.detail)
    }
}

fn first_perturbable(e: &Expr) -> Option<Lit> {
    let mut found = None;
    nfi_pylite::analysis::visit_expr(e, &mut |x| {
        if found.is_some() {
            return;
        }
        if let ExprKind::Const(lit) = &x.kind {
            if perturb_lit(lit).is_some() {
                found = Some(lit.clone());
            }
        }
    });
    found
}

fn perturb_first_const(e: &mut Expr) -> bool {
    let mut done = false;
    nfi_pylite::analysis::visit_expr_mut(e, &mut |x| {
        if done {
            return;
        }
        if let ExprKind::Const(lit) = &mut x.kind {
            if let Some(new) = perturb_lit(lit) {
                *lit = new;
                done = true;
            }
        }
    });
    done
}

/// WAEP — wrong arithmetic operator in an expression.
struct Waep;

fn swap_binop(op: nfi_pylite::ast::BinOp) -> nfi_pylite::ast::BinOp {
    use nfi_pylite::ast::BinOp::*;
    match op {
        Add => Sub,
        Sub => Add,
        Mul => Add,
        Div => Mul,
        FloorDiv => Div,
        Mod => FloorDiv,
        Pow => Mul,
    }
}

impl FaultOperator for Waep {
    fn name(&self) -> &'static str {
        "WAEP"
    }
    fn class(&self) -> FaultClass {
        FaultClass::WrongValue
    }
    fn doc(&self) -> &'static str {
        "replace an arithmetic operator with a neighbouring one"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            let mut found = None;
            visit_exprs_stmt(s, &mut |e| {
                if found.is_some() {
                    return;
                }
                if let ExprKind::Bin { op, .. } = &e.kind {
                    found = Some(format!("{} -> {}", op.symbol(), swap_binop(*op).symbol()));
                }
            });
            found
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            let mut done = false;
            visit_exprs_stmt_mut(s, &mut |e| {
                if done {
                    return;
                }
                if let ExprKind::Bin { op, .. } = &mut e.kind {
                    *op = swap_binop(*op);
                    done = true;
                }
            });
            done
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("use the wrong arithmetic operator ({})", site.detail)
    }
}

/// WLEC — wrong logical expression in a condition (negation).
struct Wlec;

impl FaultOperator for Wlec {
    fn name(&self) -> &'static str {
        "WLEC"
    }
    fn class(&self) -> FaultClass {
        FaultClass::WrongValue
    }
    fn doc(&self) -> &'static str {
        "negate a branch or loop condition"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::If { cond, .. } => Some(nfi_pylite::print_expr(cond)),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::If { cond, .. } = &mut s.kind {
                let old = cond.clone();
                *cond = build::not(old);
                true
            } else {
                false
            }
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("invert the condition `{}`", site.detail)
    }
}

/// OBOE — off-by-one boundary in a comparison.
struct Oboe;

impl FaultOperator for Oboe {
    fn name(&self) -> &'static str {
        "OBOE"
    }
    fn class(&self) -> FaultClass {
        FaultClass::WrongValue
    }
    fn doc(&self) -> &'static str {
        "relax or tighten a comparison boundary (< vs <=)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        use nfi_pylite::ast::CmpOp;
        scan_sites(module, &mut |s| {
            let relevant = matches!(
                s.kind,
                StmtKind::If { .. } | StmtKind::While { .. } | StmtKind::Return(_)
            );
            if !relevant {
                return None;
            }
            let mut found = None;
            visit_exprs_stmt(s, &mut |e| {
                if found.is_some() {
                    return;
                }
                if let ExprKind::Cmp { op, .. } = &e.kind {
                    if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                        found = Some(format!("{} -> {}", op.symbol(), op.relax().symbol()));
                    }
                }
            });
            found
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        use nfi_pylite::ast::CmpOp;
        modify_stmt(module, site.stmt_id, &mut |s| {
            let mut done = false;
            visit_exprs_stmt_mut(s, &mut |e| {
                if done {
                    return;
                }
                if let ExprKind::Cmp { op, .. } = &mut e.kind {
                    if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                        *op = op.relax();
                        done = true;
                    }
                }
            });
            done
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("introduce an off-by-one boundary ({})", site.detail)
    }
}

// ---- interface operators -----------------------------------------------------

/// WPFV — wrong parameter value passed to a call.
struct Wpfv;

impl FaultOperator for Wpfv {
    fn name(&self) -> &'static str {
        "WPFV"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Interface
    }
    fn doc(&self) -> &'static str {
        "perturb a constant argument of a call"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            let mut found = None;
            visit_exprs_stmt(s, &mut |e| {
                if found.is_some() {
                    return;
                }
                let args = match &e.kind {
                    ExprKind::Call { args, .. } => args,
                    ExprKind::MethodCall { args, .. } => args,
                    _ => return,
                };
                for a in args {
                    if let ExprKind::Const(lit) = &a.kind {
                        if perturb_lit(lit).is_some() {
                            found = Some(lit_repr(lit));
                            return;
                        }
                    }
                }
            });
            found
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            let mut done = false;
            visit_exprs_stmt_mut(s, &mut |e| {
                if done {
                    return;
                }
                let args = match &mut e.kind {
                    ExprKind::Call { args, .. } => args,
                    ExprKind::MethodCall { args, .. } => args,
                    _ => return,
                };
                for a in args {
                    if let ExprKind::Const(lit) = &mut a.kind {
                        if let Some(new) = perturb_lit(lit) {
                            *lit = new;
                            done = true;
                            return;
                        }
                    }
                }
            });
            done
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("pass a wrong argument value (perturbing {})", site.detail)
    }
}

/// SDC — spurious duplicated call.
struct Sdc;

impl FaultOperator for Sdc {
    fn name(&self) -> &'static str {
        "SDC"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Interface
    }
    fn doc(&self) -> &'static str {
        "duplicate a call statement (double-submit / double-charge)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| call_stmt_name(s))
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        let mut original = None;
        module.walk_stmts(&mut |s| {
            if s.id == site.stmt_id {
                original = Some(s.clone());
            }
        });
        let stmt = original?;
        insert_before(module, site.stmt_id, stmt)
    }
    fn describe(&self, site: &Site) -> String {
        format!("call {} twice instead of once", site.detail)
    }
}

// ---- exception-handling operators ---------------------------------------------

/// EHS — exception handler swallowed (recovery logic removed).
struct Ehs;

impl FaultOperator for Ehs {
    fn name(&self) -> &'static str {
        "EHS"
    }
    fn class(&self) -> FaultClass {
        FaultClass::ExceptionHandling
    }
    fn doc(&self) -> &'static str {
        "replace an except-handler body with pass (swallow the error)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Try { handlers, .. } => handlers
                .iter()
                .find(|h| !matches!(h.body.as_slice(), [one] if one.kind == StmtKind::Pass))
                .map(|h| h.kind.clone().unwrap_or_else(|| "Exception".to_string())),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::Try { handlers, .. } = &mut s.kind {
                for h in handlers.iter_mut() {
                    if !matches!(h.body.as_slice(), [one] if one.kind == StmtKind::Pass) {
                        h.body = vec![build::pass()];
                        h.bind = None;
                        return true;
                    }
                }
            }
            false
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "swallow {} exceptions without any recovery logic",
            site.detail
        )
    }
}

/// EHW — wrong exception kind caught.
struct Ehw;

impl FaultOperator for Ehw {
    fn name(&self) -> &'static str {
        "EHW"
    }
    fn class(&self) -> FaultClass {
        FaultClass::ExceptionHandling
    }
    fn doc(&self) -> &'static str {
        "catch the wrong exception kind"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Try { handlers, .. } => handlers
                .iter()
                .find_map(|h| h.kind.clone())
                .map(|k| k.to_string()),
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::Try { handlers, .. } = &mut s.kind {
                for h in handlers.iter_mut() {
                    if let Some(kind) = &h.kind {
                        let replacement = if kind == "KeyError" {
                            "IndexError"
                        } else {
                            "KeyError"
                        };
                        h.kind = Some(replacement.to_string());
                        return true;
                    }
                }
            }
            false
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!("catch the wrong exception kind instead of {}", site.detail)
    }
}

/// DFR — dependency failure raise (spurious TimeoutError at entry).
struct Dfr;

impl FaultOperator for Dfr {
    fn name(&self) -> &'static str {
        "DFR"
    }
    fn class(&self) -> FaultClass {
        FaultClass::ExceptionHandling
    }
    fn doc(&self) -> &'static str {
        "raise TimeoutError at function entry (failing dependency)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        module
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Def { name, .. } if !name.starts_with("test_") => Some(Site {
                    stmt_id: s.id,
                    function: Some(name.clone()),
                    line: s.span.line,
                    detail: name.clone(),
                }),
                _ => None,
            })
            .collect()
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            if let StmtKind::Def { body, .. } = &mut s.kind {
                body.insert(
                    0,
                    build::raise("TimeoutError", "injected dependency timeout"),
                );
                true
            } else {
                false
            }
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "make {} fail with a TimeoutError as if a dependency timed out",
            site.detail
        )
    }
}

// ---- concurrency operators -----------------------------------------------------

fn lock_calls_in_function(module: &Module, function: &str, method: &str) -> Vec<(NodeId, String)> {
    let mut out = Vec::new();
    walk_fn_ctx(&module.body, None, &mut |s, func| {
        if func != Some(function) {
            return;
        }
        if let Some((obj, m)) = method_call_stmt(s) {
            if m == method {
                out.push((s.id, obj));
            }
        }
    });
    out
}

/// LRA — lock removal (acquire *and* release), opening a race window.
struct Lra;

impl FaultOperator for Lra {
    fn name(&self) -> &'static str {
        "LRA"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Concurrency
    }
    fn doc(&self) -> &'static str {
        "remove a lock acquire/release pair (race condition)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            method_call_stmt(s)
                .filter(|(_, m)| m == "acquire")
                .map(|(obj, _)| obj)
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        let function = site.function.clone()?;
        let lock_name = site.detail.clone();
        // Remove the acquire at the site plus every release of the same
        // lock in the same function (including those in finally blocks).
        let releases = lock_calls_in_function(module, &function, "release");
        let mut m = remove_stmt(module, site.stmt_id)?;
        // Ids were renumbered; rescan for matching releases by shape.
        let _ = releases;
        loop {
            let next = {
                let mut found = None;
                walk_fn_ctx(&m.body, None, &mut |s, func| {
                    if found.is_some() || func != Some(function.as_str()) {
                        return;
                    }
                    if let Some((obj, method)) = method_call_stmt(s) {
                        if method == "release" && obj == lock_name {
                            found = Some(s.id);
                        }
                    }
                });
                found
            };
            match next {
                Some(id) => m = remove_stmt(&m, id)?,
                None => break,
            }
        }
        Some(m)
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "access shared state without acquiring lock `{}` (race window)",
            site.detail
        )
    }
}

/// LRM — lock release missing (deadlock under contention).
struct Lrm;

impl FaultOperator for Lrm {
    fn name(&self) -> &'static str {
        "LRM"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Concurrency
    }
    fn doc(&self) -> &'static str {
        "remove a lock release (deadlock under contention)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            method_call_stmt(s)
                .filter(|(_, m)| m == "release")
                .map(|(obj, _)| obj)
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        remove_stmt(module, site.stmt_id)
    }
    fn describe(&self, site: &Site) -> String {
        format!("never release lock `{}` after acquiring it", site.detail)
    }
}

// ---- resource operators ----------------------------------------------------------

/// RLK — resource leak (missing close).
struct Rlk;

impl FaultOperator for Rlk {
    fn name(&self) -> &'static str {
        "RLK"
    }
    fn class(&self) -> FaultClass {
        FaultClass::ResourceLeak
    }
    fn doc(&self) -> &'static str {
        "remove a handle close() call (resource leak)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            method_call_stmt(s)
                .filter(|(_, m)| m == "close")
                .map(|(obj, _)| obj)
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        remove_stmt(module, site.stmt_id)
    }
    fn describe(&self, site: &Site) -> String {
        format!("leak the resource `{}` by never closing it", site.detail)
    }
}

// ---- buffer operators -------------------------------------------------------------

/// BCS — buffer capacity shrink.
struct Bcs;

impl FaultOperator for Bcs {
    fn name(&self) -> &'static str {
        "BCS"
    }
    fn class(&self) -> FaultClass {
        FaultClass::BufferOverflow
    }
    fn doc(&self) -> &'static str {
        "allocate a buffer smaller than intended"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            let mut found = None;
            visit_exprs_stmt(s, &mut |e| {
                if found.is_some() {
                    return;
                }
                if let ExprKind::Call { func, args } = &e.kind {
                    if matches!(&func.kind, ExprKind::Name(n) if n == "make_buffer") {
                        if let Some(Expr {
                            kind: ExprKind::Const(Lit::Int(n)),
                            ..
                        }) = args.first()
                        {
                            if *n > 1 {
                                found = Some(n.to_string());
                            }
                        }
                    }
                }
            });
            found
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            let mut done = false;
            visit_exprs_stmt_mut(s, &mut |e| {
                if done {
                    return;
                }
                if let ExprKind::Call { func, args } = &mut e.kind {
                    if matches!(&func.kind, ExprKind::Name(n) if n == "make_buffer") {
                        if let Some(arg) = args.first_mut() {
                            if let ExprKind::Const(Lit::Int(n)) = &mut arg.kind {
                                if *n > 1 {
                                    *n /= 2;
                                    done = true;
                                }
                            }
                        }
                    }
                }
            });
            done
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "allocate the buffer with half its intended capacity ({})",
            site.detail
        )
    }
}

/// BWO — buffer write without bounds check (guard removal).
struct Bwo;

impl FaultOperator for Bwo {
    fn name(&self) -> &'static str {
        "BWO"
    }
    fn class(&self) -> FaultClass {
        FaultClass::BufferOverflow
    }
    fn doc(&self) -> &'static str {
        "remove a capacity/size guard around buffer writes"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            if let StmtKind::If { cond, .. } = &s.kind {
                let mut mentions = false;
                nfi_pylite::analysis::visit_expr(cond, &mut |e| {
                    if let ExprKind::MethodCall { name, .. } = &e.kind {
                        if name == "capacity" || name == "size" {
                            mentions = true;
                        }
                    }
                });
                if mentions {
                    return Some(nfi_pylite::print_expr(cond));
                }
            }
            None
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        let mut body = None;
        module.walk_stmts(&mut |s| {
            if s.id == site.stmt_id {
                if let StmtKind::If { then, orelse, .. } = &s.kind {
                    let mut all = then.clone();
                    all.extend(orelse.iter().cloned());
                    body = Some(all);
                }
            }
        });
        splice_stmt(module, site.stmt_id, body?)
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "write to the buffer without checking `{}` (bounds check removed)",
            site.detail
        )
    }
}

// ---- timing operators ---------------------------------------------------------------

/// TDL — timing delay inserted before a call.
struct Tdl;

impl FaultOperator for Tdl {
    fn name(&self) -> &'static str {
        "TDL"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Timing
    }
    fn doc(&self) -> &'static str {
        "insert a long delay before a call (slow dependency)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| match &s.kind {
            StmtKind::Expr(_) => call_stmt_name(s),
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Call { func, .. } => match &func.kind {
                    ExprKind::Name(n) => Some(n.clone()),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        insert_before(
            module,
            site.stmt_id,
            build::expr_stmt(build::call("sleep", vec![build::float(60.0)])),
        )
    }
    fn describe(&self, site: &Site) -> String {
        format!("delay 60 seconds before calling {}", site.detail)
    }
}

/// STL — stretched sleep (existing delay multiplied).
struct Stl;

impl FaultOperator for Stl {
    fn name(&self) -> &'static str {
        "STL"
    }
    fn class(&self) -> FaultClass {
        FaultClass::Timing
    }
    fn doc(&self) -> &'static str {
        "multiply an existing sleep duration by 100 (stalled dependency)"
    }
    fn find_sites(&self, module: &Module) -> Vec<Site> {
        scan_sites(module, &mut |s| {
            let mut found = None;
            visit_exprs_stmt(s, &mut |e| {
                if found.is_some() {
                    return;
                }
                if let ExprKind::Call { func, args } = &e.kind {
                    if matches!(&func.kind, ExprKind::Name(n) if n == "sleep") {
                        if let Some(Expr {
                            kind: ExprKind::Const(lit),
                            ..
                        }) = args.first()
                        {
                            found = Some(lit_repr(lit));
                        }
                    }
                }
            });
            found
        })
    }
    fn apply(&self, module: &Module, site: &Site) -> Option<Module> {
        modify_stmt(module, site.stmt_id, &mut |s| {
            let mut done = false;
            visit_exprs_stmt_mut(s, &mut |e| {
                if done {
                    return;
                }
                if let ExprKind::Call { func, args } = &mut e.kind {
                    if matches!(&func.kind, ExprKind::Name(n) if n == "sleep") {
                        if let Some(arg) = args.first_mut() {
                            match &mut arg.kind {
                                ExprKind::Const(Lit::Int(n)) => {
                                    *n *= 100;
                                    done = true;
                                }
                                ExprKind::Const(Lit::Float(f)) => {
                                    *f *= 100.0;
                                    done = true;
                                }
                                _ => {}
                            }
                        }
                    }
                }
            });
            done
        })
    }
    fn describe(&self, site: &Site) -> String {
        format!(
            "stretch the sleep of {} seconds by 100x (stalled dependency)",
            site.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::{parse, print_module};

    const SRC: &str = "\
limit = 10
def guard(x):
    if x > limit:
        raise ValueError(\"too big\")
    return x

def work(items):
    total = 0
    for item in items:
        total += guard(item)
    log(total)
    return total
";

    fn module() -> Module {
        parse(SRC).unwrap()
    }

    fn apply_first(op: &dyn FaultOperator, m: &Module) -> Module {
        let sites = op.find_sites(m);
        assert!(!sites.is_empty(), "{} found no sites", op.name());
        op.apply(m, &sites[0]).expect("apply succeeds")
    }

    #[test]
    fn every_applied_mutation_reparses() {
        let m = module();
        for op in registry() {
            for site in op.find_sites(&m) {
                if let Some(mutated) = op.apply(&m, &site) {
                    let printed = print_module(&mutated);
                    parse(&printed).unwrap_or_else(|e| {
                        panic!(
                            "{} at {:?} produced unparseable code: {e}\n{printed}",
                            op.name(),
                            site
                        )
                    });
                }
            }
        }
    }

    #[test]
    fn mutations_actually_change_the_module() {
        let m = module();
        for op in registry() {
            for site in op.find_sites(&m) {
                if let Some(mutated) = op.apply(&m, &site) {
                    assert_ne!(
                        print_module(&m),
                        print_module(&mutated),
                        "{} produced an identical module",
                        op.name()
                    );
                }
            }
        }
    }

    #[test]
    fn mfc_removes_call() {
        let m = module();
        let mutated = apply_first(&Mfc, &m);
        assert!(!print_module(&mutated).contains("log(total)"));
    }

    #[test]
    fn mia_unconditionally_raises() {
        let m = module();
        let mutated = apply_first(&Mia, &m);
        let printed = print_module(&mutated);
        assert!(!printed.contains("if x > limit"));
        assert!(printed.contains("raise ValueError"));
    }

    #[test]
    fn wlec_negates_condition() {
        let m = module();
        let mutated = apply_first(&Wlec, &m);
        // `not` binds looser than the comparison, so no parens are needed.
        assert!(print_module(&mutated).contains("if not x > limit:"));
    }

    #[test]
    fn oboe_relaxes_comparison() {
        let m = module();
        let mutated = apply_first(&Oboe, &m);
        assert!(print_module(&mutated).contains("x >= limit"));
    }

    #[test]
    fn mviv_removes_initialization() {
        let m = module();
        let mutated = apply_first(&Mviv, &m);
        assert!(!print_module(&mutated).contains("limit = 10"));
    }

    #[test]
    fn mrs_returns_none() {
        let m = module();
        let sites = Mrs.find_sites(&m);
        assert_eq!(sites.len(), 2);
        let mutated = Mrs.apply(&m, &sites[0]).unwrap();
        let printed = print_module(&mutated);
        assert!(printed.contains("return\n"), "{printed}");
    }

    #[test]
    fn sdc_duplicates_call() {
        let m = module();
        let mutated = apply_first(&Sdc, &m);
        let printed = print_module(&mutated);
        assert_eq!(printed.matches("log(total)").count(), 2);
    }

    #[test]
    fn dfr_raises_at_entry() {
        let m = module();
        let sites = Dfr.find_sites(&m);
        assert_eq!(sites.len(), 2, "one per non-test function");
        let mutated = Dfr.apply(&m, &sites[0]).unwrap();
        let printed = print_module(&mutated);
        assert!(printed.contains("raise TimeoutError(\"injected dependency timeout\")"));
    }

    #[test]
    fn exception_operators_on_try_blocks() {
        let src = "\
def fetch(k, d):
    try:
        return d[k]
    except KeyError as e:
        log(e)
        return None
";
        let m = parse(src).unwrap();
        let swallowed = apply_first(&Ehs, &m);
        let printed = print_module(&swallowed);
        assert!(!printed.contains("log(e)"));
        assert!(printed.contains("pass"));

        let wrong = apply_first(&Ehw, &m);
        assert!(print_module(&wrong).contains("except IndexError"));
    }

    #[test]
    fn lock_operators_strip_synchronization() {
        let p = nfi_corpus_like_locked_source();
        let m = parse(&p).unwrap();
        let sites = Lra.find_sites(&m);
        assert_eq!(sites.len(), 1);
        let mutated = Lra.apply(&m, &sites[0]).unwrap();
        let printed = print_module(&mutated);
        assert!(!printed.contains("m.acquire()"), "{printed}");
        assert!(!printed.contains("m.release()"), "{printed}");

        let rel_sites = Lrm.find_sites(&m);
        assert_eq!(rel_sites.len(), 1);
        let mutated = Lrm.apply(&m, &rel_sites[0]).unwrap();
        let printed = print_module(&mutated);
        assert!(printed.contains("m.acquire()"));
        assert!(!printed.contains("m.release()"));
    }

    fn nfi_corpus_like_locked_source() -> String {
        "m = lock()\ncounter = 0\ndef bump():\n    global counter\n    m.acquire()\n    counter = counter + 1\n    m.release()\n".to_string()
    }

    #[test]
    fn rlk_removes_close() {
        let src = "def save(x):\n    h = open_handle(\"f\")\n    h.write(x)\n    h.close()\n";
        let m = parse(src).unwrap();
        let mutated = apply_first(&Rlk, &m);
        assert!(!print_module(&mutated).contains("h.close()"));
    }

    #[test]
    fn buffer_operators() {
        let src = "b = make_buffer(8)\ndef put(v):\n    if b.size() < b.capacity():\n        b.append(v)\n";
        let m = parse(src).unwrap();
        let shrunk = apply_first(&Bcs, &m);
        assert!(print_module(&shrunk).contains("make_buffer(4)"));
        let unguarded = apply_first(&Bwo, &m);
        let printed = print_module(&unguarded);
        assert!(!printed.contains("if b.size()"), "{printed}");
        assert!(printed.contains("b.append(v)"));
    }

    #[test]
    fn timing_operators() {
        let src = "def fetch():\n    sleep(0.1)\n    return query()\ndef top():\n    r = fetch()\n    return r\n";
        let m = parse(src).unwrap();
        let delayed = apply_first(&Tdl, &m);
        assert!(print_module(&delayed).contains("sleep(60.0)"));
        let stretched = apply_first(&Stl, &m);
        assert!(print_module(&stretched).contains("sleep(10.0)"));
    }

    #[test]
    fn sites_in_test_functions_are_skipped() {
        let src = "def test_x():\n    helper(1)\ndef helper(v):\n    log(v)\n";
        let m = parse(src).unwrap();
        let sites = Mfc.find_sites(&m);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].function.as_deref(), Some("helper"));
    }

    #[test]
    fn apply_with_stale_site_returns_none() {
        let m = module();
        let site = Site {
            stmt_id: NodeId(9999),
            function: None,
            line: 0,
            detail: String::new(),
        };
        assert!(Mfc.apply(&m, &site).is_none());
        assert!(Wvav.apply(&m, &site).is_none());
    }

    #[test]
    fn describe_mentions_detail() {
        let m = module();
        for op in registry() {
            for site in op.find_sites(&m).into_iter().take(1) {
                let d = op.describe(&site);
                assert!(!d.is_empty());
            }
        }
    }
}
