//! End-to-end daemon tests over a real loopback socket: submit, poll,
//! fetch, metrics, and the HTTP edge cases the codec must survive.
//!
//! These run the worker pool in-process (this test binary cannot spawn
//! `nfi campaign exec`); the process-worker path is exercised by the
//! workspace-level `tests/serve_e2e.rs`, which has the real binary.

use nfi_serve::auth::AuthTokens;
use nfi_serve::client::{request_once, request_once_as, request_with_retry, Client};
use nfi_serve::queue::Priority;
use nfi_serve::worker::WorkerMode;
use nfi_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SOURCE: &str = "\
def double(x):
    return x * 2
def test_double():
    assert double(2) == 4
";

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nfi-daemon-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str) -> (nfi_serve::ServeHandle, PathBuf) {
    let dir = state_dir(tag);
    let config = ServeConfig {
        workers: 2,
        mode: WorkerMode::InProcess,
        ..ServeConfig::new(&dir)
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    (server.spawn().expect("spawn"), dir)
}

/// Polls a job until done/failed, returning its final status body.
fn await_job(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = request_once(addr, "GET", &format!("/v1/campaigns/{id}"), None).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let text = reply.text();
        if text.contains("\"status\":\"done\"") || text.contains("\"status\":\"failed\"") {
            return text;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    let text = reply.text();
    let id = text
        .split("\"id\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no id in {text}"));
    assert!(text.contains("\"status\":\"queued\""));
    id
}

#[test]
fn submitted_source_serves_a_document_identical_to_an_offline_run() {
    let (handle, dir) = start("parity");
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );
    let id = submit(addr, &body);
    let status = await_job(addr, id);
    assert!(status.contains("\"status\":\"done\""), "{status}");
    assert!(status.contains("\"error\":null"));
    let doc = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();
    assert_eq!(doc.status, 200);
    assert_eq!(doc.header("content-type"), Some("application/x-ndjson"));

    // Byte-identical to an offline orchestrated run on a fresh state
    // dir (the daemon's dir already has the segment; a fresh one proves
    // from-scratch equality, not just replay equality).
    let offline_dir = state_dir("parity-offline");
    let orch = nfi_core::Orchestrator::new(&offline_dir).unwrap();
    let offline = orch.run_program("demo", SOURCE).unwrap();
    assert_eq!(doc.text(), offline.run.encode());

    // A resubmission is warm: everything replays from the store.
    let id2 = submit(addr, &body);
    let status2 = await_job(addr, id2);
    assert!(status2.contains("\"executed\":0"), "{status2}");
    let doc2 = request_once(addr, "GET", &format!("/v1/campaigns/{id2}/document"), None).unwrap();
    assert_eq!(doc2.body, doc.body, "warm document must be byte-identical");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}

#[test]
fn daemon_seed_applies_to_submissions_that_name_none() {
    let dir = state_dir("seed");
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::InProcess,
        seed: 99,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    let escaped = nfi_sfi::jsontext::escape(SOURCE);
    let id = submit(
        addr,
        &format!("{{\"program\":\"demo\",\"source\":\"{escaped}\"}}"),
    );
    await_job(addr, id);
    let served = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();

    // Byte-identical to an offline run under the same --seed...
    let offline_dir = state_dir("seed-offline");
    let orch = nfi_core::Orchestrator {
        seed: 99,
        ..nfi_core::Orchestrator::new(&offline_dir).unwrap()
    };
    let offline = orch.run_program("demo", SOURCE).unwrap();
    assert_eq!(served.text(), offline.run.encode());

    // ...and an explicit per-submission seed still wins.
    let id2 = submit(
        addr,
        &format!("{{\"program\":\"demo\",\"source\":\"{escaped}\",\"seed\":7}}"),
    );
    await_job(addr, id2);
    let served7 =
        request_once(addr, "GET", &format!("/v1/campaigns/{id2}/document"), None).unwrap();
    let offline7_dir = state_dir("seed7-offline");
    let orch7 = nfi_core::Orchestrator {
        seed: 7,
        ..nfi_core::Orchestrator::new(&offline7_dir).unwrap()
    };
    let offline7 = orch7.run_program("demo", SOURCE).unwrap();
    assert_eq!(served7.text(), offline7.run.encode());

    handle.stop();
    for d in [&dir, &offline_dir, &offline7_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn planned_spec_documents_submit_as_is() {
    let (handle, dir) = start("spec");
    let addr = handle.addr;
    let spec = nfi_core::plan_campaign("demo", SOURCE, 7).unwrap();
    let id = submit(addr, &spec.encode());
    let status = await_job(addr, id);
    assert!(status.contains("\"status\":\"done\""), "{status}");

    // A tampered fingerprint is rejected at submit time with a
    // diagnostic, not accepted and failed later.
    let mut tampered = spec.clone();
    tampered.module_fp ^= 1;
    let bad = tampered.encode();
    let reply = request_once(addr, "POST", "/v1/campaigns", Some(bad.as_bytes())).unwrap();
    assert_eq!(reply.status, 400, "{}", reply.text());
    assert!(
        reply.text().contains("fingerprint mismatch"),
        "{}",
        reply.text()
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_submissions_are_400_with_a_diagnostic() {
    let (handle, dir) = start("badsubmit");
    let addr = handle.addr;
    for (body, needle) in [
        ("", "empty body"),
        ("not json", "submit object"),
        ("{\"source\":\"x = 1\"}", "missing field `program`"),
        (
            "{\"program\":\"no-such-program\"}",
            "unknown corpus program",
        ),
        (
            "{\"program\":\"demo\",\"source\":\"def broken(\"}",
            "cannot parse",
        ),
        (
            "{\"program\":\"demo\",\"source\":\"x = 1\",\"seed\":\"x\"}",
            "unsigned integer",
        ),
        ("{\"kind\":\"campaign_spec\"}", "campaign_spec document"),
    ] {
        let reply = request_once(addr, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
        assert_eq!(reply.status, 400, "body `{body}` → {}", reply.text());
        assert!(
            reply.text().contains(needle),
            "body `{body}` → `{}` missing `{needle}`",
            reply.text()
        );
    }
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_routes_ids_and_methods_map_to_404_405_409() {
    let (handle, dir) = start("routes");
    let addr = handle.addr;
    let case = |method: &str, path: &str| {
        let reply = request_once(addr, method, path, None).unwrap();
        (reply.status, reply.text())
    };
    assert_eq!(case("GET", "/nope").0, 404);
    assert_eq!(case("GET", "/v1/campaigns/999").0, 404);
    assert_eq!(case("GET", "/v1/campaigns/999/document").0, 404);
    assert_eq!(case("GET", "/v1/campaigns/abc").0, 400);
    assert_eq!(case("GET", "/v1/campaigns/1/nope").0, 404);
    let (status, text) = case("DELETE", "/v1/metrics");
    assert_eq!(status, 405, "{text}");
    let reply = request_once(addr, "GET", "/v1/campaigns", None).unwrap();
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("POST"));
    // A finished-later document is 409 while queued/running: submit and
    // race the scheduler — either it is still pending (409) or already
    // done (200); both are correct, anything else is a bug.
    let id = submit(
        addr,
        &format!(
            "{{\"program\":\"demo\",\"source\":\"{}\"}}",
            nfi_sfi::jsontext::escape(SOURCE)
        ),
    );
    let doc = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();
    assert!(
        doc.status == 409 || doc.status == 200,
        "{} {}",
        doc.status,
        doc.text()
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn keep_alive_pipelining_and_close_semantics() {
    let (handle, dir) = start("pipeline");
    let addr = handle.addr;
    let mut client = Client::connect(addr).unwrap();
    // Two pipelined requests on one connection, answered in order.
    client.write_request("GET", "/healthz", None).unwrap();
    client.write_request("GET", "/v1/metrics", None).unwrap();
    let first = client.read_reply().unwrap();
    let second = client.read_reply().unwrap();
    assert_eq!(first.status, 200);
    assert!(first.text().contains("\"status\":\"ok\""));
    assert_eq!(second.status, 200);
    assert!(second.text().contains("\"queue\""));
    assert_eq!(first.header("connection"), Some("keep-alive"));
    // A third request on the same connection still works.
    let third = client.send("GET", "/healthz", None).unwrap();
    assert_eq!(third.status, 200);
    // Connection: close is honored.
    let mut closing = Client::connect(addr).unwrap();
    closing
        .write_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let reply = closing.read_reply().unwrap();
    assert_eq!(reply.header("connection"), Some("close"));
    assert!(closing.read_reply().is_err(), "server closed the stream");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn codec_violations_get_protocol_error_statuses_over_the_wire() {
    let (handle, dir) = start("codec");
    let addr = handle.addr;

    // Truncated request line: bytes then EOF.
    let client = Client::connect(addr).unwrap();
    let mut client = client;
    client.write_raw(b"GET /v1/met").unwrap();
    client.shutdown_write();
    let reply = client.read_reply().unwrap();
    assert_eq!(reply.status, 400);
    assert!(reply.text().contains("truncated"), "{}", reply.text());

    // Unsupported method token.
    let reply = request_once(addr, "BREW", "/v1/metrics", None).unwrap();
    assert_eq!(reply.status, 405, "{}", reply.text());

    // Body over the daemon's cap → 413 with the limit named.
    let mut big = Client::connect(addr).unwrap();
    big.write_raw(
        format!(
            "POST /v1/campaigns HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            nfi_serve::http::DEFAULT_MAX_BODY + 1
        )
        .as_bytes(),
    )
    .unwrap();
    let reply = big.read_reply().unwrap();
    assert_eq!(reply.status, 413);
    assert!(reply.text().contains("exceeds"), "{}", reply.text());
    assert_eq!(reply.header("connection"), Some("close"));

    // Oversized header line → 413.
    let mut wide = Client::connect(addr).unwrap();
    wide.write_raw(
        format!(
            "GET /healthz HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "v".repeat(nfi_serve::http::MAX_LINE)
        )
        .as_bytes(),
    )
    .unwrap();
    assert_eq!(wide.read_reply().unwrap().status, 413);

    // Chunked transfer → 501.
    let mut chunked = Client::connect(addr).unwrap();
    chunked
        .write_raw(b"POST /v1/campaigns HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    assert_eq!(chunked.read_reply().unwrap().status, 501);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_track_queue_and_store_counters() {
    let (handle, dir) = start("metrics");
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );
    let id = submit(addr, &body);
    await_job(addr, id);
    let id2 = submit(addr, &body);
    await_job(addr, id2);
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("\"submitted\":2"), "{text}");
    assert!(text.contains("\"completed\":2"), "{text}");
    assert!(text.contains("\"failed\":0"), "{text}");
    assert!(text.contains("\"mutant_cache\""), "{text}");
    // The second job replayed everything: executed < units over the
    // two runs, and replayed > 0.
    assert!(!text.contains("\"replayed\":0,"), "{text}");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_lanes_serve_documents_byte_identical_to_offline_runs() {
    // Three lanes, a burst of distinct programs plus a duplicate
    // same-program pair: independent jobs run in parallel, the
    // duplicate pair serializes on the segment lock, and every served
    // document must still match a fresh offline orchestrated run.
    let dir = state_dir("lanes");
    let config = ServeConfig {
        workers: 1,
        lanes: 3,
        mode: WorkerMode::InProcess,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;

    let sources: Vec<(String, String)> = (0..3)
        .map(|i| {
            (
                format!("prog{i}"),
                format!("def f():\n    return {i}\ndef test_f():\n    assert f() == {i}\n"),
            )
        })
        .collect();
    let mut ids = Vec::new();
    for (name, source) in &sources {
        let body = format!(
            "{{\"program\":\"{name}\",\"source\":\"{}\"}}",
            nfi_sfi::jsontext::escape(source)
        );
        ids.push((name.clone(), source.clone(), submit(addr, &body)));
    }
    // The duplicate: prog0 again, racing the first submission.
    let (dup_name, dup_source) = sources[0].clone();
    let dup_body = format!(
        "{{\"program\":\"{dup_name}\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(&dup_source)
    );
    let dup_id = submit(addr, &dup_body);

    for (_, _, id) in &ids {
        let status = await_job(addr, *id);
        assert!(status.contains("\"status\":\"done\""), "{status}");
    }
    let dup_status = await_job(addr, dup_id);
    assert!(dup_status.contains("\"status\":\"done\""), "{dup_status}");

    // The same-program pair executed its units exactly once between
    // them — the segment lock made the loser replay the winner's save.
    let count = |text: &str, field: &str| -> usize {
        text.split(&format!("\"{field}\":"))
            .nth(1)
            .and_then(|t| t.split([',', '}']).next())
            .and_then(|t| t.parse().ok())
            .unwrap()
    };
    let first_status = {
        let reply =
            request_once(addr, "GET", &format!("/v1/campaigns/{}", ids[0].2), None).unwrap();
        reply.text()
    };
    let units = count(&first_status, "units");
    assert_eq!(
        count(&first_status, "executed") + count(&dup_status, "executed"),
        units,
        "duplicate submissions double-executed or corrupted the segment: {first_status} vs {dup_status}"
    );

    // Byte-parity of every document against a fresh offline run.
    for (name, source, id) in &ids {
        let doc = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();
        assert_eq!(doc.status, 200);
        let offline_dir = state_dir(&format!("lanes-offline-{name}"));
        let offline = nfi_core::Orchestrator::new(&offline_dir)
            .unwrap()
            .run_program(name, source)
            .unwrap();
        assert_eq!(
            doc.text(),
            offline.run.encode(),
            "lane-served {name} differs from offline"
        );
        let _ = std::fs::remove_dir_all(&offline_dir);
    }
    let dup_doc = request_once(
        addr,
        "GET",
        &format!("/v1/campaigns/{dup_id}/document"),
        None,
    )
    .unwrap();
    let first_doc = request_once(
        addr,
        "GET",
        &format!("/v1/campaigns/{}/document", ids[0].2),
        None,
    )
    .unwrap();
    assert_eq!(dup_doc.body, first_doc.body);

    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(metrics.text().contains("\"lanes\":3"), "{}", metrics.text());
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_recovers_finished_documents_and_requeues_pending_jobs() {
    let dir = state_dir("recovery");
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );

    // Round one: finish a job, remember its document, stop cleanly.
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::InProcess,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config.clone())
        .unwrap()
        .spawn()
        .unwrap();
    let id = submit(handle.addr, &body);
    await_job(handle.addr, id);
    let doc = request_once(
        handle.addr,
        "GET",
        &format!("/v1/campaigns/{id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(doc.status, 200);
    handle.stop();

    // Simulate a crash with work in flight: append an accepted-only
    // record for a second job straight into the journal, exactly as a
    // killed daemon would have left it.
    let spec2 = nfi_core::plan_campaign(
        "recovered",
        "def g():\n    return 5\ndef test_g():\n    assert g() == 5\n",
        nfi_pylite::MachineConfig::default().seed,
    )
    .unwrap();
    {
        use nfi_serve::journal::Journal;
        let (mut journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.max_id, id);
        journal
            .record_accepted(77, &spec2, "", nfi_serve::queue::Priority::Normal, None)
            .unwrap();
    }

    // Round two: the restarted daemon restores job 1 as done (same
    // counters, same bytes, straight from the store) and runs job 77
    // to completion.
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    let restored = request_once(addr, "GET", &format!("/v1/campaigns/{id}"), None).unwrap();
    assert_eq!(restored.status, 200, "{}", restored.text());
    assert!(
        restored.text().contains("\"status\":\"done\""),
        "finished job must be restored, not re-queued: {}",
        restored.text()
    );
    let redoc = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();
    assert_eq!(redoc.status, 200);
    assert_eq!(
        redoc.body, doc.body,
        "restored document differs from the pre-restart bytes"
    );

    let recovered = await_job(addr, 77);
    assert!(recovered.contains("\"status\":\"done\""), "{recovered}");
    let rec_doc = request_once(addr, "GET", "/v1/campaigns/77/document", None).unwrap();
    let offline_dir = state_dir("recovery-offline");
    let offline = nfi_core::Orchestrator::new(&offline_dir)
        .unwrap()
        .run_spec(&spec2)
        .unwrap();
    assert_eq!(rec_doc.text(), offline.run.encode());

    // Ids keep counting above everything the journal ever saw.
    let next = submit(addr, &body);
    assert!(next > 77, "id {next} reused journal space");
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.text().contains("\"recovered_finished\":1"),
        "{}",
        metrics.text()
    );
    assert!(
        metrics.text().contains("\"recovered_queued\":1"),
        "{}",
        metrics.text()
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}

#[test]
fn corrupt_trailing_journal_line_replans_without_changing_the_document() {
    let dir = state_dir("journal-corrupt");
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::InProcess,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config.clone())
        .unwrap()
        .spawn()
        .unwrap();
    let id = submit(handle.addr, &body);
    await_job(handle.addr, id);
    let doc = request_once(
        handle.addr,
        "GET",
        &format!("/v1/campaigns/{id}/document"),
        None,
    )
    .unwrap();
    handle.stop();

    // Truncate the journal mid-way through its trailing `finished`
    // record, as a crash mid-append would.
    let journal_path = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::write(&journal_path, &text[..text.len() - 30]).unwrap();

    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    // The job lost its finish record, so it re-queues, re-runs (warm
    // from the store: zero units execute), and serves the same bytes.
    let rerun = await_job(addr, id);
    assert!(rerun.contains("\"status\":\"done\""), "{rerun}");
    assert!(
        rerun.contains("\"executed\":0"),
        "re-planned job must replay from the store: {rerun}"
    );
    let redoc = request_once(addr, "GET", &format!("/v1/campaigns/{id}/document"), None).unwrap();
    assert_eq!(
        redoc.body, doc.body,
        "journal corruption changed a served document"
    );
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.text().contains("\"corrupt_lines\":1"),
        "{}",
        metrics.text()
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_daemon_on_the_same_state_dir_is_refused_at_bind() {
    let (handle, dir) = start("exclusive");
    let second = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            mode: WorkerMode::InProcess,
            ..ServeConfig::new(&dir)
        },
    );
    let err = second.err().expect("second daemon must be refused");
    assert!(
        err.contains("already being served"),
        "unexpected diagnostic: {err}"
    );
    handle.stop();
    // Once the first daemon is gone its lock is released.
    let third = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            mode: WorkerMode::InProcess,
            ..ServeConfig::new(&dir)
        },
    );
    assert!(third.is_ok(), "{:?}", third.err());
    drop(third);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Polls a job as a tenant until done/failed.
fn await_job_as(addr: SocketAddr, token: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply =
            request_once_as(addr, token, "GET", &format!("/v1/campaigns/{id}"), None).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let text = reply.text();
        if text.contains("\"status\":\"done\"") || text.contains("\"status\":\"failed\"") {
            return text;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn two_tenant_auth() -> AuthTokens {
    AuthTokens::parse("alice:secret-a\nbob:secret-b\n").unwrap()
}

#[test]
fn auth_gates_every_route_but_healthz_and_namespaces_tenants() {
    let dir = state_dir("auth");
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::InProcess,
        auth: Some(two_tenant_auth()),
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );

    // No token (and a wrong token) → 401 everywhere but the liveness
    // probe.
    let denied = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(denied.status, 401, "{}", denied.text());
    assert!(denied.text().contains("bearer token"), "{}", denied.text());
    let wrong = request_once_as(
        addr,
        "not-a-token",
        "POST",
        "/v1/campaigns",
        Some(body.as_bytes()),
    )
    .unwrap();
    assert_eq!(wrong.status, 401, "{}", wrong.text());
    let probe = request_once(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(probe.status, 200, "{}", probe.text());

    // Alice's submission is namespaced: the daemon plans and stores it
    // as `alice:demo`.
    let accepted = request_once_as(
        addr,
        "secret-a",
        "POST",
        "/v1/campaigns",
        Some(body.as_bytes()),
    )
    .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    assert!(
        accepted.text().contains("\"program\":\"alice:demo\""),
        "{}",
        accepted.text()
    );
    let id: u64 = accepted
        .text()
        .split("\"id\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|t| t.parse().ok())
        .unwrap();
    let status = await_job_as(addr, "secret-a", id);
    assert!(status.contains("\"status\":\"done\""), "{status}");

    // Bob cannot see Alice's job — 404, indistinguishable from a job
    // that never existed.
    let cross = request_once_as(
        addr,
        "secret-b",
        "GET",
        &format!("/v1/campaigns/{id}"),
        None,
    )
    .unwrap();
    assert_eq!(cross.status, 404, "{}", cross.text());
    let cross_doc = request_once_as(
        addr,
        "secret-b",
        "GET",
        &format!("/v1/campaigns/{id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(cross_doc.status, 404);

    // Alice's document is byte-identical to an offline run planned
    // under the same namespaced name (`campaign run --as alice:demo`).
    let doc = request_once_as(
        addr,
        "secret-a",
        "GET",
        &format!("/v1/campaigns/{id}/document"),
        None,
    )
    .unwrap();
    assert_eq!(doc.status, 200);
    let offline_dir = state_dir("auth-offline");
    let offline = nfi_core::Orchestrator::new(&offline_dir)
        .unwrap()
        .run_program("alice:demo", SOURCE)
        .unwrap();
    assert_eq!(doc.text(), offline.run.encode());

    // The rejections surfaced in the metrics.
    let metrics = handle.state().metrics_json();
    assert!(metrics.contains("\"unauthorized\":2"), "{metrics}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}

#[test]
fn rate_limited_clients_get_429_with_retry_after_and_recover() {
    let dir = state_dir("ratelimit");
    let config = ServeConfig {
        workers: 1,
        mode: WorkerMode::InProcess,
        rate_limit: 5,
        rate_burst: 3,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;

    // Burn the burst, then the next request sheds with Retry-After.
    let mut shed = None;
    for _ in 0..10 {
        let reply = request_once(addr, "GET", "/healthz", None).unwrap();
        if reply.status == 429 {
            shed = Some(reply);
            break;
        }
        assert_eq!(reply.status, 200);
    }
    let shed = shed.expect("a burst past the bucket must shed");
    let retry_after: u64 = shed
        .header("retry-after")
        .expect("429 must carry Retry-After")
        .parse()
        .unwrap();
    assert!(retry_after >= 1, "Retry-After must be at least 1s");
    assert_eq!(shed.header("connection"), Some("keep-alive"));

    // The cooperating client helper honors the advice and gets through.
    let recovered = request_with_retry(addr, None, "GET", "/healthz", None, 3).unwrap();
    assert_eq!(recovered.status, 200, "{}", recovered.text());

    let metrics = handle.state().metrics_json();
    assert!(metrics.contains("\"rate_limited\":"), "{metrics}");
    assert!(!metrics.contains("\"rate_limited\":0"), "{metrics}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_bound_and_tenant_quota_shed_submissions_before_the_journal() {
    // Bind without serving: no scheduler lane ever pops, so queue
    // depth and tenant accounting are exact — no races.
    let dir = state_dir("shed");
    let config = ServeConfig {
        mode: WorkerMode::InProcess,
        max_queue: 2,
        tenant_max_queued: 1,
        ..ServeConfig::new(&dir)
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let state = server.state();
    let spec = || nfi_core::plan_campaign("demo", SOURCE, 7).unwrap();

    // Tenant quota first: alice's second job sheds 429 while her first
    // is still queued.
    state
        .accept(spec(), "alice", Priority::Normal, None)
        .expect("first job is admitted");
    let quota = state
        .accept(spec(), "alice", Priority::Normal, None)
        .expect_err("tenant quota must shed");
    assert_eq!(
        quota.status,
        429,
        "{}",
        String::from_utf8_lossy(&quota.body)
    );
    assert!(
        quota
            .extra_headers
            .iter()
            .any(|(n, v)| *n == "Retry-After" && !v.is_empty()),
        "429 must advise Retry-After"
    );

    // Queue bound next: with 2 jobs queued (alice + bob), carol sheds
    // 503 regardless of her own quota headroom.
    state
        .accept(spec(), "bob", Priority::Normal, None)
        .expect("bob has quota and the queue has room");
    let full = state
        .accept(spec(), "carol", Priority::Normal, None)
        .expect_err("queue bound must shed");
    assert_eq!(full.status, 503, "{}", String::from_utf8_lossy(&full.body));

    let metrics = state.metrics_json();
    assert!(metrics.contains("\"queue_shed\":2"), "{metrics}");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_program_quota_sheds_new_program_names_only() {
    let dir = state_dir("progquota");
    let config = ServeConfig {
        mode: WorkerMode::InProcess,
        tenant_max_programs: 1,
        ..ServeConfig::new(&dir)
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let state = server.state();
    let spec = |name: &str| nfi_core::plan_campaign(name, SOURCE, 7).unwrap();
    state
        .accept(spec("alice:one"), "alice", Priority::Normal, None)
        .expect("first program is admitted");
    // A resubmission of the same program passes; a second distinct
    // program sheds; another tenant is unaffected.
    state
        .accept(spec("alice:one"), "alice", Priority::Normal, None)
        .expect("known program names stay admitted");
    let denied = state
        .accept(spec("alice:two"), "alice", Priority::Normal, None)
        .expect_err("a second distinct program must shed");
    assert_eq!(denied.status, 429);
    assert!(
        String::from_utf8_lossy(&denied.body).contains("distinct programs"),
        "{}",
        String::from_utf8_lossy(&denied.body)
    );
    state
        .accept(spec("bob:one"), "bob", Priority::Normal, None)
        .expect("quotas are per tenant");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_that_outwait_their_deadline_fail_with_an_expiry() {
    let dir = state_dir("deadline");
    let config = ServeConfig {
        workers: 1,
        lanes: 1,
        mode: WorkerMode::InProcess,
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;

    // Keep the single lane busy with a real corpus campaign, then queue
    // a 1ms-deadline job behind it: by the time the lane frees up the
    // budget is long gone.
    let blocker = submit(addr, "{\"program\":\"ecommerce\"}");
    let doomed = submit(
        addr,
        &format!(
            "{{\"program\":\"demo\",\"source\":\"{}\",\"deadline_ms\":1}}",
            nfi_sfi::jsontext::escape(SOURCE)
        ),
    );
    let doomed_status = await_job(addr, doomed);
    assert!(
        doomed_status.contains("\"status\":\"failed\""),
        "{doomed_status}"
    );
    assert!(
        doomed_status.contains("deadline expired"),
        "{doomed_status}"
    );
    let blocker_status = await_job(addr, blocker);
    assert!(
        blocker_status.contains("\"status\":\"done\""),
        "the blocking job itself must finish: {blocker_status}"
    );
    let metrics = request_once(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(
        metrics.text().contains("\"deadline_expiries\":1"),
        "{}",
        metrics.text()
    );

    // The expiry survives a restart as a journaled failure.
    handle.stop();
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            mode: WorkerMode::InProcess,
            ..ServeConfig::new(&dir)
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let restored =
        request_once(handle.addr, "GET", &format!("/v1/campaigns/{doomed}"), None).unwrap();
    assert!(
        restored.text().contains("deadline expired"),
        "{}",
        restored.text()
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_priority_is_400_and_priority_echoes_in_the_accept_reply() {
    let (handle, dir) = start("priority");
    let addr = handle.addr;
    let escaped = nfi_sfi::jsontext::escape(SOURCE);
    let bad = request_once(
        addr,
        "POST",
        "/v1/campaigns",
        Some(
            format!("{{\"program\":\"demo\",\"source\":\"{escaped}\",\"priority\":\"urgent\"}}")
                .as_bytes(),
        ),
    )
    .unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("unknown priority"), "{}", bad.text());
    let high = request_once(
        addr,
        "POST",
        "/v1/campaigns",
        Some(
            format!("{{\"program\":\"demo\",\"source\":\"{escaped}\",\"priority\":\"high\"}}")
                .as_bytes(),
        ),
    )
    .unwrap();
    assert_eq!(high.status, 202, "{}", high.text());
    assert!(
        high.text().contains("\"priority\":\"high\""),
        "{}",
        high.text()
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slowloris_mid_request_gets_408_and_idle_keepalive_closes_silently() {
    let dir = state_dir("slowloris");
    let config = ServeConfig {
        mode: WorkerMode::InProcess,
        request_timeout: Duration::from_millis(250),
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;

    // A client that starts a request and stalls gets 408.
    let mut slow = Client::connect(addr).unwrap();
    slow.write_raw(b"GET /healthz HTT").unwrap();
    let reply = slow
        .read_reply()
        .expect("the daemon answers before closing");
    assert_eq!(reply.status, 408, "{}", reply.text());

    // Dripping bytes slower than the deadline does not reset it.
    let mut drip = Client::connect(addr).unwrap();
    let started = Instant::now();
    for chunk in [b"GET ".as_slice(), b"/heal", b"thz H"] {
        let _ = drip.write_raw(chunk);
        std::thread::sleep(Duration::from_millis(120));
    }
    let dripped = drip
        .read_reply()
        .expect("drip-fed request must be answered");
    assert_eq!(dripped.status, 408, "{}", dripped.text());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the deadline bounded the drip"
    );

    // An idle keep-alive connection is closed with no bytes at all.
    let mut idle = Client::connect(addr).unwrap();
    let reply = idle.send("GET", "/healthz", None).unwrap();
    assert_eq!(reply.status, 200);
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        idle.read_reply().is_err(),
        "idle connection must be closed, not answered"
    );

    let metrics = handle.state().metrics_json();
    assert!(metrics.contains("\"timeouts\":2"), "{metrics}");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hardened_daemon_with_four_lanes_preserves_offline_byte_parity() {
    // The acceptance gauntlet in miniature: auth + rate limiting +
    // deadlines + four lanes all on, two tenants interleaved — every
    // served document still byte-identical to an offline run under the
    // namespaced program name.
    let dir = state_dir("hardened");
    let config = ServeConfig {
        workers: 2,
        lanes: 4,
        mode: WorkerMode::InProcess,
        auth: Some(two_tenant_auth()),
        rate_limit: 500,
        rate_burst: 500,
        max_queue: 64,
        tenant_max_queued: 32,
        default_deadline_ms: Some(60_000),
        ..ServeConfig::new(&dir)
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr;

    let sources: Vec<(String, String)> = (0..3)
        .map(|i| {
            (
                format!("prog{i}"),
                format!("def f():\n    return {i}\ndef test_f():\n    assert f() == {i}\n"),
            )
        })
        .collect();
    let mut submitted = Vec::new();
    for (i, (name, source)) in sources.iter().enumerate() {
        let token = if i % 2 == 0 { "secret-a" } else { "secret-b" };
        let tenant = if i % 2 == 0 { "alice" } else { "bob" };
        let body = format!(
            "{{\"program\":\"{name}\",\"source\":\"{}\"}}",
            nfi_sfi::jsontext::escape(source)
        );
        let reply =
            request_once_as(addr, token, "POST", "/v1/campaigns", Some(body.as_bytes())).unwrap();
        assert_eq!(reply.status, 202, "{}", reply.text());
        let id: u64 = reply
            .text()
            .split("\"id\":")
            .nth(1)
            .and_then(|t| t.split([',', '}']).next())
            .and_then(|t| t.parse().ok())
            .unwrap();
        submitted.push((id, token, format!("{tenant}:{name}"), source.clone()));
    }
    for (id, token, scoped, source) in &submitted {
        let status = await_job_as(addr, token, *id);
        assert!(status.contains("\"status\":\"done\""), "{status}");
        let doc = request_once_as(
            addr,
            token,
            "GET",
            &format!("/v1/campaigns/{id}/document"),
            None,
        )
        .unwrap();
        assert_eq!(doc.status, 200);
        let offline_dir = state_dir(&format!("hardened-offline-{id}"));
        let offline = nfi_core::Orchestrator::new(&offline_dir)
            .unwrap()
            .run_program(scoped, source)
            .unwrap();
        assert_eq!(
            doc.text(),
            offline.run.encode(),
            "hardened daemon diverged from offline for {scoped}"
        );
        let _ = std::fs::remove_dir_all(&offline_dir);
    }
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_accepted_before_shutdown_finish_before_stop_returns() {
    let (handle, dir) = start("drain");
    let addr = handle.addr;
    let body = format!(
        "{{\"program\":\"demo\",\"source\":\"{}\"}}",
        nfi_sfi::jsontext::escape(SOURCE)
    );
    let id = submit(addr, &body);
    let state = std::sync::Arc::clone(handle.state());
    handle.stop();
    let job = state.jobs.get(id).expect("job survives shutdown");
    assert_eq!(
        job.status.key(),
        "done",
        "accepted work drains before stop returns"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
