//! The campaign job table: every submission the daemon has accepted,
//! its lifecycle state, and its run counters.
//!
//! Jobs move `Queued → Running → Done | Failed`; the table is the one
//! shared structure the HTTP handlers (submit/status/document) and the
//! scheduler lanes all touch, so everything lives behind one mutex and
//! the lock is never held across planning or execution.
//!
//! The table holds **no documents**: a finished job keeps only its
//! counters and its planned spec (shared behind an `Arc`), and the
//! document endpoint rebuilds the bytes from the on-disk store segment
//! on demand. That keeps a long-running daemon's memory proportional
//! to its retained specs, makes restart recovery symmetric (a job
//! restored from the journal serves its document exactly like a job
//! finished five seconds ago), and cannot change a result — replayed
//! store lines are re-emitted verbatim.

use crate::queue::Priority;
use nfi_sfi::jsontext::escape;
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{Trace, TraceId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Most finished (done/failed) jobs retained. Beyond this the oldest
/// finished jobs are dropped wholesale — their status and document
/// answer 404 afterwards — which bounds a long-running daemon's
/// memory; queued and running jobs are never dropped. Re-submitting a
/// dropped campaign is cheap: its outcomes still replay from the
/// on-disk store. The journal compacts to the same cap, so the table
/// and the on-disk record agree on what a restart restores.
pub const RETAINED_FINISHED_JOBS: usize = 256;

/// Lifecycle state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a scheduler lane.
    Queued,
    /// A scheduler lane is executing it.
    Running,
    /// Finished; the document replays from the store.
    Done,
    /// Ended in an error (the diagnostic rides along).
    Failed(String),
}

impl JobStatus {
    /// Stable API key of this state.
    pub fn key(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// What a scheduler lane gets back when it claims a queued id.
#[derive(Debug)]
pub enum StartOutcome {
    /// The job flipped to `Running`; execute this spec.
    Run(Arc<CampaignSpec>),
    /// The job out-waited its deadline budget; it is now `Failed` and
    /// the caller records a deadline expiry (journal + metrics).
    Expired,
    /// Unknown id or not `Queued` (each id is handed out once).
    Gone,
}

/// One accepted campaign job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Daemon-unique id (also the URL path component); ids keep
    /// counting up across restarts.
    pub id: u64,
    /// Program name from the spec.
    pub program: String,
    /// Units in the planned campaign.
    pub units: usize,
    /// Units replayed from the store (0 until finished).
    pub replayed: usize,
    /// Units executed by workers (0 until finished).
    pub executed: usize,
    /// Store-corruption warnings the run tolerated.
    pub store_errors: usize,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The planned spec — retained for the job's whole lifetime (the
    /// scheduler executes it, the document endpoint replays it, journal
    /// compaction re-records it). Shared behind an `Arc` so snapshots
    /// never copy spec bytes under the table lock.
    pub spec: Arc<CampaignSpec>,
    /// Owning tenant (`""` when auth is disabled).
    pub tenant: String,
    /// Scheduling priority within the tenant's queue band.
    pub priority: Priority,
    /// Queue-residency budget in milliseconds from acceptance; a job
    /// still queued past it fails with a deadline expiry instead of
    /// running. `None` = no deadline. Restored jobs get a fresh budget
    /// from their restore time (wall-clock does not survive the
    /// journal).
    pub deadline_ms: Option<u64>,
    /// When the job entered (or re-entered, after a restart) the queue.
    pub accepted_at: Instant,
    /// Units that exhausted every worker retry and finished with a
    /// per-unit failure outcome (0 until finished).
    pub failed_units: usize,
    /// The job's span tree, filled as it moves accept → queue → lane →
    /// orchestrator phases. Jobs restored from the journal get a fresh
    /// empty trace — spans are in-memory observability, not durable
    /// state.
    pub trace: Arc<Trace>,
}

impl Job {
    /// Renders the status body of `GET /v1/campaigns/:id`.
    pub fn render_status(&self) -> String {
        let error = match &self.status {
            JobStatus::Failed(msg) => format!("\"{}\"", escape(msg)),
            _ => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"program\":\"{}\",\"status\":\"{}\",\"units\":{},\"replayed\":{},\"executed\":{},\"store_errors\":{},\"failed_units\":{},\"priority\":\"{}\",\"error\":{}}}",
            self.id,
            escape(&self.program),
            self.status.key(),
            self.units,
            self.replayed,
            self.executed,
            self.store_errors,
            self.failed_units,
            self.priority.key(),
            error,
        )
    }
}

/// The shared job table.
#[derive(Default)]
pub struct JobTable {
    inner: Mutex<Table>,
}

#[derive(Default)]
struct Table {
    jobs: HashMap<u64, Job>,
    next_id: u64,
}

impl Table {
    /// Drops the oldest finished jobs beyond
    /// [`RETAINED_FINISHED_JOBS`]; queued/running jobs are untouched.
    fn evict_finished(&mut self) {
        let mut finished: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Done | JobStatus::Failed(_)))
            .map(|j| j.id)
            .collect();
        if finished.len() <= RETAINED_FINISHED_JOBS {
            return;
        }
        finished.sort_unstable();
        for id in &finished[..finished.len() - RETAINED_FINISHED_JOBS] {
            self.jobs.remove(id);
        }
    }
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Accepts a planned spec as a new queued job, returning its id
    /// and the shared spec (the caller journals it).
    pub fn submit(&self, spec: CampaignSpec) -> (u64, Arc<CampaignSpec>) {
        self.submit_for(spec, "", Priority::Normal, None)
    }

    /// Accepts a planned spec as a new queued job under a tenant with
    /// a priority and an optional queue-deadline budget.
    pub fn submit_for(
        &self,
        spec: CampaignSpec,
        tenant: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> (u64, Arc<CampaignSpec>) {
        let spec = Arc::new(spec);
        // The submit handler pushes the request's trace before calling
        // in; adopting it here makes the access-log trace id, the job's
        // trace endpoint, and the worker children's NFI_TRACE one id.
        let trace = nfi_telemetry::trace::current_context()
            .map(|(trace, _)| trace)
            .unwrap_or_else(|| Trace::new(TraceId::mint()));
        let mut table = self.lock();
        table.next_id += 1;
        let id = table.next_id;
        table.jobs.insert(
            id,
            Job {
                id,
                program: spec.program.clone(),
                units: spec.units.len(),
                replayed: 0,
                executed: 0,
                store_errors: 0,
                status: JobStatus::Queued,
                spec: Arc::clone(&spec),
                tenant: tenant.to_string(),
                priority,
                deadline_ms,
                accepted_at: Instant::now(),
                failed_units: 0,
                trace,
            },
        );
        (id, spec)
    }

    /// Restores a job recovered from the journal under its original
    /// id: finished jobs come back with their counters, unfinished
    /// ones come back `Queued` (the caller re-enqueues them). New ids
    /// continue above every restored one.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &self,
        id: u64,
        spec: Arc<CampaignSpec>,
        status: JobStatus,
        replayed: usize,
        executed: usize,
        store_errors: usize,
        tenant: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
        failed_units: usize,
    ) {
        let mut table = self.lock();
        table.next_id = table.next_id.max(id);
        table.jobs.insert(
            id,
            Job {
                id,
                program: spec.program.clone(),
                units: spec.units.len(),
                replayed,
                executed,
                store_errors,
                status,
                spec,
                tenant: tenant.to_string(),
                priority,
                deadline_ms,
                accepted_at: Instant::now(),
                failed_units,
                trace: Trace::new(TraceId::mint()),
            },
        );
        table.evict_finished();
    }

    /// Raises the id floor (journal replay saw `max_id` somewhere,
    /// even if the full record was lost) so a new job can never reuse
    /// an id an old client still holds.
    pub fn reserve_ids(&self, max_id: u64) {
        let mut table = self.lock();
        table.next_id = table.next_id.max(max_id);
    }

    /// Snapshot of one job (handlers render from the copy, outside the
    /// lock). Cheap by construction: the spec is an `Arc` bump.
    pub fn get(&self, id: u64) -> Option<Job> {
        self.lock().jobs.get(&id).cloned()
    }

    /// The rendered status body of one job, built under the lock.
    pub fn status_json(&self, id: u64) -> Option<String> {
        self.lock().jobs.get(&id).map(Job::render_status)
    }

    /// Marks the job running and hands its spec to a scheduler lane.
    /// Returns `None` unless the job is currently `Queued` — the queue
    /// hands each id out once, and a restart re-queues only jobs that
    /// replayed as unfinished.
    pub fn start(&self, id: u64) -> Option<Arc<CampaignSpec>> {
        match self.start_or_expire(id) {
            StartOutcome::Run(spec) => Some(spec),
            _ => None,
        }
    }

    /// Like [`JobTable::start`] but distinguishes a job whose queue
    /// deadline already expired: the job flips straight to `Failed`
    /// and the lane counts a deadline expiry instead of running it.
    pub fn start_or_expire(&self, id: u64) -> StartOutcome {
        let mut table = self.lock();
        let Some(job) = table.jobs.get_mut(&id) else {
            return StartOutcome::Gone;
        };
        if job.status != JobStatus::Queued {
            return StartOutcome::Gone;
        }
        if let Some(budget) = job.deadline_ms {
            let waited = job.accepted_at.elapsed().as_millis() as u64;
            if waited > budget {
                job.status = JobStatus::Failed(format!(
                    "deadline expired: waited {waited}ms in queue against a {budget}ms budget"
                ));
                table.evict_finished();
                return StartOutcome::Expired;
            }
        }
        job.status = JobStatus::Running;
        StartOutcome::Run(Arc::clone(&job.spec))
    }

    /// Records a finished run. Units neither replayed nor executed
    /// exhausted every worker retry — they surface as `failed_units`.
    pub fn finish(&self, id: u64, replayed: usize, executed: usize, store_errors: usize) {
        let mut table = self.lock();
        if let Some(job) = table.jobs.get_mut(&id) {
            job.replayed = replayed;
            job.executed = executed;
            job.store_errors = store_errors;
            job.failed_units = job.units.saturating_sub(replayed + executed);
            job.status = JobStatus::Done;
        }
        table.evict_finished();
    }

    /// Queued or running jobs currently charged to a tenant (quota
    /// accounting).
    pub fn active_for_tenant(&self, tenant: &str) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|j| {
                j.tenant == tenant && matches!(j.status, JobStatus::Queued | JobStatus::Running)
            })
            .count()
    }

    /// Distinct program names a tenant has submitted jobs for
    /// (segment-quota accounting; the store is the durable source, the
    /// table covers jobs whose segments are not saved yet).
    pub fn programs_for_tenant(&self, tenant: &str) -> Vec<String> {
        let table = self.lock();
        let mut programs: Vec<String> = table
            .jobs
            .values()
            .filter(|j| j.tenant == tenant)
            .map(|j| j.program.clone())
            .collect();
        programs.sort_unstable();
        programs.dedup();
        programs
    }

    /// Records a failed run.
    pub fn fail(&self, id: u64, message: String) {
        let mut table = self.lock();
        if let Some(job) = table.jobs.get_mut(&id) {
            job.status = JobStatus::Failed(message);
        }
        table.evict_finished();
    }

    /// Snapshot of every job in id order (journal compaction).
    pub fn all_jobs(&self) -> Vec<Job> {
        let table = self.lock();
        let mut jobs: Vec<Job> = table.jobs.values().cloned().collect();
        jobs.sort_unstable_by_key(|j| j.id);
        jobs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Table> {
        // A poisoned table means a handler panicked mid-update; the
        // data is still a consistent map of jobs, so serving beats
        // taking the whole daemon down.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        let module =
            nfi_pylite::parse("def f():\n    return 1\ndef test_f():\n    assert f() == 1\n")
                .unwrap();
        let campaign = nfi_sfi::Campaign::full(&module);
        CampaignSpec::from_campaign("demo", &campaign, 7)
    }

    #[test]
    fn jobs_progress_queued_running_done() {
        let table = JobTable::new();
        let (id, _) = table.submit(spec());
        assert_eq!(table.get(id).unwrap().status, JobStatus::Queued);
        let taken = table.start(id).expect("spec available");
        assert_eq!(taken.program, "demo");
        assert_eq!(table.get(id).unwrap().status, JobStatus::Running);
        assert!(table.start(id).is_none(), "a job starts once");
        table.finish(id, 3, 2, 0);
        let job = table.get(id).unwrap();
        assert_eq!(job.status, JobStatus::Done);
        assert_eq!((job.replayed, job.executed), (3, 2));
        assert_eq!(job.spec.program, "demo", "the spec outlives the run");
        assert!(table.start(id).is_none(), "finished jobs don't restart");
    }

    #[test]
    fn ids_are_unique_and_unknown_ids_are_none() {
        let table = JobTable::new();
        let (a, _) = table.submit(spec());
        let (b, _) = table.submit(spec());
        assert_ne!(a, b);
        assert!(table.get(999).is_none());
        assert!(table.start(999).is_none());
    }

    #[test]
    fn restored_jobs_keep_their_ids_and_fence_new_ones() {
        let table = JobTable::new();
        let shared = Arc::new(spec());
        table.restore(
            7,
            Arc::clone(&shared),
            JobStatus::Done,
            4,
            0,
            0,
            "",
            Priority::Normal,
            None,
            0,
        );
        table.restore(
            9,
            Arc::clone(&shared),
            JobStatus::Queued,
            0,
            0,
            0,
            "",
            Priority::Normal,
            None,
            0,
        );
        table.reserve_ids(12);
        let done = table.get(7).unwrap();
        assert_eq!(done.status, JobStatus::Done);
        assert_eq!(done.replayed, 4);
        assert!(
            table.start(7).is_none(),
            "finished jobs are not restartable"
        );
        assert!(table.start(9).is_some(), "recovered queued jobs run");
        let (new_id, _) = table.submit(spec());
        assert_eq!(new_id, 13, "new ids continue above the journal's fence");
    }

    #[test]
    fn finished_jobs_beyond_the_retention_cap_are_dropped_oldest_first() {
        let table = JobTable::new();
        // One job stays running the whole time: never evicted.
        let (running, _) = table.submit(spec());
        table.start(running);
        let mut finished_ids = Vec::new();
        for _ in 0..RETAINED_FINISHED_JOBS + 5 {
            let (id, _) = table.submit(spec());
            table.start(id);
            table.finish(id, 0, 1, 0);
            finished_ids.push(id);
        }
        for dropped in &finished_ids[..5] {
            assert!(
                table.get(*dropped).is_none(),
                "job {dropped} should be gone"
            );
            assert!(table.status_json(*dropped).is_none());
        }
        for kept in &finished_ids[5..] {
            assert!(table.get(*kept).is_some(), "job {kept} should be retained");
        }
        assert_eq!(
            table.get(running).unwrap().status,
            JobStatus::Running,
            "running jobs are never evicted"
        );
    }

    #[test]
    fn status_renders_error_only_when_failed() {
        let table = JobTable::new();
        let (id, _) = table.submit(spec());
        assert!(table
            .get(id)
            .unwrap()
            .render_status()
            .contains("\"error\":null"));
        table.fail(id, "boom \"quoted\"".to_string());
        let rendered = table.get(id).unwrap().render_status();
        assert!(rendered.contains("\"status\":\"failed\""));
        assert!(rendered.contains("boom \\\"quoted\\\""));
    }

    #[test]
    fn an_expired_deadline_fails_the_job_instead_of_starting_it() {
        let table = JobTable::new();
        let (id, _) = table.submit_for(spec(), "alice", Priority::High, Some(0));
        std::thread::sleep(std::time::Duration::from_millis(5));
        match table.start_or_expire(id) {
            StartOutcome::Expired => {}
            other => panic!("expected Expired, got {other:?}"),
        }
        let job = table.get(id).unwrap();
        assert_eq!(job.status.key(), "failed");
        let rendered = job.render_status();
        assert!(rendered.contains("deadline expired"), "{rendered}");
        assert!(
            matches!(table.start_or_expire(id), StartOutcome::Gone),
            "an expired job is not restartable"
        );

        // Without a deadline the same flow just runs.
        let (ok, _) = table.submit_for(spec(), "alice", Priority::Normal, None);
        assert!(matches!(table.start_or_expire(ok), StartOutcome::Run(_)));
    }

    #[test]
    fn finish_derives_failed_units_from_uncovered_ones() {
        let table = JobTable::new();
        let (id, planned) = table.submit(spec());
        table.start(id);
        let units = planned.units.len();
        assert!(units >= 2, "test needs a multi-unit spec");
        table.finish(id, 1, units - 2, 0);
        let job = table.get(id).unwrap();
        assert_eq!(job.failed_units, 1);
        assert!(job.render_status().contains("\"failed_units\":1"));
    }

    #[test]
    fn tenant_accounting_counts_active_jobs_and_distinct_programs() {
        let table = JobTable::new();
        let (a, _) = table.submit_for(spec(), "alice", Priority::Normal, None);
        let (_b, _) = table.submit_for(spec(), "alice", Priority::Normal, None);
        let (_c, _) = table.submit_for(spec(), "bob", Priority::Normal, None);
        assert_eq!(table.active_for_tenant("alice"), 2);
        assert_eq!(table.active_for_tenant("bob"), 1);
        assert_eq!(table.active_for_tenant(""), 0);
        table.start(a);
        assert_eq!(table.active_for_tenant("alice"), 2, "running still counts");
        table.finish(a, 0, 0, 0);
        assert_eq!(table.active_for_tenant("alice"), 1, "finished does not");
        assert_eq!(
            table.programs_for_tenant("alice"),
            vec!["demo".to_string()],
            "duplicate program names dedupe"
        );
    }

    #[test]
    fn all_jobs_snapshots_in_id_order() {
        let table = JobTable::new();
        for _ in 0..3 {
            table.submit(spec());
        }
        let ids: Vec<u64> = table.all_jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
