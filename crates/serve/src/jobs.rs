//! The campaign job table: every submission the daemon has accepted,
//! its lifecycle state, and (once finished) its merged document.
//!
//! Jobs move `Queued → Running → Done | Failed`; the table is the one
//! shared structure the HTTP handlers (submit/status/document) and the
//! scheduler thread both touch, so everything lives behind one mutex
//! and the lock is never held across planning or execution.

use nfi_sfi::jsontext::escape;
use nfi_sfi::CampaignSpec;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Most finished (done/failed) jobs retained, documents included.
/// Beyond this the oldest finished jobs are dropped wholesale — their
/// status and document answer 404 afterwards — which bounds a
/// long-running daemon's memory; queued and running jobs are never
/// dropped. Re-submitting a dropped campaign is cheap: its outcomes
/// still replay from the on-disk store.
pub const RETAINED_FINISHED_JOBS: usize = 256;

/// Lifecycle state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for the scheduler.
    Queued,
    /// The scheduler is executing it.
    Running,
    /// Finished; the document is available.
    Done,
    /// Ended in an error (the diagnostic rides along).
    Failed(String),
}

impl JobStatus {
    /// Stable API key of this state.
    pub fn key(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One accepted campaign job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Daemon-unique id (also the URL path component).
    pub id: u64,
    /// Program name from the spec.
    pub program: String,
    /// Units in the planned campaign.
    pub units: usize,
    /// Units replayed from the store (0 until finished).
    pub replayed: usize,
    /// Units executed by workers (0 until finished).
    pub executed: usize,
    /// Store-corruption warnings the run tolerated.
    pub store_errors: usize,
    /// Lifecycle state.
    pub status: JobStatus,
    /// The merged outcome document, present once `Done` — byte-identical
    /// to an offline `nfi campaign run` over the same state dir. Shared
    /// behind an `Arc` so snapshots never copy document bytes under the
    /// table lock.
    pub document: Option<Arc<String>>,
    /// The planned spec, present until the scheduler takes it.
    spec: Option<CampaignSpec>,
}

impl Job {
    /// Renders the status body of `GET /v1/campaigns/:id`.
    pub fn render_status(&self) -> String {
        let error = match &self.status {
            JobStatus::Failed(msg) => format!("\"{}\"", escape(msg)),
            _ => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"program\":\"{}\",\"status\":\"{}\",\"units\":{},\"replayed\":{},\"executed\":{},\"store_errors\":{},\"error\":{}}}",
            self.id,
            escape(&self.program),
            self.status.key(),
            self.units,
            self.replayed,
            self.executed,
            self.store_errors,
            error,
        )
    }
}

/// The shared job table.
#[derive(Default)]
pub struct JobTable {
    inner: Mutex<Table>,
}

#[derive(Default)]
struct Table {
    jobs: HashMap<u64, Job>,
    next_id: u64,
}

impl Table {
    /// Drops the oldest finished jobs beyond
    /// [`RETAINED_FINISHED_JOBS`]; queued/running jobs are untouched.
    fn evict_finished(&mut self) {
        let mut finished: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| matches!(j.status, JobStatus::Done | JobStatus::Failed(_)))
            .map(|j| j.id)
            .collect();
        if finished.len() <= RETAINED_FINISHED_JOBS {
            return;
        }
        finished.sort_unstable();
        for id in &finished[..finished.len() - RETAINED_FINISHED_JOBS] {
            self.jobs.remove(id);
        }
    }
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Accepts a planned spec as a new queued job, returning its id.
    pub fn submit(&self, spec: CampaignSpec) -> u64 {
        let mut table = self.lock();
        table.next_id += 1;
        let id = table.next_id;
        table.jobs.insert(
            id,
            Job {
                id,
                program: spec.program.clone(),
                units: spec.units.len(),
                replayed: 0,
                executed: 0,
                store_errors: 0,
                status: JobStatus::Queued,
                document: None,
                spec: Some(spec),
            },
        );
        id
    }

    /// Snapshot of one job (handlers render from the copy, outside the
    /// lock). The copy is cheap by construction: the document is an
    /// `Arc` bump and the pending spec — the other potentially large
    /// payload — is omitted (only the scheduler's [`Self::start`] may
    /// take it).
    pub fn get(&self, id: u64) -> Option<Job> {
        self.lock().jobs.get(&id).map(|job| Job {
            program: job.program.clone(),
            status: job.status.clone(),
            document: job.document.clone(),
            spec: None,
            ..*job
        })
    }

    /// The rendered status body of one job — built under the lock, so
    /// a status poll never deep-copies a finished job's document.
    pub fn status_json(&self, id: u64) -> Option<String> {
        self.lock().jobs.get(&id).map(Job::render_status)
    }

    /// Marks the job running and hands its spec to the scheduler.
    /// Returns `None` if the id is unknown or the spec was already
    /// taken (a second scheduler would be a bug — the queue hands each
    /// id out once).
    pub fn start(&self, id: u64) -> Option<CampaignSpec> {
        let mut table = self.lock();
        let job = table.jobs.get_mut(&id)?;
        let spec = job.spec.take()?;
        job.status = JobStatus::Running;
        Some(spec)
    }

    /// Records a finished run.
    pub fn finish(
        &self,
        id: u64,
        replayed: usize,
        executed: usize,
        store_errors: usize,
        document: String,
    ) {
        let mut table = self.lock();
        if let Some(job) = table.jobs.get_mut(&id) {
            job.replayed = replayed;
            job.executed = executed;
            job.store_errors = store_errors;
            job.document = Some(Arc::new(document));
            job.status = JobStatus::Done;
        }
        table.evict_finished();
    }

    /// Records a failed run.
    pub fn fail(&self, id: u64, message: String) {
        let mut table = self.lock();
        if let Some(job) = table.jobs.get_mut(&id) {
            job.status = JobStatus::Failed(message);
        }
        table.evict_finished();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Table> {
        // A poisoned table means a handler panicked mid-update; the
        // data is still a consistent map of jobs, so serving beats
        // taking the whole daemon down.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        let module =
            nfi_pylite::parse("def f():\n    return 1\ndef test_f():\n    assert f() == 1\n")
                .unwrap();
        let campaign = nfi_sfi::Campaign::full(&module);
        CampaignSpec::from_campaign("demo", &campaign, 7)
    }

    #[test]
    fn jobs_progress_queued_running_done() {
        let table = JobTable::new();
        let id = table.submit(spec());
        assert_eq!(table.get(id).unwrap().status, JobStatus::Queued);
        let taken = table.start(id).expect("spec available");
        assert_eq!(taken.program, "demo");
        assert_eq!(table.get(id).unwrap().status, JobStatus::Running);
        assert!(table.start(id).is_none(), "spec is handed out once");
        table.finish(id, 3, 2, 0, "doc\n".to_string());
        let job = table.get(id).unwrap();
        assert_eq!(job.status, JobStatus::Done);
        assert_eq!((job.replayed, job.executed), (3, 2));
        assert_eq!(job.document.unwrap().as_str(), "doc\n");
    }

    #[test]
    fn ids_are_unique_and_unknown_ids_are_none() {
        let table = JobTable::new();
        let a = table.submit(spec());
        let b = table.submit(spec());
        assert_ne!(a, b);
        assert!(table.get(999).is_none());
        assert!(table.start(999).is_none());
    }

    #[test]
    fn finished_jobs_beyond_the_retention_cap_are_dropped_oldest_first() {
        let table = JobTable::new();
        // One job stays running the whole time: never evicted.
        let running = table.submit(spec());
        table.start(running);
        let mut finished_ids = Vec::new();
        for _ in 0..RETAINED_FINISHED_JOBS + 5 {
            let id = table.submit(spec());
            table.start(id);
            table.finish(id, 0, 1, 0, "doc\n".to_string());
            finished_ids.push(id);
        }
        for dropped in &finished_ids[..5] {
            assert!(
                table.get(*dropped).is_none(),
                "job {dropped} should be gone"
            );
            assert!(table.status_json(*dropped).is_none());
        }
        for kept in &finished_ids[5..] {
            assert!(table.get(*kept).is_some(), "job {kept} should be retained");
        }
        assert_eq!(
            table.get(running).unwrap().status,
            JobStatus::Running,
            "running jobs are never evicted"
        );
    }

    #[test]
    fn status_renders_error_only_when_failed() {
        let table = JobTable::new();
        let id = table.submit(spec());
        assert!(table
            .get(id)
            .unwrap()
            .render_status()
            .contains("\"error\":null"));
        table.fail(id, "boom \"quoted\"".to_string());
        let rendered = table.get(id).unwrap().render_status();
        assert!(rendered.contains("\"status\":\"failed\""));
        assert!(rendered.contains("boom \\\"quoted\\\""));
    }
}
