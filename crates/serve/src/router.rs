//! Routing and handlers of the campaign job API.
//!
//! ```text
//! POST /v1/campaigns               submit a job (source or CampaignSpec)
//! GET  /v1/campaigns/:id           job status + counters
//! GET  /v1/campaigns/:id/document  merged outcome JSONL (when done)
//! GET  /v1/metrics                 cache / store / queue / edge snapshot
//! GET  /healthz                    liveness probe
//! POST /v1/workers                 register a remote worker
//! POST /v1/workers/:id/heartbeat   keep a registration live
//! POST /v1/workers/:id/poll        pull the next assignment
//! POST /v1/workers/:id/result      stream an assignment's shard doc back
//! ```
//!
//! Handlers never block on campaign work: submit plans the campaign
//! (cheap — parse + operator enumeration), enqueues, and returns `202`;
//! execution happens on the scheduler thread, and the document endpoint
//! answers `409` until it lands.
//!
//! Every handler runs *as a tenant* (the edge pipeline in `lib.rs`
//! resolved the bearer token; `""` is the anonymous tenant of an open
//! daemon). Submitted program names are namespaced to
//! `tenant:program` before planning, which scopes store segments and
//! job visibility per tenant end to end; a job owned by another tenant
//! answers `404`, indistinguishable from a job that never existed.
//!
//! The `/v1/workers` surface is for `nfi worker` nodes, not tenants:
//! on an authenticated daemon it requires a token under the dedicated
//! `worker` tenant (provision `worker:<token>` lines in the token
//! file), and any other tenant gets the same `404` an unknown route
//! would — campaign tenants cannot probe or join the fleet.

use crate::fleet::{Completion, FleetError};
use crate::http::{Request, Response};
use crate::jobs::JobStatus;
use crate::queue::Priority;
use crate::ServerState;
use nfi_sfi::jsontext::{
    escape, get_hex_u64, get_opt_str, get_opt_u64, get_str, get_u64, parse_flat_object,
};
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{json::JsonBuf, prom, trace::SPAN_LINE_PREFIX, Span};

/// The reserved tenant name worker tokens must resolve to.
pub const WORKER_TENANT: &str = "worker";

/// Dispatches one request to its handler on behalf of `tenant`.
pub fn handle(state: &ServerState, req: &Request, tenant: &str) -> Response {
    let path = req.path.as_str();
    match path {
        "/healthz" => match req.method.as_str() {
            "GET" => Response::json(200, "{\"status\":\"ok\"}".to_string()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/v1/metrics" => match req.method.as_str() {
            "GET" => Response::json(200, state.metrics_json()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/metrics" => match req.method.as_str() {
            "GET" => Response::text(200, prom::CONTENT_TYPE, state.metrics_prometheus()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/v1/campaigns" => match req.method.as_str() {
            "POST" => submit(state, &req.body, tenant),
            _ => Response::method_not_allowed("POST", &req.method, path),
        },
        "/v1/workers" => match worker_access(state, req, tenant) {
            Some(refusal) => refusal,
            None => worker_register(state, &req.body),
        },
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/campaigns/") {
                return campaign_route(state, req, rest, tenant);
            }
            if let Some(rest) = path.strip_prefix("/v1/workers/") {
                return match worker_access(state, req, tenant) {
                    Some(refusal) => refusal,
                    None => worker_route(state, req, rest),
                };
            }
            Response::error(404, &format!("no route for {path}"))
        }
    }
}

/// Routes `/v1/campaigns/:id[/document]`.
fn campaign_route(state: &ServerState, req: &Request, rest: &str, tenant: &str) -> Response {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("campaign id `{id_text}` is not a number"));
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => status(state, id, tenant),
        ("GET", Some("document")) => document(state, id, tenant),
        ("GET", Some("trace")) => job_trace(state, id, tenant),
        (_, None) => Response::method_not_allowed("GET", &req.method, &req.path),
        (_, Some("document" | "trace")) => {
            Response::method_not_allowed("GET", &req.method, &req.path)
        }
        (_, Some(other)) => Response::error(
            404,
            &format!("no route for campaign sub-resource `{other}`"),
        ),
    }
}

/// `POST /v1/campaigns`: plan, journal, and enqueue. The `202` goes
/// out only after the journal holds the accepted record, so every
/// acknowledged job survives a daemon crash.
fn submit(state: &ServerState, body: &[u8], tenant: &str) -> Response {
    // The whole handler is the "accept" span of the job's trace (the
    // edge pushed the request trace before routing here): planning
    // opens its own "plan" span nested under this one, and the
    // accepted job adopts the same trace.
    let _span = Span::enter("accept");
    let (mut spec, priority, deadline_ms) = match parse_submission(body, state.config.seed) {
        Ok(parts) => parts,
        Err(msg) => return Response::error(400, &msg),
    };
    // Namespace the program per tenant *after* planning/validation —
    // the spec's module fingerprint covers only the source, so the
    // rename cannot invalidate it, and the scoped name then keys the
    // job table, the journal, and the store segment alike.
    spec.program = crate::auth::scoped_program(tenant, &spec.program);
    let program = spec.program.clone();
    let units = spec.units.len();
    match state.accept(spec, tenant, priority, deadline_ms) {
        Ok(id) => Response::json(
            202,
            format!(
                "{{\"id\":{id},\"program\":\"{}\",\"status\":\"queued\",\"units\":{units},\"priority\":\"{}\"}}",
                escape(&program),
                priority.key(),
            ),
        ),
        Err(response) => response,
    }
}

/// Decodes a submission body into a planned spec plus its scheduling
/// knobs. Two accepted shapes:
///
/// * a full `campaign_spec` JSONL document (what `nfi campaign plan`
///   emits) — used verbatim after validating that its source still
///   parses to the recorded fingerprint; a spec document has no place
///   for scheduling knobs, so it runs at normal priority under the
///   daemon's default deadline;
/// * a flat submit object `{"program": name}` (a corpus program) or
///   `{"program": name, "source": "..."}` with optional `"seed"`,
///   `"priority"` (`high`/`normal`/`low`), and `"deadline_ms"` fields —
///   planned here under `default_seed` (the daemon's `--seed`) when the
///   body names none, so serve and `nfi campaign run --seed` stay
///   byte-identical on the same state dir.
///
/// # Errors
///
/// Returns the parse diagnostic the 400 response carries.
fn parse_submission(
    body: &[u8],
    default_seed: u64,
) -> Result<(CampaignSpec, Priority, Option<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(
            "empty body: send {\"program\":...} or a campaign_spec JSONL document".to_string(),
        );
    }
    if trimmed
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"kind\":\"campaign_spec\""))
    {
        let spec =
            CampaignSpec::decode(trimmed).map_err(|e| format!("campaign_spec document: {e}"))?;
        let module = nfi_pylite::parse(&spec.source)
            .map_err(|e| format!("campaign_spec source does not parse: {e}"))?;
        if nfi_pylite::fingerprint(&module) != spec.module_fp {
            return Err(format!(
                "campaign_spec fingerprint mismatch for {}: the spec was planned from \
                 different source",
                spec.program
            ));
        }
        return Ok((spec, Priority::Normal, None));
    }
    let fields = parse_flat_object(trimmed).map_err(|e| {
        format!(
            "submit object: {e} (send {{\"program\":name[,\"source\":...,\"seed\":n,\
             \"priority\":\"high|normal|low\",\"deadline_ms\":n]}} \
             or a campaign_spec JSONL document)"
        )
    })?;
    let program = get_str(&fields, "program")?;
    let source = match get_opt_str(&fields, "source")? {
        Some(source) => source,
        None => nfi_corpus::by_name(&program)
            .ok_or_else(|| format!("unknown corpus program `{program}` and no \"source\" given"))?
            .source
            .to_string(),
    };
    let seed = get_opt_u64(&fields, "seed")?.unwrap_or(default_seed);
    let priority = match get_opt_str(&fields, "priority")? {
        None => Priority::Normal,
        Some(text) => Priority::parse(&text)
            .ok_or_else(|| format!("unknown priority `{text}` (use high, normal, or low)"))?,
    };
    let deadline_ms = get_opt_u64(&fields, "deadline_ms")?;
    let spec = nfi_core::plan_campaign(&program, &source, seed)?;
    Ok((spec, priority, deadline_ms))
}

/// `GET /v1/campaigns/:id`. Another tenant's job is a `404`, not a
/// `403` — job ids are global, and a distinguishable refusal would let
/// tenants probe each other's job volume.
fn status(state: &ServerState, id: u64, tenant: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) if job.tenant == tenant => Response::json(200, job.render_status()),
        _ => Response::error(404, &format!("no campaign job {id}")),
    }
}

/// `GET /v1/campaigns/:id/document`: the job table buffers no
/// documents — a finished job's bytes rebuild from the on-disk store
/// segment on every fetch. The fast path is a pure replay (read the
/// segment, re-emit the stored lines verbatim, merge); a segment that
/// can no longer replay fully — pruned by a later run of the same
/// program, corrupted on disk — degrades to a **read-only** full
/// re-execution through the canonical encoder. The fallback
/// deliberately skips the store's merge-and-persist path: a read
/// endpoint must not save (and thereby prune) segments, or two
/// finished jobs planned from different sources of one program would
/// evict each other's segments on alternating fetches. Either way the
/// response is byte-identical to the document the original run
/// produced, which is also what makes finished jobs restored from the
/// journal indistinguishable from jobs finished in this process.
fn document(state: &ServerState, id: u64, tenant: &str) -> Response {
    let Some(job) = state.jobs.get(id) else {
        return Response::error(404, &format!("no campaign job {id}"));
    };
    if job.tenant != tenant {
        return Response::error(404, &format!("no campaign job {id}"));
    }
    match &job.status {
        JobStatus::Done => match state.orch.replay_full(&job.spec) {
            Some(doc) => Response::jsonl(200, doc),
            None => match nfi_core::exec_spec(&job.spec, &state.orch.machine, state.orch.config) {
                Ok(run) => Response::jsonl(200, run.encode()),
                Err(e) => Response::error(
                    500,
                    &format!("cannot rebuild the document of job {id}: {e}"),
                ),
            },
        },
        JobStatus::Failed(msg) => Response::error(409, &format!("job {id} failed: {msg}")),
        other => Response::error(
            409,
            &format!(
                "job {id} is {}; poll /v1/campaigns/{id} until done",
                other.key()
            ),
        ),
    }
}

/// `GET /v1/campaigns/:id/trace`: the job's span tree (accept → queue
/// wait → plan → replay/execute with nested worker-child spans → merge
/// → persist) plus the run counters, rendered through the shared JSON
/// builder. Tenant-scoped like every other job resource: another
/// tenant's job is a `404`.
fn job_trace(state: &ServerState, id: u64, tenant: &str) -> Response {
    let Some(job) = state.jobs.get(id) else {
        return Response::error(404, &format!("no campaign job {id}"));
    };
    if job.tenant != tenant {
        return Response::error(404, &format!("no campaign job {id}"));
    }
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.field_u64("id", job.id)
        .field_str("program", &job.program)
        .field_str("status", job.status.key())
        .field_u64("units", job.units as u64)
        .field_u64("replayed", job.replayed as u64)
        .field_u64("executed", job.executed as u64);
    job.trace.render_into(&mut j);
    j.end_obj();
    Response::json(200, j.finish())
}

/// Gates the `/v1/workers` surface: POST-only, and on an authenticated
/// daemon only the [`WORKER_TENANT`] may use it. The refusal is the
/// generic route `404` — campaign tenants cannot tell the fleet
/// surface exists.
fn worker_access(state: &ServerState, req: &Request, tenant: &str) -> Option<Response> {
    if state.config.auth.is_some() && tenant != WORKER_TENANT {
        return Some(Response::error(404, &format!("no route for {}", req.path)));
    }
    if req.method != "POST" {
        return Some(Response::method_not_allowed("POST", &req.method, &req.path));
    }
    None
}

/// Routes `/v1/workers/:id/{heartbeat,poll,result}`.
fn worker_route(state: &ServerState, req: &Request, rest: &str) -> Response {
    let Some((id_text, action)) = rest.split_once('/') else {
        return Response::error(404, &format!("no route for {}", req.path));
    };
    let Ok(worker) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("worker id `{id_text}` is not a number"));
    };
    match action {
        "heartbeat" => worker_heartbeat(state, worker, &req.body),
        "poll" => worker_poll(state, worker, &req.body),
        "result" => worker_result(state, worker, &req.body),
        other => Response::error(404, &format!("no route for worker sub-resource `{other}`")),
    }
}

/// Maps a fleet refusal to its response: unknown ids are `404` (the
/// worker should re-register — a restarted daemon has an empty
/// registry), staleness and capability mismatches are `409`.
fn fleet_refusal(error: &FleetError) -> Response {
    match error {
        FleetError::Unknown => Response::error(404, &error.to_string()),
        FleetError::Stale | FleetError::Mismatch(_) => Response::error(409, &error.to_string()),
    }
}

/// `POST /v1/workers`: body
/// `{"kind":"worker_register","name":...,"fingerprint":"<16 hex>"}`.
/// The fingerprint must match the scheduler's machine configuration —
/// the precondition for remote shard documents merging byte-identically
/// — or the registration is refused with `409`.
fn worker_register(state: &ServerState, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not valid UTF-8");
    };
    let parsed = parse_flat_object(text.trim()).and_then(|fields| {
        let name = get_str(&fields, "name")?;
        let fingerprint = get_hex_u64(&fields, "fingerprint")?;
        Ok((name, fingerprint))
    });
    let (name, fingerprint) = match parsed {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &format!("worker_register body: {e}")),
    };
    match state.fleet.register(&name, fingerprint) {
        Ok(reg) => Response::json(
            200,
            format!(
                "{{\"worker\":{},\"generation\":{},\"heartbeat_ms\":{}}}",
                reg.worker, reg.generation, reg.heartbeat_ms
            ),
        ),
        Err(e) => fleet_refusal(&e),
    }
}

/// Decodes the `{"generation":n}` body every per-worker endpoint
/// carries.
fn parse_generation(body: &[u8]) -> Result<u64, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let fields = parse_flat_object(text.trim())?;
    get_u64(&fields, "generation")
}

/// `POST /v1/workers/:id/heartbeat`: body `{"generation":n}`.
fn worker_heartbeat(state: &ServerState, worker: u64, body: &[u8]) -> Response {
    let generation = match parse_generation(body) {
        Ok(g) => g,
        Err(e) => return Response::error(400, &format!("heartbeat body: {e}")),
    };
    match state.fleet.heartbeat(worker, generation) {
        Ok(()) => Response::json(200, "{\"status\":\"ok\"}".to_string()),
        Err(e) => fleet_refusal(&e),
    }
}

/// `POST /v1/workers/:id/poll`: body `{"generation":n}`. Answers
/// `{"assignment":null}` when the pool is empty, else the assignment
/// id, its encoded subset plan, and the job trace context the worker's
/// spans should re-anchor under.
fn worker_poll(state: &ServerState, worker: u64, body: &[u8]) -> Response {
    let generation = match parse_generation(body) {
        Ok(g) => g,
        Err(e) => return Response::error(400, &format!("poll body: {e}")),
    };
    match state.fleet.poll(worker, generation) {
        Ok(None) => Response::json(200, "{\"assignment\":null}".to_string()),
        Ok(Some(lease)) => Response::json(
            200,
            format!(
                "{{\"assignment\":{},\"job\":{},\"plan\":\"{}\",\"context\":{}}}",
                lease.assignment,
                lease.job,
                escape(&lease.plan),
                match &lease.context {
                    Some(ctx) => format!("\"{}\"", escape(ctx)),
                    None => "null".to_string(),
                },
            ),
        ),
        Err(e) => fleet_refusal(&e),
    }
}

/// `POST /v1/workers/:id/result`: a JSONL body — header line
/// `{"kind":"worker_result","assignment":n,"generation":n[,"error":...]}`,
/// then the worker's `NFI-SPAN ` trace lines, then the shard document.
/// Answers `{"status":"accepted"}` or, for a late duplicate after a
/// requeue, `{"status":"duplicate"}` (the first result's bytes win).
fn worker_result(state: &ServerState, worker: u64, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not valid UTF-8");
    };
    let mut lines = text.lines();
    let header = match lines.next().map(parse_flat_object) {
        Some(Ok(fields)) => fields,
        Some(Err(e)) => return Response::error(400, &format!("worker_result header: {e}")),
        None => return Response::error(400, "empty worker_result body"),
    };
    let parsed = (|| {
        let assignment = get_u64(&header, "assignment")?;
        let generation = get_u64(&header, "generation")?;
        let error = get_opt_str(&header, "error")?;
        Ok::<_, String>((assignment, generation, error))
    })();
    let (assignment, generation, error) = match parsed {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &format!("worker_result header: {e}")),
    };
    let outcome = match error {
        Some(message) => Err(message),
        None => {
            let mut spans = Vec::new();
            let mut doc = String::new();
            for line in lines {
                if line.starts_with(SPAN_LINE_PREFIX) {
                    spans.push(line.to_string());
                } else {
                    doc.push_str(line);
                    doc.push('\n');
                }
            }
            Ok((doc, spans))
        }
    };
    match state
        .fleet
        .complete(worker, generation, assignment, outcome)
    {
        Ok(Completion::Accepted) => Response::json(200, "{\"status\":\"accepted\"}".to_string()),
        Ok(Completion::Duplicate) => Response::json(200, "{\"status\":\"duplicate\"}".to_string()),
        Err(e) => fleet_refusal(&e),
    }
}
