//! Routing and handlers of the campaign job API.
//!
//! ```text
//! POST /v1/campaigns               submit a job (source or CampaignSpec)
//! GET  /v1/campaigns/:id           job status + counters
//! GET  /v1/campaigns/:id/document  merged outcome JSONL (when done)
//! GET  /v1/metrics                 cache / store / queue / edge snapshot
//! GET  /healthz                    liveness probe
//! ```
//!
//! Handlers never block on campaign work: submit plans the campaign
//! (cheap — parse + operator enumeration), enqueues, and returns `202`;
//! execution happens on the scheduler thread, and the document endpoint
//! answers `409` until it lands.
//!
//! Every handler runs *as a tenant* (the edge pipeline in `lib.rs`
//! resolved the bearer token; `""` is the anonymous tenant of an open
//! daemon). Submitted program names are namespaced to
//! `tenant:program` before planning, which scopes store segments and
//! job visibility per tenant end to end; a job owned by another tenant
//! answers `404`, indistinguishable from a job that never existed.

use crate::http::{Request, Response};
use crate::jobs::JobStatus;
use crate::queue::Priority;
use crate::ServerState;
use nfi_sfi::jsontext::{escape, get_opt_str, get_opt_u64, get_str, parse_flat_object};
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{json::JsonBuf, prom, Span};

/// Dispatches one request to its handler on behalf of `tenant`.
pub fn handle(state: &ServerState, req: &Request, tenant: &str) -> Response {
    let path = req.path.as_str();
    match path {
        "/healthz" => match req.method.as_str() {
            "GET" => Response::json(200, "{\"status\":\"ok\"}".to_string()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/v1/metrics" => match req.method.as_str() {
            "GET" => Response::json(200, state.metrics_json()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/metrics" => match req.method.as_str() {
            "GET" => Response::text(200, prom::CONTENT_TYPE, state.metrics_prometheus()),
            _ => Response::method_not_allowed("GET", &req.method, path),
        },
        "/v1/campaigns" => match req.method.as_str() {
            "POST" => submit(state, &req.body, tenant),
            _ => Response::method_not_allowed("POST", &req.method, path),
        },
        _ => match path.strip_prefix("/v1/campaigns/") {
            Some(rest) => campaign_route(state, req, rest, tenant),
            None => Response::error(404, &format!("no route for {path}")),
        },
    }
}

/// Routes `/v1/campaigns/:id[/document]`.
fn campaign_route(state: &ServerState, req: &Request, rest: &str, tenant: &str) -> Response {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("campaign id `{id_text}` is not a number"));
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => status(state, id, tenant),
        ("GET", Some("document")) => document(state, id, tenant),
        ("GET", Some("trace")) => job_trace(state, id, tenant),
        (_, None) => Response::method_not_allowed("GET", &req.method, &req.path),
        (_, Some("document" | "trace")) => {
            Response::method_not_allowed("GET", &req.method, &req.path)
        }
        (_, Some(other)) => Response::error(
            404,
            &format!("no route for campaign sub-resource `{other}`"),
        ),
    }
}

/// `POST /v1/campaigns`: plan, journal, and enqueue. The `202` goes
/// out only after the journal holds the accepted record, so every
/// acknowledged job survives a daemon crash.
fn submit(state: &ServerState, body: &[u8], tenant: &str) -> Response {
    // The whole handler is the "accept" span of the job's trace (the
    // edge pushed the request trace before routing here): planning
    // opens its own "plan" span nested under this one, and the
    // accepted job adopts the same trace.
    let _span = Span::enter("accept");
    let (mut spec, priority, deadline_ms) = match parse_submission(body, state.config.seed) {
        Ok(parts) => parts,
        Err(msg) => return Response::error(400, &msg),
    };
    // Namespace the program per tenant *after* planning/validation —
    // the spec's module fingerprint covers only the source, so the
    // rename cannot invalidate it, and the scoped name then keys the
    // job table, the journal, and the store segment alike.
    spec.program = crate::auth::scoped_program(tenant, &spec.program);
    let program = spec.program.clone();
    let units = spec.units.len();
    match state.accept(spec, tenant, priority, deadline_ms) {
        Ok(id) => Response::json(
            202,
            format!(
                "{{\"id\":{id},\"program\":\"{}\",\"status\":\"queued\",\"units\":{units},\"priority\":\"{}\"}}",
                escape(&program),
                priority.key(),
            ),
        ),
        Err(response) => response,
    }
}

/// Decodes a submission body into a planned spec plus its scheduling
/// knobs. Two accepted shapes:
///
/// * a full `campaign_spec` JSONL document (what `nfi campaign plan`
///   emits) — used verbatim after validating that its source still
///   parses to the recorded fingerprint; a spec document has no place
///   for scheduling knobs, so it runs at normal priority under the
///   daemon's default deadline;
/// * a flat submit object `{"program": name}` (a corpus program) or
///   `{"program": name, "source": "..."}` with optional `"seed"`,
///   `"priority"` (`high`/`normal`/`low`), and `"deadline_ms"` fields —
///   planned here under `default_seed` (the daemon's `--seed`) when the
///   body names none, so serve and `nfi campaign run --seed` stay
///   byte-identical on the same state dir.
///
/// # Errors
///
/// Returns the parse diagnostic the 400 response carries.
fn parse_submission(
    body: &[u8],
    default_seed: u64,
) -> Result<(CampaignSpec, Priority, Option<u64>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(
            "empty body: send {\"program\":...} or a campaign_spec JSONL document".to_string(),
        );
    }
    if trimmed
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"kind\":\"campaign_spec\""))
    {
        let spec =
            CampaignSpec::decode(trimmed).map_err(|e| format!("campaign_spec document: {e}"))?;
        let module = nfi_pylite::parse(&spec.source)
            .map_err(|e| format!("campaign_spec source does not parse: {e}"))?;
        if nfi_pylite::fingerprint(&module) != spec.module_fp {
            return Err(format!(
                "campaign_spec fingerprint mismatch for {}: the spec was planned from \
                 different source",
                spec.program
            ));
        }
        return Ok((spec, Priority::Normal, None));
    }
    let fields = parse_flat_object(trimmed).map_err(|e| {
        format!(
            "submit object: {e} (send {{\"program\":name[,\"source\":...,\"seed\":n,\
             \"priority\":\"high|normal|low\",\"deadline_ms\":n]}} \
             or a campaign_spec JSONL document)"
        )
    })?;
    let program = get_str(&fields, "program")?;
    let source = match get_opt_str(&fields, "source")? {
        Some(source) => source,
        None => nfi_corpus::by_name(&program)
            .ok_or_else(|| format!("unknown corpus program `{program}` and no \"source\" given"))?
            .source
            .to_string(),
    };
    let seed = get_opt_u64(&fields, "seed")?.unwrap_or(default_seed);
    let priority = match get_opt_str(&fields, "priority")? {
        None => Priority::Normal,
        Some(text) => Priority::parse(&text)
            .ok_or_else(|| format!("unknown priority `{text}` (use high, normal, or low)"))?,
    };
    let deadline_ms = get_opt_u64(&fields, "deadline_ms")?;
    let spec = nfi_core::plan_campaign(&program, &source, seed)?;
    Ok((spec, priority, deadline_ms))
}

/// `GET /v1/campaigns/:id`. Another tenant's job is a `404`, not a
/// `403` — job ids are global, and a distinguishable refusal would let
/// tenants probe each other's job volume.
fn status(state: &ServerState, id: u64, tenant: &str) -> Response {
    match state.jobs.get(id) {
        Some(job) if job.tenant == tenant => Response::json(200, job.render_status()),
        _ => Response::error(404, &format!("no campaign job {id}")),
    }
}

/// `GET /v1/campaigns/:id/document`: the job table buffers no
/// documents — a finished job's bytes rebuild from the on-disk store
/// segment on every fetch. The fast path is a pure replay (read the
/// segment, re-emit the stored lines verbatim, merge); a segment that
/// can no longer replay fully — pruned by a later run of the same
/// program, corrupted on disk — degrades to a **read-only** full
/// re-execution through the canonical encoder. The fallback
/// deliberately skips the store's merge-and-persist path: a read
/// endpoint must not save (and thereby prune) segments, or two
/// finished jobs planned from different sources of one program would
/// evict each other's segments on alternating fetches. Either way the
/// response is byte-identical to the document the original run
/// produced, which is also what makes finished jobs restored from the
/// journal indistinguishable from jobs finished in this process.
fn document(state: &ServerState, id: u64, tenant: &str) -> Response {
    let Some(job) = state.jobs.get(id) else {
        return Response::error(404, &format!("no campaign job {id}"));
    };
    if job.tenant != tenant {
        return Response::error(404, &format!("no campaign job {id}"));
    }
    match &job.status {
        JobStatus::Done => match state.orch.replay_full(&job.spec) {
            Some(doc) => Response::jsonl(200, doc),
            None => match nfi_core::exec_spec(&job.spec, &state.orch.machine, state.orch.config) {
                Ok(run) => Response::jsonl(200, run.encode()),
                Err(e) => Response::error(
                    500,
                    &format!("cannot rebuild the document of job {id}: {e}"),
                ),
            },
        },
        JobStatus::Failed(msg) => Response::error(409, &format!("job {id} failed: {msg}")),
        other => Response::error(
            409,
            &format!(
                "job {id} is {}; poll /v1/campaigns/{id} until done",
                other.key()
            ),
        ),
    }
}

/// `GET /v1/campaigns/:id/trace`: the job's span tree (accept → queue
/// wait → plan → replay/execute with nested worker-child spans → merge
/// → persist) plus the run counters, rendered through the shared JSON
/// builder. Tenant-scoped like every other job resource: another
/// tenant's job is a `404`.
fn job_trace(state: &ServerState, id: u64, tenant: &str) -> Response {
    let Some(job) = state.jobs.get(id) else {
        return Response::error(404, &format!("no campaign job {id}"));
    };
    if job.tenant != tenant {
        return Response::error(404, &format!("no campaign job {id}"));
    }
    let mut j = JsonBuf::new();
    j.begin_obj();
    j.field_u64("id", job.id)
        .field_str("program", &job.program)
        .field_str("status", job.status.key())
        .field_u64("units", job.units as u64)
        .field_u64("replayed", job.replayed as u64)
        .field_u64("executed", job.executed as u64);
    job.trace.render_into(&mut j);
    j.end_obj();
    Response::json(200, j.finish())
}
