//! A hand-rolled HTTP/1.1 request/response codec over blocking I/O.
//!
//! The offline dependency set has no tokio/hyper, and the campaign API
//! needs none of either: requests are small JSON/JSONL bodies, responses
//! are documents the service already has in memory. This codec keeps
//! the protocol surface deliberately tiny and *bounded*:
//!
//! * request line and each header line ≤ [`MAX_LINE`] bytes, at most
//!   [`MAX_HEADERS`] headers — anything larger is answered `413` before
//!   the server buffers unbounded attacker-controlled data;
//! * bodies require `Content-Length` (chunked transfer is answered
//!   `501`) and are capped by the caller-chosen limit, again `413`;
//! * malformed syntax — a truncated request line, a header without a
//!   colon, a body shorter than its declared length — is answered `400`
//!   with a diagnostic naming what was wrong.
//!
//! Keep-alive follows HTTP/1.1 defaults: connections persist (and may
//! pipeline requests) until the client sends `Connection: close`, the
//! stream reaches EOF, or an error response closes it.

use std::io::{BufRead, Read, Write};

/// Longest accepted request line or single header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Default body cap (campaign specs for the corpus are ~100 KiB).
pub const DEFAULT_MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method token (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively
    /// against the lowercased stored names).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Each protocol-level variant maps to
/// the response the server must send before closing the connection;
/// [`HttpError::Closed`] and [`HttpError::Io`] have no response — the
/// peer is gone.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first byte of a request (keep-alive end).
    Closed,
    /// Malformed syntax — answered `400` with the diagnostic.
    BadRequest(String),
    /// A bound was exceeded — answered `413` with the diagnostic.
    TooLarge(String),
    /// A protocol feature this codec does not speak — answered `501`.
    NotImplemented(String),
    /// The client fed bytes slower than the per-request read deadline
    /// allows (slowloris) — answered `408`.
    TimedOut(String),
    /// Transport failure mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The error response to send, when the peer is still there to
    /// receive one. All error responses close the connection: after a
    /// framing error the stream position is unknowable.
    pub fn response(&self) -> Option<Response> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::BadRequest(msg) => Some(Response::error(400, msg)),
            HttpError::TooLarge(msg) => Some(Response::error(413, msg)),
            HttpError::NotImplemented(msg) => Some(Response::error(501, msg)),
            HttpError::TimedOut(msg) => Some(Response::error(408, msg)),
        }
    }
}

/// Replaces anything that could carry a credential in an echoed
/// header line with a placeholder. Diagnostics (and the access log)
/// must never leak a bearer token into stderr or an error body: a
/// malformed `Authorization` header is still an `Authorization`
/// header, so the whole value is dropped, not just a recognized
/// `Bearer` prefix.
pub fn redact_auth(line: &str) -> String {
    let lowered = line.trim_start().to_ascii_lowercase();
    if lowered.starts_with("authorization") || lowered.starts_with("proxy-authorization") {
        let name_len = line.len() - line.trim_start().len()
            + if lowered.starts_with("proxy-authorization") {
                "proxy-authorization".len()
            } else {
                "authorization".len()
            };
        return format!("{}[REDACTED]", &line[..name_len.min(line.len())]);
    }
    line.to_string()
}

/// Reads one line (ending `\n`, optional `\r`) of at most `max` bytes.
/// Returns `None` on immediate EOF.
fn read_line(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = reader.take(max as u64 + 1);
    limited.read_until(b'\n', &mut buf).map_err(HttpError::Io)?;
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() > max {
        return Err(HttpError::TooLarge(format!(
            "line exceeds the {max}-byte limit"
        )));
    }
    if buf.last() != Some(&b'\n') {
        return Err(HttpError::BadRequest(
            "truncated line: connection ended before the newline".to_string(),
        ));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("line is not valid UTF-8".to_string()))
}

/// Reads one request from the connection. `max_body` bounds the body;
/// the line/header bounds are the module constants.
///
/// # Errors
///
/// [`HttpError::Closed`] on clean EOF before a request starts; the
/// protocol variants (each carrying its diagnostic) otherwise.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    // Request line. A lone blank line between pipelined requests is
    // tolerated (robustness; some clients send a stray CRLF).
    let line = loop {
        match read_line(reader, MAX_LINE)? {
            None => return Err(HttpError::Closed),
            Some(l) if l.is_empty() => continue,
            Some(l) => break l,
        }
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{line}` (expected `METHOD TARGET HTTP/1.x`)"
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method token `{method}`"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{target}` is not an absolute path"
        )));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    // Headers.
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, MAX_LINE)? {
            None => {
                return Err(HttpError::BadRequest(
                    "connection ended inside the header block".to_string(),
                ))
            }
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            HttpError::BadRequest(format!("header line `{}` has no colon", redact_auth(&line)))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::NotImplemented(
            "chunked transfer encoding is not supported; send Content-Length".to_string(),
        ));
    }

    // Body.
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("Content-Length `{v}` is not a number")))?,
    };
    if length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut request = request;
    if length > 0 {
        request.body = vec![0u8; length];
        reader.read_exact(&mut request.body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::BadRequest(format!(
                    "body ended before the declared Content-Length of {length} bytes"
                ))
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    Ok(request)
}

/// One response to write.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Allow` on 405).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether the server must close the connection after this
    /// response regardless of what the client asked.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response with an explicit content type (the
    /// Prometheus exposition endpoint).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A JSONL (newline-delimited JSON) document response.
    pub fn jsonl(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/x-ndjson",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// An error response: JSON `{"error": ...}` carrying the
    /// diagnostic, connection-closing for request-framing statuses.
    pub fn error(status: u16, message: &str) -> Response {
        let close = matches!(status, 400 | 408 | 413 | 431 | 501 | 503);
        Response {
            close,
            ..Response::json(
                status,
                format!("{{\"error\":\"{}\"}}", nfi_sfi::jsontext::escape(message)),
            )
        }
    }

    /// A shedding response (`429`/`503`) with a `Retry-After` header
    /// telling well-behaved clients when to come back.
    pub fn shed(status: u16, message: &str, retry_after_secs: u64) -> Response {
        let mut resp = Response::error(status, message);
        resp.extra_headers
            .push(("Retry-After", retry_after_secs.max(1).to_string()));
        resp
    }

    /// `405 Method Not Allowed` naming the methods the path supports.
    pub fn method_not_allowed(allow: &'static str, method: &str, path: &str) -> Response {
        let mut resp = Response::error(
            405,
            &format!("method {method} is not supported on {path} (allow: {allow})"),
        );
        resp.extra_headers.push(("Allow", allow.to_string()));
        resp
    }

    /// The standard reason phrase of this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            401 => "Unauthorized",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response. `keep_alive` reflects what the
    /// *connection* decided (client wishes and error policy combined);
    /// the written `Connection` header is what actually happens.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(if keep_alive && !self.close {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), DEFAULT_MAX_BODY)
    }

    #[test]
    fn parses_a_get_with_headers_and_query() {
        let req =
            parse(b"GET /v1/metrics?verbose=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_bare_lf_lines() {
        let req = parse(b"POST /v1/campaigns HTTP/1.1\nContent-Length: 5\n\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_reads_as_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn truncated_request_line_is_bad_request() {
        let err = parse(b"GET /v1/met").unwrap_err();
        match err {
            HttpError::BadRequest(msg) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_diagnosed() {
        for (raw, needle) in [
            (&b"GET\r\n\r\n"[..], "malformed request line"),
            (b"GET /x HTTP/1.1 extra\r\n\r\n", "malformed request line"),
            (b"get /x HTTP/1.1\r\n\r\n", "malformed method token"),
            (b"GET x HTTP/1.1\r\n\r\n", "not an absolute path"),
            (b"GET /x SPDY/3\r\n\r\n", "unsupported protocol version"),
            (b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", "no colon"),
            (
                b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
                "not a number",
            ),
        ] {
            match parse(raw) {
                Err(HttpError::BadRequest(msg)) => {
                    assert!(msg.contains(needle), "`{msg}` missing `{needle}`")
                }
                other => panic!("{needle}: expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_authorization_headers_redact_their_value() {
        let err =
            parse(b"GET /x HTTP/1.1\r\nAuthorization Bearer sekrit-token-123\r\n\r\n").unwrap_err();
        match err {
            HttpError::BadRequest(msg) => {
                assert!(!msg.contains("sekrit"), "token leaked: {msg}");
                assert!(msg.contains("[REDACTED]"), "{msg}");
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert_eq!(
            redact_auth("proxy-authorization basic abc"),
            "proxy-authorization[REDACTED]"
        );
        assert_eq!(redact_auth("x-other no colon"), "x-other no colon");
    }

    #[test]
    fn oversized_request_line_is_too_large() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE));
        match parse(raw.as_bytes()) {
            Err(HttpError::TooLarge(msg)) => assert!(msg.contains("limit"), "{msg}"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn too_many_headers_is_too_large() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(raw.as_bytes()), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn declared_body_over_the_cap_is_too_large_before_reading_it() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..]), 10).unwrap_err();
        match err {
            HttpError::TooLarge(msg) => assert!(msg.contains("99 bytes"), "{msg}"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn body_shorter_than_declared_is_bad_request() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        match err {
            HttpError::BadRequest(msg) => assert!(msg.contains("Content-Length"), "{msg}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn chunked_transfer_is_not_implemented() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::NotImplemented(_)));
        assert_eq!(err.response().unwrap().status, 501);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let a = read_request(&mut reader, DEFAULT_MAX_BODY).unwrap();
        let b = read_request(&mut reader, DEFAULT_MAX_BODY).unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(matches!(
            read_request(&mut reader, DEFAULT_MAX_BODY),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn error_responses_map_statuses_and_close() {
        let bad = HttpError::BadRequest("x".into()).response().unwrap();
        assert_eq!((bad.status, bad.close), (400, true));
        let large = HttpError::TooLarge("x".into()).response().unwrap();
        assert_eq!((large.status, large.close), (413, true));
        assert!(HttpError::Closed.response().is_none());
        assert!(HttpError::Io(std::io::Error::other("x"))
            .response()
            .is_none());
    }

    #[test]
    fn rejection_statuses_carry_their_reason_phrases() {
        let unauthorized = Response::error(401, "missing bearer token");
        assert_eq!(unauthorized.reason(), "Unauthorized");
        assert!(!unauthorized.close, "401 keeps the connection");

        let mut out = Vec::new();
        Response::shed(429, "rate limit exceeded", 2)
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));

        let shed = Response::shed(503, "queue full", 0);
        assert_eq!(shed.extra_headers[0].1, "1", "Retry-After is at least 1s");
        assert!(shed.close, "503 closes the connection");
    }

    #[test]
    fn request_timeouts_respond_408_and_close() {
        let resp = HttpError::TimedOut("x".into()).response().unwrap();
        assert_eq!((resp.status, resp.close), (408, true));
        assert_eq!(resp.reason(), "Request Timeout");
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::method_not_allowed("GET", "PATCH", "/v1/metrics")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET\r\n"));
        assert!(
            text.contains("Connection: keep-alive\r\n"),
            "405 keeps the connection"
        );
    }
}
