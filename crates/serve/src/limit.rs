//! Per-client admission control: a keyed token-bucket rate limiter.
//!
//! Every client (keyed by peer IP) owns a bucket of `burst` tokens
//! refilled continuously at `rate` tokens per second. A request takes
//! one token; an empty bucket sheds the request with the number of
//! whole seconds until a token will be available, which the HTTP edge
//! turns into `429` + `Retry-After`. The clock is injected as a float
//! second count so tests drive time explicitly; the daemon feeds it
//! from a monotonic [`std::time::Instant`] epoch.
//!
//! The bucket map is bounded: past [`MAX_TRACKED_CLIENTS`] the stalest
//! bucket (the one touched longest ago) is evicted, so an address-
//! rotating client set cannot grow daemon memory without bound. An
//! evicted client starts fresh with a full bucket — eviction can only
//! under-limit, never lock out a legitimate client.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Most client buckets tracked at once.
pub const MAX_TRACKED_CLIENTS: usize = 4096;

/// What the limiter decided about one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under the limit; a token was taken.
    Allowed,
    /// Shed: no token until roughly this many seconds pass (≥ 1).
    Shed {
        /// Whole seconds a well-behaved client should wait.
        retry_after_secs: u64,
    },
}

struct Bucket {
    tokens: f64,
    /// Injected-clock timestamp of the last refill.
    updated: f64,
}

/// A keyed token-bucket limiter.
pub struct RateLimiter {
    /// Tokens refilled per second.
    rate: f64,
    /// Bucket capacity (also the initial fill).
    burst: f64,
    epoch: Instant,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// A limiter refilling `rate` tokens/second into buckets of
    /// `burst` capacity. Both are clamped to at least 1.
    pub fn new(rate: u64, burst: u64) -> RateLimiter {
        RateLimiter {
            rate: rate.max(1) as f64,
            burst: burst.max(1) as f64,
            epoch: Instant::now(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits or sheds one request from `peer` at the current time.
    pub fn allow(&self, peer: IpAddr) -> Admission {
        self.allow_at(peer, self.epoch.elapsed().as_secs_f64())
    }

    /// Admits or sheds one request from `peer` at injected time `now`
    /// (seconds since an arbitrary epoch; must be monotone per test).
    pub fn allow_at(&self, peer: IpAddr, now: f64) -> Admission {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if !buckets.contains_key(&peer) && buckets.len() >= MAX_TRACKED_CLIENTS {
            let stalest = buckets
                .iter()
                .min_by(|a, b| a.1.updated.total_cmp(&b.1.updated))
                .map(|(ip, _)| *ip);
            if let Some(ip) = stalest {
                buckets.remove(&ip);
            }
        }
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            updated: now,
        });
        // Refill is monotone: a non-advancing clock adds nothing.
        let elapsed = (now - bucket.updated).max(0.0);
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.updated = bucket.updated.max(now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Allowed
        } else {
            let wait = (1.0 - bucket.tokens) / self.rate;
            Admission::Shed {
                retry_after_secs: (wait.ceil() as u64).max(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_admits_exactly_burst_then_sheds() {
        let limiter = RateLimiter::new(1, 3);
        for n in 0..3 {
            assert_eq!(
                limiter.allow_at(ip(1), 0.0),
                Admission::Allowed,
                "request {n} within the burst"
            );
        }
        match limiter.allow_at(ip(1), 0.0) {
            Admission::Shed { retry_after_secs } => assert_eq!(retry_after_secs, 1),
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn refill_is_continuous_and_capped_at_burst() {
        let limiter = RateLimiter::new(2, 4);
        for _ in 0..4 {
            assert_eq!(limiter.allow_at(ip(1), 0.0), Admission::Allowed);
        }
        assert!(matches!(
            limiter.allow_at(ip(1), 0.0),
            Admission::Shed { .. }
        ));
        // Half a second at 2 tokens/s refills one token.
        assert_eq!(limiter.allow_at(ip(1), 0.5), Admission::Allowed);
        assert!(matches!(
            limiter.allow_at(ip(1), 0.5),
            Admission::Shed { .. }
        ));
        // A long idle period refills to burst, not beyond.
        for n in 0..4 {
            assert_eq!(
                limiter.allow_at(ip(1), 100.0),
                Admission::Allowed,
                "token {n} after refill-to-burst"
            );
        }
        assert!(matches!(
            limiter.allow_at(ip(1), 100.0),
            Admission::Shed { .. }
        ));
    }

    #[test]
    fn refill_is_monotone_under_a_stuck_or_regressing_clock() {
        let limiter = RateLimiter::new(1, 1);
        assert_eq!(limiter.allow_at(ip(1), 10.0), Admission::Allowed);
        // A clock that regresses must not mint tokens.
        assert!(matches!(
            limiter.allow_at(ip(1), 5.0),
            Admission::Shed { .. }
        ));
        assert!(matches!(
            limiter.allow_at(ip(1), 10.0),
            Admission::Shed { .. }
        ));
        // ...and the bucket still refills from its high-water mark.
        assert_eq!(limiter.allow_at(ip(1), 11.5), Admission::Allowed);
    }

    #[test]
    fn retry_after_reflects_the_refill_rate() {
        let limiter = RateLimiter::new(1, 1);
        assert_eq!(limiter.allow_at(ip(1), 0.0), Admission::Allowed);
        match limiter.allow_at(ip(1), 0.0) {
            Admission::Shed { retry_after_secs } => assert_eq!(retry_after_secs, 1),
            other => panic!("{other:?}"),
        }
        // A slow limiter (1 token / 10 requests... i.e. rate 1 with an
        // empty bucket drained further) never reports 0 seconds.
        let slow = RateLimiter::new(1, 2);
        slow.allow_at(ip(2), 0.0);
        slow.allow_at(ip(2), 0.0);
        match slow.allow_at(ip(2), 0.2) {
            Admission::Shed { retry_after_secs } => assert!(retry_after_secs >= 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clients_have_independent_buckets() {
        let limiter = RateLimiter::new(1, 1);
        assert_eq!(limiter.allow_at(ip(1), 0.0), Admission::Allowed);
        assert!(matches!(
            limiter.allow_at(ip(1), 0.0),
            Admission::Shed { .. }
        ));
        assert_eq!(
            limiter.allow_at(ip(2), 0.0),
            Admission::Allowed,
            "a second client is not affected by the first's empty bucket"
        );
    }

    #[test]
    fn tracked_clients_are_bounded_by_stalest_eviction() {
        let limiter = RateLimiter::new(1, 1);
        for n in 0..MAX_TRACKED_CLIENTS {
            let peer = IpAddr::V4(Ipv4Addr::from((n as u32).to_be_bytes()));
            limiter.allow_at(peer, n as f64 * 0.001);
        }
        assert_eq!(
            limiter.buckets.lock().unwrap().len(),
            MAX_TRACKED_CLIENTS,
            "at capacity"
        );
        // One more client evicts the stalest, not grows the map.
        limiter.allow_at(ip(200), 10.0);
        let buckets = limiter.buckets.lock().unwrap();
        assert_eq!(buckets.len(), MAX_TRACKED_CLIENTS);
        assert!(
            !buckets.contains_key(&IpAddr::V4(Ipv4Addr::from(0u32.to_be_bytes()))),
            "the stalest bucket was the one evicted"
        );
    }
}
