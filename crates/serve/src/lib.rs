//! # nfi-serve — fault injection as a service
//!
//! The long-running front end over the campaign machinery: a
//! dependency-free HTTP/1.1 daemon (`nfi serve`) that accepts campaign
//! jobs, executes them through the incremental store with **spawned
//! `nfi campaign exec --shard i/n` child processes** as workers, and
//! serves back merged outcome documents that are byte-identical to an
//! offline `nfi campaign run --state-dir` over the same state dir.
//!
//! ```text
//!           POST /v1/campaigns          GET /v1/campaigns/:id[/document]
//!                 │                                   ▲
//!   ┌─────────────▼───────────────────────────────────┴──┐
//!   │ accept loop → conn cap → rate limit → auth → router│
//!   │   [`jobs::JobTable`] [`queue::JobQueue`] journal   │
//!   └───────┬───────────────┬────────────────────┬───────┘
//!      lane 0           lane 1      ...      lane n-1
//!         │ per-(program, machine-fp) segment locks
//!         │ replay hits from nfi_core::store
//!         ▼
//!   [`worker::WorkerPool`] ── spawns ──▶ nfi campaign exec --shard 0/n
//!         │   (watchdog + retry + per-unit isolation)
//!         ▼
//!   merge → persist segment → document replays from the store
//! ```
//!
//! Jobs on independent programs run in parallel across `--lanes n`
//! scheduler lanes; jobs touching the same (program, machine-fp)
//! segment serialize behind the store's segment lock, so concurrency
//! never costs the byte-parity invariant. Accepted and finished jobs
//! are appended to a crash-safe [`journal`], replayed at startup:
//! queued work survives a daemon kill and finished documents rebuild
//! from the store segment instead of vanishing with the process.
//!
//! The daemon is hardened for **untrusted heavy traffic**:
//!
//! * optional bearer-token [`auth`] maps every request to a tenant;
//!   tenant program names are namespaced (`tenant:program`) end to
//!   end — job table, journal, store segments — and the queue drains
//!   tenants fairly;
//! * admission control sheds early and cheaply: a connection cap, a
//!   per-client token-bucket [`limit`], a bounded queue depth, and
//!   per-tenant quotas all answer `429`/`503` with `Retry-After`
//!   before any disk or CPU is spent;
//! * per-request read deadlines bound slowloris clients (`408`), and
//!   per-job queue deadlines fail work that out-waited its budget
//!   instead of running it late;
//! * hung or crashed worker children are watchdog-killed and retried
//!   with capped exponential backoff; a poisoned unit degrades to a
//!   per-unit failure outcome instead of wedging a lane.
//!
//! Every shed, rejection, kill, retry, and expiry is counted in
//! `GET /v1/metrics`.
//!
//! Store misses execute through one of three dispatch tiers selected
//! per job ([`nfi_core::DispatchTier`]): in-process threads, spawned
//! `nfi campaign exec` children, or — when remote `nfi worker` nodes
//! are registered — the [`fleet`], which hash-shards the miss set over
//! the fleet and merges the returned shard documents byte-identically
//! to the local paths.
//!
//! Module map: [`http`] (bounded request/response codec), [`router`]
//! (API handlers), [`auth`] (bearer tokens + tenancy), [`limit`]
//! (token-bucket rate limiter), [`jobs`] (job table), [`queue`]
//! (tenant-fair priority queue), [`journal`] (crash-safe job journal),
//! [`worker`] (supervised process-level worker pool), [`fleet`]
//! (remote-worker registry + assignment pool), [`client`] (test
//! client).

pub mod auth;
pub mod client;
pub mod fleet;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod limit;
pub mod queue;
pub mod router;
pub mod worker;

use fleet::Fleet;
use jobs::{JobStatus, JobTable, StartOutcome};
use journal::{Journal, JournalOutcome};
use limit::{Admission, RateLimiter};
use nfi_core::{
    DispatchTier, EdgeStats, IncrementalRun, JournalStats, Orchestrator, QueueStats, RetryStats,
    RuntimeSnapshot, StoreTotals,
};
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{families, log::log, trace, Level, Span, SpanRecord, Trace, TraceId};
use queue::{JobQueue, Priority, PushOutcome};
use std::io::{BufReader, Read};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use worker::{WorkerMode, WorkerPool};

/// Default cap on concurrent connections ([`ServeConfig::max_connections`]).
pub const MAX_CONNECTIONS: usize = 64;

/// Seconds a `Retry-After` advises after a queue/quota shed. Queue
/// residency is job-scale (seconds), not request-scale, so a fixed
/// small value beats pretending to predict drain time.
const SHED_RETRY_AFTER_SECS: u64 = 2;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Incremental-store state directory (shared with offline runs).
    pub state_dir: PathBuf,
    /// Workers per job (child processes, or threads in-process).
    pub workers: usize,
    /// Concurrent scheduler lanes (jobs executing at once).
    pub lanes: usize,
    /// How store misses execute.
    pub mode: WorkerMode,
    /// Request-body cap in bytes.
    pub max_body: usize,
    /// Default scheduler seed for submissions that don't name one.
    pub seed: u64,
    /// Bearer-token table; `None` runs the daemon open (every request
    /// is the anonymous `""` tenant).
    pub auth: Option<auth::AuthTokens>,
    /// Per-client token-bucket refill in requests/second (0 = no rate
    /// limiting).
    pub rate_limit: u64,
    /// Token-bucket burst capacity (0 = twice the rate).
    pub rate_burst: u64,
    /// Most concurrent connections before the accept loop sheds `503`.
    pub max_connections: usize,
    /// Most queued jobs before submissions shed `503` (0 = unbounded).
    pub max_queue: usize,
    /// Most queued+running jobs one tenant may hold (0 = unlimited).
    pub tenant_max_queued: usize,
    /// Most distinct programs one tenant may occupy store segments for
    /// (0 = unlimited).
    pub tenant_max_programs: usize,
    /// Default queue-deadline budget for submissions that don't name
    /// one (`None` = no deadline).
    pub default_deadline_ms: Option<u64>,
    /// How long one request may take to arrive in full (slowloris
    /// bound; also the idle keep-alive timeout and the write timeout).
    pub request_timeout: Duration,
    /// Watchdog budget per worker child (`None` = never killed).
    pub child_timeout: Option<Duration>,
    /// Fresh-child retries after a failed worker attempt.
    pub worker_retries: usize,
    /// Remote-worker silence budget before the fleet marks the worker
    /// lost and requeues its leases.
    pub heartbeat_timeout: Duration,
    /// Requeues per fleet assignment before the dispatching lane runs
    /// it locally.
    pub assignment_requeues: u32,
    /// Optional per-lease execution budget for fleet assignments
    /// (`None` = heartbeat-only failure detection).
    pub assignment_timeout: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: one worker, one lane, in-process mode (callers that
    /// can spawn should set [`WorkerMode::current_exe`]), the codec's
    /// body cap, and every hardening knob at its permissive default —
    /// open auth, no rate limit, unbounded queue, no deadlines, no
    /// child watchdog, two worker retries.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: 1,
            lanes: 1,
            mode: WorkerMode::InProcess,
            max_body: http::DEFAULT_MAX_BODY,
            seed: nfi_pylite::MachineConfig::default().seed,
            auth: None,
            rate_limit: 0,
            rate_burst: 0,
            max_connections: MAX_CONNECTIONS,
            max_queue: 0,
            tenant_max_queued: 0,
            tenant_max_programs: 0,
            default_deadline_ms: None,
            request_timeout: Duration::from_secs(30),
            child_timeout: None,
            worker_retries: 2,
            heartbeat_timeout: Duration::from_secs(5),
            assignment_requeues: 2,
            assignment_timeout: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    running: AtomicUsize,
    units: AtomicU64,
    replayed: AtomicU64,
    executed: AtomicU64,
    anchor_hits: AtomicU64,
    anchor_misses: AtomicU64,
    connections: AtomicUsize,
    unauthorized: AtomicU64,
    rate_limited: AtomicU64,
    queue_shed: AtomicU64,
    connections_shed: AtomicU64,
    timeouts: AtomicU64,
    deadline_expiries: AtomicU64,
}

/// What the startup journal replay recovered (fixed after bind).
#[derive(Debug, Default, Clone, Copy)]
struct Recovered {
    queued: u64,
    finished: u64,
    corrupt: u64,
}

/// Everything the handler threads and the scheduler lanes share.
pub struct ServerState {
    /// Daemon configuration.
    pub config: ServeConfig,
    /// The job table.
    pub jobs: JobTable,
    /// The job queue.
    pub queue: JobQueue,
    /// The orchestrator every lane runs through — shared so its
    /// in-process segment-lock table covers all lanes.
    pub orch: Orchestrator,
    /// The worker pool (lanes share it; its event counters feed
    /// `/v1/metrics`).
    pub pool: WorkerPool,
    /// The remote-worker fleet: registry, assignment pool, and the
    /// remote dispatch tier the lanes use while workers are live.
    pub fleet: Fleet,
    limiter: Option<RateLimiter>,
    journal: Mutex<Journal>,
    recovered: Recovered,
    counters: Counters,
    shutdown: AtomicBool,
    /// Exclusive `flock` on `<state_dir>/serve.lock`, held for the
    /// daemon's lifetime (kernel-released on death). The journal and
    /// the worker exchange dir are daemon-owned, so one state dir
    /// belongs to at most one daemon at a time; offline `campaign
    /// run`s still share the dir through the segment locks.
    _daemon_lock: std::fs::File,
}

impl ServerState {
    /// Accepts a planned spec for a tenant: admission checks, table
    /// entry, journal record, queue push. The journal append happens
    /// *before* the id is returned — an acknowledged job is always
    /// recoverable after a crash. Sheds (`429`/`503` + `Retry-After`)
    /// happen *before* the journal append — a rejected burst costs no
    /// disk.
    ///
    /// Every journal-append + table-update pair runs under the journal
    /// mutex (here and in the record methods), and compaction — which
    /// rewrites the journal from a table snapshot — runs under the
    /// same mutex. A compaction can therefore never observe the append
    /// without its table update (which would erase a just-journaled
    /// record) or the table update without its append (which would
    /// duplicate one).
    ///
    /// # Errors
    ///
    /// The error response to send: `503` + `Retry-After` when the
    /// queue is at [`ServeConfig::max_queue`], `429` + `Retry-After`
    /// when the tenant is over [`ServeConfig::tenant_max_queued`],
    /// `500` for an unjournalable job, `503` after shutdown.
    pub fn accept(
        &self,
        spec: CampaignSpec,
        tenant: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<u64, http::Response> {
        let cfg = &self.config;
        if cfg.max_queue > 0 && self.queue.depth() >= cfg.max_queue {
            self.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
            return Err(http::Response::shed(
                503,
                &format!("job queue is at its {}-job bound", cfg.max_queue),
                SHED_RETRY_AFTER_SECS,
            ));
        }
        if cfg.tenant_max_queued > 0 && self.jobs.active_for_tenant(tenant) >= cfg.tenant_max_queued
        {
            self.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
            return Err(http::Response::shed(
                429,
                &format!(
                    "tenant quota: {} jobs already queued or running (limit {})",
                    self.jobs.active_for_tenant(tenant),
                    cfg.tenant_max_queued
                ),
                SHED_RETRY_AFTER_SECS,
            ));
        }
        if cfg.tenant_max_programs > 0 {
            let programs = self.jobs.programs_for_tenant(tenant);
            if !programs.iter().any(|p| p == &spec.program)
                && programs.len() >= cfg.tenant_max_programs
            {
                self.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
                return Err(http::Response::shed(
                    429,
                    &format!(
                        "tenant quota: {} distinct programs already stored (limit {}); \
                         submit under an existing program name",
                        programs.len(),
                        cfg.tenant_max_programs
                    ),
                    SHED_RETRY_AFTER_SECS,
                ));
            }
        }
        let deadline_ms = deadline_ms.or(cfg.default_deadline_ms);
        let id = {
            let mut journal = self.journal();
            let (id, spec) = self.jobs.submit_for(spec, tenant, priority, deadline_ms);
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = journal.record_accepted(id, &spec, tenant, priority, deadline_ms) {
                self.jobs.fail(id, format!("not accepted: {e}"));
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                return Err(http::Response::error(
                    500,
                    &format!("cannot journal job: {e}"),
                ));
            }
            id
        };
        match self.queue.push_for(tenant, priority, id) {
            PushOutcome::Queued => {
                log(
                    Level::Info,
                    "job_accepted",
                    &[
                        ("id", &id.to_string()),
                        ("tenant", tenant),
                        ("priority", priority.key()),
                    ],
                );
                Ok(id)
            }
            PushOutcome::Full => {
                // The daemon queue is unbounded (the depth bound is the
                // pre-check above, so journal-replay requeues never
                // shed) — but handle a bounded queue racing full too.
                let message = "job queue filled while accepting".to_string();
                self.finish_under_journal(id, &JournalOutcome::Failed(message.clone()));
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                self.counters.queue_shed.fetch_add(1, Ordering::Relaxed);
                Err(http::Response::shed(503, &message, SHED_RETRY_AFTER_SECS))
            }
            PushOutcome::Shutdown => {
                let message = "daemon is shutting down".to_string();
                self.finish_under_journal(id, &JournalOutcome::Failed(message.clone()));
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                Err(http::Response::error(503, &message))
            }
        }
    }

    /// Records a completed run: journal first (a poll-visible `done`
    /// must survive a crash), then the table, then the counters.
    fn record_done(&self, id: u64, run: &IncrementalRun) {
        self.finish_under_journal(
            id,
            &JournalOutcome::Done {
                replayed: run.replayed,
                executed: run.executed,
                store_errors: run.store_errors.len(),
            },
        );
        let c = &self.counters;
        c.completed.fetch_add(1, Ordering::Relaxed);
        c.units.fetch_add(run.units as u64, Ordering::Relaxed);
        c.replayed.fetch_add(run.replayed as u64, Ordering::Relaxed);
        c.executed.fetch_add(run.executed as u64, Ordering::Relaxed);
        // Warm-edit resubmissions: how much the anchor fallback saved
        // (hits) and what a changed function still cost (misses).
        c.anchor_hits
            .fetch_add(run.anchor_replayed as u64, Ordering::Relaxed);
        c.anchor_misses
            .fetch_add(run.anchor_missed as u64, Ordering::Relaxed);
        log(
            Level::Info,
            "job_done",
            &[
                ("id", &id.to_string()),
                ("replayed", &run.replayed.to_string()),
                ("executed", &run.executed.to_string()),
            ],
        );
    }

    /// Records a failed run (journal first, same reasoning).
    fn record_failed(&self, id: u64, message: String) {
        log(
            Level::Warn,
            "job_failed",
            &[("id", &id.to_string()), ("error", &message)],
        );
        self.finish_under_journal(id, &JournalOutcome::Failed(message));
        self.counters.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// The one finish path: journal append, table flip, and (when due)
    /// compaction from a table snapshot, all under the journal mutex —
    /// see [`Self::accept`] for why the pair must be atomic against
    /// compaction.
    fn finish_under_journal(&self, id: u64, outcome: &JournalOutcome) {
        let mut journal = self.journal();
        let _ = journal.record_finished(id, outcome);
        match outcome {
            JournalOutcome::Done {
                replayed,
                executed,
                store_errors,
            } => self.jobs.finish(id, *replayed, *executed, *store_errors),
            JournalOutcome::Failed(message) => self.jobs.fail(id, message.clone()),
        }
        // Rewrite the journal from the live table once enough records
        // have accumulated, so the file tracks the retained job table
        // instead of the daemon's lifetime.
        if journal.wants_compaction() {
            let _ = journal.compact(&self.jobs.all_jobs());
        }
    }

    fn journal(&self) -> std::sync::MutexGuard<'_, Journal> {
        self.journal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The `GET /v1/metrics` document: process-wide cache counters plus
    /// this daemon's queue gauges, store totals, journal counters, edge
    /// rejections, worker-supervision events, and latency summaries.
    pub fn metrics_json(&self) -> String {
        self.runtime_snapshot().render_json()
    }

    /// The `GET /metrics` Prometheus text-format page — every counter
    /// `/v1/metrics` carries, plus the latency histograms with full
    /// bucket series.
    pub fn metrics_prometheus(&self) -> String {
        self.runtime_snapshot().render_prometheus()
    }

    fn runtime_snapshot(&self) -> RuntimeSnapshot {
        let c = &self.counters;
        let queue = QueueStats {
            depth: self.queue.depth(),
            lanes: self.config.lanes,
            running: c.running.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
        };
        let store = StoreTotals {
            units: c.units.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
            executed: c.executed.load(Ordering::Relaxed),
            anchor_hits: c.anchor_hits.load(Ordering::Relaxed),
            anchor_misses: c.anchor_misses.load(Ordering::Relaxed),
        };
        let journal = {
            let j = self.journal();
            JournalStats {
                appended: j.appended(),
                recovered_queued: self.recovered.queued,
                recovered_finished: self.recovered.finished,
                corrupt_lines: self.recovered.corrupt,
                compactions: j.compactions(),
            }
        };
        let edge = EdgeStats {
            unauthorized: c.unauthorized.load(Ordering::Relaxed),
            rate_limited: c.rate_limited.load(Ordering::Relaxed),
            queue_shed: c.queue_shed.load(Ordering::Relaxed),
            connections_shed: c.connections_shed.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
        };
        let events = &self.pool.events;
        let retry = RetryStats {
            retries: events.retries.load(Ordering::Relaxed),
            watchdog_kills: events.watchdog_kills.load(Ordering::Relaxed),
            deadline_expiries: c.deadline_expiries.load(Ordering::Relaxed),
            failed_units: events.failed_units.load(Ordering::Relaxed),
        };
        RuntimeSnapshot::capture(queue, store, journal, edge, retry, self.fleet.stats())
    }

    /// The dispatch tier the next job would execute under: remote
    /// workers whenever any are live, else whatever the worker pool is
    /// configured for. Re-evaluated per job, so the daemon rides fleet
    /// membership up and down without restarting.
    pub fn dispatch_tier(&self) -> DispatchTier {
        if self.fleet.live_workers() > 0 {
            DispatchTier::RemoteWorkers
        } else {
            match &self.pool.mode {
                WorkerMode::InProcess => DispatchTier::LocalThreads,
                WorkerMode::Spawn { .. } => DispatchTier::LocalProcesses,
            }
        }
    }
}

/// A bound daemon, not yet serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr`, opens (creating if needed) the state dir, and
    /// replays the job journal: finished jobs come back with their
    /// counters (documents rebuild from the store), unfinished ones
    /// are re-enqueued in id order under their original tenant and
    /// priority, and new ids continue above every recovered one. All
    /// failure modes surface before the daemon reports ready.
    ///
    /// # Errors
    ///
    /// Reports an unbindable address, an uncreatable state dir, a
    /// state dir another daemon is already serving, or an
    /// unreadable/unwritable journal.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        config: ServeConfig,
    ) -> Result<Server, String> {
        let daemon_lock = acquire_daemon_lock(&config.state_dir)?;
        // Orchestrator::new opens (creating if needed) the campaign
        // store, so an uncreatable state dir surfaces here.
        let orch = Orchestrator::new(&config.state_dir).map(|orch| Orchestrator {
            workers: config.workers,
            seed: config.seed,
            ..orch
        })?;
        let pool = WorkerPool {
            child_timeout: config.child_timeout,
            max_retries: config.worker_retries,
            ..WorkerPool::new(
                config.mode.clone(),
                config.workers,
                config.state_dir.join("tmp"),
            )
        };
        // Exchange files left by a killed daemon are garbage by
        // construction (their names carry the dead pid, so no future
        // dispatch reuses them) — sweep the work dir before serving so
        // crash/restart cycles don't grow the state dir without bound.
        // The daemon lock makes this safe: no live daemon shares the
        // dir, and orphan children still writing keep their unlinked
        // fds while new files cannot collide with them.
        let _ = std::fs::remove_dir_all(&pool.work_dir);
        // The fleet admits only workers whose machine fingerprint
        // matches the orchestrator's — the precondition for remote
        // shard documents merging byte-identically.
        let fleet = Fleet::new(
            orch.machine.fingerprint(),
            config.heartbeat_timeout,
            config.assignment_requeues,
            config.assignment_timeout,
        );
        let (journal, replay) = Journal::open(&config.state_dir)?;
        let listener =
            TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
        let limiter = (config.rate_limit > 0).then(|| {
            let burst = if config.rate_burst > 0 {
                config.rate_burst
            } else {
                config.rate_limit * 2
            };
            RateLimiter::new(config.rate_limit, burst)
        });
        let state = ServerState {
            config,
            jobs: JobTable::new(),
            queue: JobQueue::new(),
            orch,
            pool,
            fleet,
            limiter,
            journal: Mutex::new(journal),
            recovered: Recovered {
                corrupt: replay.corrupt.len() as u64,
                ..Recovered::default()
            },
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            _daemon_lock: daemon_lock,
        };
        let mut state = state;
        for job in replay.jobs {
            let units = job.spec.units.len();
            let (status, replayed, executed, store_errors) = match &job.outcome {
                Some(JournalOutcome::Done {
                    replayed,
                    executed,
                    store_errors,
                }) => (JobStatus::Done, *replayed, *executed, *store_errors),
                Some(JournalOutcome::Failed(msg)) => (JobStatus::Failed(msg.clone()), 0, 0, 0),
                None => (JobStatus::Queued, 0, 0, 0),
            };
            let failed_units = if status == JobStatus::Done {
                units.saturating_sub(replayed + executed)
            } else {
                0
            };
            let requeue = status == JobStatus::Queued;
            state.jobs.restore(
                job.id,
                Arc::new(job.spec),
                status,
                replayed,
                executed,
                store_errors,
                &job.tenant,
                job.priority,
                job.deadline_ms,
                failed_units,
            );
            if requeue {
                // The daemon queue is unbounded, so a recovered job can
                // never be shed here — acknowledged work survives
                // restart regardless of the admission bound.
                state.queue.push_for(&job.tenant, job.priority, job.id);
                state.recovered.queued += 1;
            } else {
                state.recovered.finished += 1;
            }
        }
        state.jobs.reserve_ids(replay.max_id);
        Ok(Server {
            listener,
            state: Arc::new(state),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Reports a socket whose address cannot be read back.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Shared state (metrics, direct job inspection in tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until shut down: starts the scheduler lanes, then
    /// accepts connections, one handler thread each.
    ///
    /// # Errors
    ///
    /// Reports lane/accept-loop setup failures.
    pub fn run(self) -> Result<(), String> {
        let mut lanes = Vec::with_capacity(self.state.config.lanes);
        for lane in 0..self.state.config.lanes {
            let state = Arc::clone(&self.state);
            let thread = std::thread::Builder::new()
                .name(format!("nfi-serve-lane-{lane}"))
                .spawn(move || scheduler_loop(&state))
                .map_err(|e| format!("cannot start scheduler lane {lane}: {e}"))?;
            lanes.push(thread);
        }
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // Accept failures (EMFILE under fd pressure, transient
                // resets) repeat instantly; back off instead of
                // busy-spinning the 1-core host.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            let state = Arc::clone(&self.state);
            if state.counters.connections.fetch_add(1, Ordering::SeqCst)
                >= state.config.max_connections
            {
                state
                    .counters
                    .connections_shed
                    .fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(state.config.request_timeout));
                let _ = http::Response::shed(503, "connection limit reached", 1)
                    .write_to(&mut stream, false);
                state.counters.connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("nfi-serve-conn".into())
                .spawn(move || {
                    handle_connection(&state, stream);
                    state.counters.connections.fetch_sub(1, Ordering::SeqCst);
                });
            if spawned.is_err() {
                self.state
                    .counters
                    .connections
                    .fetch_sub(1, Ordering::SeqCst);
            }
        }
        // Drain: no new pushes, the lanes finish accepted jobs.
        self.state.queue.shutdown();
        for lane in lanes {
            let _ = lane.join();
        }
        Ok(())
    }

    /// Runs the daemon on a background thread, returning a handle to
    /// its address and state (tests and benches).
    ///
    /// # Errors
    ///
    /// Reports the same setup failures as [`Server::run`].
    pub fn spawn(self) -> Result<ServeHandle, String> {
        let addr = self.local_addr()?;
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("nfi-serve-accept".into())
            .spawn(move || self.run())
            .map_err(|e| format!("cannot start server thread: {e}"))?;
        Ok(ServeHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

/// A running background daemon ([`Server::spawn`]).
pub struct ServeHandle {
    /// The bound address.
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl ServeHandle {
    /// Shared state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops the daemon: the queue drains its accepted jobs across the
    /// lanes, the accept loop is woken and exits, and the serving
    /// thread is joined.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.shutdown();
        // Wake the blocking accept call.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Takes the exclusive daemon `flock` on `<state_dir>/serve.lock`.
/// The journal and the worker exchange dir have exactly one owner, so
/// a second daemon on the same state dir is refused at bind instead of
/// silently re-running the first daemon's queued jobs and compacting
/// its journal records away. Offline `campaign run`s are unaffected —
/// they touch neither resource and meet the daemon at the store's
/// segment locks.
///
/// # Errors
///
/// Reports a state dir another daemon is already serving, an
/// uncreatable/unwritable lock file, or a filesystem without `flock`
/// support. Unlike the best-effort segment-lock file level, this does
/// **not** degrade to unguarded: an unprotected second daemon would
/// sweep the first one's in-flight worker files and rename its journal
/// out from under its append handle, losing acknowledged jobs.
fn acquire_daemon_lock(state_dir: &std::path::Path) -> Result<std::fs::File, String> {
    std::fs::create_dir_all(state_dir)
        .map_err(|e| format!("cannot create state dir {}: {e}", state_dir.display()))?;
    let path = state_dir.join("serve.lock");
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| format!("cannot open daemon lock {}: {e}", path.display()))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(format!(
            "state dir {} is already being served by another daemon (serve.lock is held); \
             give the second daemon its own state dir",
            state_dir.display()
        )),
        Err(std::fs::TryLockError::Error(e)) => Err(format!(
            "cannot lock {} ({e}); the daemon requires a filesystem with flock support \
             for its state dir",
            path.display()
        )),
    }
}

/// One scheduler lane: pops job ids (tenant-fair, priority-ordered),
/// runs each through the shared worker pool and incremental store,
/// records the outcome. A job that out-waited its queue deadline fails
/// here — counted, journaled — instead of running late. Lanes compete
/// for the queue head; jobs on the same (program, machine-fp) segment
/// serialize inside the orchestrator's segment lock, which is why N
/// lanes preserve the serve-vs-offline byte-parity invariant.
fn scheduler_loop(state: &ServerState) {
    while let Some(id) = state.queue.pop() {
        let spec = match state.jobs.start_or_expire(id) {
            StartOutcome::Run(spec) => spec,
            StartOutcome::Expired => {
                state
                    .counters
                    .deadline_expiries
                    .fetch_add(1, Ordering::Relaxed);
                // The table already holds the failure message; the
                // journal record makes the expiry crash-durable.
                let Some(job) = state.jobs.get(id) else {
                    continue;
                };
                let message = match job.status {
                    JobStatus::Failed(msg) => msg,
                    _ => "deadline expired".to_string(),
                };
                let mut journal = state.journal();
                let _ = journal.record_finished(id, &JournalOutcome::Failed(message));
                state.counters.failed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            StartOutcome::Gone => continue,
        };
        let c = &state.counters;
        c.running.fetch_add(1, Ordering::Relaxed);
        // Observe the job's queue residency and make its trace current
        // for this lane, so the orchestrator's phase spans (and the
        // worker children's echoed spans) land in the job's tree.
        let _ctx = state.jobs.get(id).map(|job| {
            let wait_us = job
                .accepted_at
                .elapsed()
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            nfi_telemetry::registry()
                .histogram(families::QUEUE_WAIT, &[])
                .record_micros(wait_us);
            let trace = Arc::clone(&job.trace);
            trace.record(SpanRecord {
                id: trace.alloc_span(),
                parent: 0,
                name: "queue_wait".into(),
                start_us: trace.elapsed_us().saturating_sub(wait_us),
                dur_us: wait_us,
            });
            trace::push_context(trace, 0)
        });
        let run_span = Span::enter("run");
        // Tier selection per job: live remote workers take the miss
        // set; otherwise the local pool (threads or spawned children)
        // does. All three tiers share the run_spec_with seam, so the
        // merged document is byte-identical regardless of the choice.
        let tier = state.dispatch_tier();
        log(
            Level::Debug,
            "dispatch_tier",
            &[("id", &id.to_string()), ("tier", tier.label())],
        );
        let result = match tier {
            DispatchTier::RemoteWorkers => state.orch.run_spec_with(&spec, |spec, missing| {
                state.fleet.dispatch(&state.orch, id, spec, missing)
            }),
            DispatchTier::LocalThreads | DispatchTier::LocalProcesses => {
                state.pool.run_job(&state.orch, id, &spec)
            }
        };
        match result {
            Ok(run) => state.record_done(id, &run),
            Err(message) => state.record_failed(id, message),
        }
        drop(run_span);
        c.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Bounds how long one request may take to arrive in full (slowloris
/// guard). Re-armed at the top of every keep-alive iteration; each raw
/// read narrows the socket's read timeout to the time remaining, so a
/// client dripping one byte per poll still hits the same total
/// deadline as a silent one.
struct DeadlineReader {
    stream: TcpStream,
    budget: Duration,
    deadline: Instant,
    progressed: bool,
}

impl DeadlineReader {
    fn new(stream: TcpStream, budget: Duration) -> DeadlineReader {
        DeadlineReader {
            stream,
            budget,
            deadline: Instant::now() + budget,
            progressed: false,
        }
    }

    /// Starts a fresh request deadline.
    fn arm(&mut self) {
        self.deadline = Instant::now() + self.budget;
        self.progressed = false;
    }

    /// Whether any bytes arrived since the last [`Self::arm`] — a
    /// timeout with progress is a slowloris `408`; without, it is just
    /// an idle keep-alive connection to close silently.
    fn progressed(&self) -> bool {
        self.progressed
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        let n = self.stream.read(buf)?;
        if n > 0 {
            self.progressed = true;
        }
        Ok(n)
    }
}

/// Serves one connection: read request (under the per-request
/// deadline), rate-limit, authenticate, route, respond, repeat until
/// the client closes, asks to close, errors, or times out.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(state.config.request_timeout));
    let peer: Option<IpAddr> = stream.peer_addr().ok().map(|a| a.ip());
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = BufReader::new(DeadlineReader::new(stream, state.config.request_timeout));
    loop {
        reader.get_mut().arm();
        match http::read_request(&mut reader, state.config.max_body) {
            Ok(request) => {
                let response = observe_request(state, &request, peer);
                let keep_alive = !request.wants_close() && !response.close;
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(error) => {
                let timed_out = matches!(
                    &error,
                    http::HttpError::Io(e) if matches!(
                        e.kind(),
                        // Unix sockets report an expired read timeout as
                        // WouldBlock; the deadline reader synthesizes
                        // TimedOut. Treat both as the deadline firing.
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    )
                );
                if timed_out {
                    if reader.get_ref().progressed() {
                        // Mid-request stall: a slowloris (or genuinely
                        // glacial) client. Answer 408 and count it; an
                        // *idle* keep-alive timeout just closes.
                        state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        let _ = http::Response::error(408, "request read deadline exceeded")
                            .write_to(&mut writer, false);
                    }
                } else if let Some(response) = error.response() {
                    let _ = response.write_to(&mut writer, false);
                }
                return;
            }
        }
    }
}

/// The route-template label of a request path: bounded cardinality
/// (ids collapse to `:id`, unknown paths to `other`) so hostile paths
/// cannot grow the histogram registry without bound.
fn route_template(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/metrics" => "/v1/metrics",
        "/v1/campaigns" => "/v1/campaigns",
        "/v1/workers" => "/v1/workers",
        p => {
            if let Some(rest) = p.strip_prefix("/v1/campaigns/") {
                return match rest.split_once('/') {
                    None => "/v1/campaigns/:id",
                    Some((_, "document")) => "/v1/campaigns/:id/document",
                    Some((_, "trace")) => "/v1/campaigns/:id/trace",
                    Some(_) => "/v1/campaigns/:id/*",
                };
            }
            if let Some(rest) = p.strip_prefix("/v1/workers/") {
                return match rest.split_once('/') {
                    Some((_, "heartbeat")) => "/v1/workers/:id/heartbeat",
                    Some((_, "poll")) => "/v1/workers/:id/poll",
                    Some((_, "result")) => "/v1/workers/:id/result",
                    _ => "/v1/workers/:id/*",
                };
            }
            "other"
        }
    }
}

/// The status-class label (`2xx`, `4xx`, ...) of a response code.
fn status_class(status: u16) -> &'static str {
    match status {
        100..=199 => "1xx",
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Wraps the edge pipeline with the request's observability: a fresh
/// trace (which `POST /v1/campaigns` hands to the accepted job), the
/// per-(route, status class) duration histogram, and the access-log
/// line (debug level; bearer tokens never reach the logger — only the
/// resolved tenant name does).
fn observe_request(
    state: &ServerState,
    request: &http::Request,
    peer: Option<IpAddr>,
) -> http::Response {
    let started = Instant::now();
    let traced = nfi_telemetry::enabled().then(|| Trace::new(TraceId::mint()));
    let ctx = traced
        .as_ref()
        .map(|trace| trace::push_context(Arc::clone(trace), 0));
    let (response, tenant) = admit_and_route(state, request, peer);
    drop(ctx);
    let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let route = route_template(&request.path);
    nfi_telemetry::registry()
        .histogram(
            families::HTTP,
            &[("route", route), ("status", status_class(response.status))],
        )
        .record_micros(micros);
    if nfi_telemetry::log::enabled_at(Level::Debug) {
        let trace_id = traced
            .as_ref()
            .map(|t| t.id().to_string())
            .unwrap_or_default();
        log(
            Level::Debug,
            "http_request",
            &[
                ("trace", &trace_id),
                ("tenant", &tenant),
                ("method", &request.method),
                ("route", route),
                ("status", &response.status.to_string()),
                ("dur_us", &micros.to_string()),
            ],
        );
    }
    response
}

/// The edge pipeline for one parsed request: per-client rate limit
/// (cheapest first), then authentication, then the router. Returns the
/// response plus the tenant the request resolved to (for the access
/// log; `""` covers both the anonymous tenant and rejected requests).
fn admit_and_route(
    state: &ServerState,
    request: &http::Request,
    peer: Option<IpAddr>,
) -> (http::Response, String) {
    if let (Some(limiter), Some(ip)) = (&state.limiter, peer) {
        if let Admission::Shed { retry_after_secs } = limiter.allow(ip) {
            state.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            return (
                http::Response::shed(429, "rate limit exceeded for this client", retry_after_secs),
                String::new(),
            );
        }
    }
    let tenant = match &state.config.auth {
        None => String::new(),
        Some(tokens) => match tokens.authenticate(request.header("authorization")) {
            Some(tenant) => tenant.to_string(),
            // The liveness probe stays open — load balancers and
            // operators need it before they have tokens. It leaks
            // nothing tenant-scoped.
            None if request.path == "/healthz" => String::new(),
            None => {
                state.counters.unauthorized.fetch_add(1, Ordering::Relaxed);
                return (
                    http::Response::error(
                        401,
                        "missing or invalid bearer token (Authorization: Bearer <token>)",
                    ),
                    String::new(),
                );
            }
        },
    };
    let response = router::handle(state, request, &tenant);
    (response, tenant)
}
