//! # nfi-serve — fault injection as a service
//!
//! The long-running front end over the campaign machinery: a
//! dependency-free HTTP/1.1 daemon (`nfi serve`) that accepts campaign
//! jobs, executes them through the incremental store with **spawned
//! `nfi campaign exec --shard i/n` child processes** as workers, and
//! serves back merged outcome documents that are byte-identical to an
//! offline `nfi campaign run --state-dir` over the same state dir.
//!
//! ```text
//!           POST /v1/campaigns          GET /v1/campaigns/:id[/document]
//!                 │                                   ▲
//!   ┌─────────────▼───────────────────────────────────┴──┐
//!   │ accept loop → per-connection threads → router      │
//!   │        [`jobs::JobTable`]    [`queue::JobQueue`]   │
//!   └───────────────────────┬────────────────────────────┘
//!                 scheduler thread (one; jobs run FIFO)
//!                           │ replay hits from nfi_core::store
//!                           ▼
//!        [`worker::WorkerPool`] ── spawns ──▶ nfi campaign exec --shard 0/n
//!                           │                 nfi campaign exec --shard 1/n ...
//!                           ▼
//!          merge → persist segment → document in the job table
//! ```
//!
//! Module map: [`http`] (bounded request/response codec), [`router`]
//! (API handlers), [`jobs`] (job table), [`queue`] (FIFO + condvar),
//! [`worker`] (process-level worker pool), [`client`] (test client).

pub mod client;
pub mod http;
pub mod jobs;
pub mod queue;
pub mod router;
pub mod worker;

use jobs::JobTable;
use nfi_core::{CampaignStore, Orchestrator, QueueStats, RuntimeSnapshot, StoreTotals};
use queue::JobQueue;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use worker::{WorkerMode, WorkerPool};

/// Most concurrent connections before the daemon answers `503`.
pub const MAX_CONNECTIONS: usize = 64;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Incremental-store state directory (shared with offline runs).
    pub state_dir: PathBuf,
    /// Workers per job (child processes, or threads in-process).
    pub workers: usize,
    /// How store misses execute.
    pub mode: WorkerMode,
    /// Request-body cap in bytes.
    pub max_body: usize,
    /// Default scheduler seed for submissions that don't name one.
    pub seed: u64,
}

impl ServeConfig {
    /// Defaults: one worker, in-process mode (callers that can spawn
    /// should set [`WorkerMode::current_exe`]), the codec's body cap.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: 1,
            mode: WorkerMode::InProcess,
            max_body: http::DEFAULT_MAX_BODY,
            seed: nfi_pylite::MachineConfig::default().seed,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    running: AtomicUsize,
    units: AtomicU64,
    replayed: AtomicU64,
    executed: AtomicU64,
    connections: AtomicUsize,
}

/// Everything the handler threads and the scheduler share.
pub struct ServerState {
    /// Daemon configuration.
    pub config: ServeConfig,
    /// The job table.
    pub jobs: JobTable,
    /// The job queue.
    pub queue: JobQueue,
    counters: Counters,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(config: ServeConfig) -> ServerState {
        ServerState {
            config,
            jobs: JobTable::new(),
            queue: JobQueue::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Records an accepted submission (the router calls this).
    pub fn note_submitted(&self) {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The `GET /v1/metrics` document: process-wide cache counters plus
    /// this daemon's queue gauges and store totals.
    pub fn metrics_json(&self) -> String {
        let c = &self.counters;
        let queue = QueueStats {
            depth: self.queue.depth(),
            running: c.running.load(Ordering::Relaxed),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
        };
        let store = StoreTotals {
            units: c.units.load(Ordering::Relaxed),
            replayed: c.replayed.load(Ordering::Relaxed),
            executed: c.executed.load(Ordering::Relaxed),
        };
        RuntimeSnapshot::capture(queue, store).render_json()
    }
}

/// A bound daemon, not yet serving.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` and opens (creating if needed) the state dir, so
    /// both failure modes surface before the daemon reports ready.
    ///
    /// # Errors
    ///
    /// Reports an unbindable address or an uncreatable state dir.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        config: ServeConfig,
    ) -> Result<Server, String> {
        CampaignStore::open(&config.state_dir)?;
        let listener =
            TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState::new(config)),
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// Reports a socket whose address cannot be read back.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Shared state (metrics, direct job inspection in tests).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Serves until shut down: starts the scheduler thread, then
    /// accepts connections, one handler thread each.
    ///
    /// # Errors
    ///
    /// Reports accept-loop setup failures.
    pub fn run(self) -> Result<(), String> {
        let scheduler = {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("nfi-serve-scheduler".into())
                .spawn(move || scheduler_loop(&state))
                .map_err(|e| format!("cannot start scheduler: {e}"))?
        };
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // Accept failures (EMFILE under fd pressure, transient
                // resets) repeat instantly; back off instead of
                // busy-spinning the 1-core host.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            let state = Arc::clone(&self.state);
            if state.counters.connections.fetch_add(1, Ordering::SeqCst) >= MAX_CONNECTIONS {
                let mut stream = stream;
                let _ = http::Response::error(503, "connection limit reached")
                    .write_to(&mut stream, false);
                state.counters.connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let spawned = std::thread::Builder::new()
                .name("nfi-serve-conn".into())
                .spawn(move || {
                    handle_connection(&state, stream);
                    state.counters.connections.fetch_sub(1, Ordering::SeqCst);
                });
            if spawned.is_err() {
                self.state
                    .counters
                    .connections
                    .fetch_sub(1, Ordering::SeqCst);
            }
        }
        // Drain: no new pushes, scheduler finishes accepted jobs.
        self.state.queue.shutdown();
        let _ = scheduler.join();
        Ok(())
    }

    /// Runs the daemon on a background thread, returning a handle to
    /// its address and state (tests and benches).
    ///
    /// # Errors
    ///
    /// Reports the same setup failures as [`Server::run`].
    pub fn spawn(self) -> Result<ServeHandle, String> {
        let addr = self.local_addr()?;
        let state = self.state();
        let thread = std::thread::Builder::new()
            .name("nfi-serve-accept".into())
            .spawn(move || self.run())
            .map_err(|e| format!("cannot start server thread: {e}"))?;
        Ok(ServeHandle {
            addr,
            state,
            thread: Some(thread),
        })
    }
}

/// A running background daemon ([`Server::spawn`]).
pub struct ServeHandle {
    /// The bound address.
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl ServeHandle {
    /// Shared state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops the daemon: the queue drains its accepted jobs, the accept
    /// loop is woken and exits, and the serving thread is joined.
    pub fn stop(mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.shutdown();
        // Wake the blocking accept call.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The scheduler: pops job ids FIFO, runs each through the worker pool
/// and the shared incremental store, records the outcome.
fn scheduler_loop(state: &ServerState) {
    let pool = WorkerPool {
        mode: state.config.mode.clone(),
        workers: state.config.workers,
        work_dir: state.config.state_dir.join("tmp"),
    };
    let orch = Orchestrator::new(&state.config.state_dir).map(|orch| Orchestrator {
        workers: state.config.workers,
        seed: state.config.seed,
        ..orch
    });
    while let Some(id) = state.queue.pop() {
        let Some(spec) = state.jobs.start(id) else {
            continue;
        };
        let c = &state.counters;
        c.running.fetch_add(1, Ordering::Relaxed);
        let result = orch
            .as_ref()
            .map_err(Clone::clone)
            .and_then(|orch| pool.run_job(orch, id, &spec));
        match result {
            Ok(run) => {
                c.completed.fetch_add(1, Ordering::Relaxed);
                c.units.fetch_add(run.units as u64, Ordering::Relaxed);
                c.replayed.fetch_add(run.replayed as u64, Ordering::Relaxed);
                c.executed.fetch_add(run.executed as u64, Ordering::Relaxed);
                state.jobs.finish(
                    id,
                    run.replayed,
                    run.executed,
                    run.store_errors.len(),
                    run.run.encode(),
                );
            }
            Err(message) => {
                c.failed.fetch_add(1, Ordering::Relaxed);
                state.jobs.fail(id, message);
            }
        }
        c.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one connection: read request, route, respond, repeat until
/// the client closes, asks to close, errors, or idles out.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Idle keep-alive connections release their thread after 30s.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, state.config.max_body) {
            Ok(request) => {
                let response = router::handle(state, &request);
                let keep_alive = !request.wants_close() && !response.close;
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(error) => {
                if let Some(response) = error.response() {
                    let _ = response.write_to(&mut writer, false);
                }
                return;
            }
        }
    }
}
