//! Bearer-token authentication with per-tenant namespaces.
//!
//! The daemon loads a token file (`--auth-token-file`) of
//! `tenant:token` lines at startup. Clients present
//! `Authorization: Bearer <token>`; a matching token maps the request
//! to its tenant, and every program the tenant submits is scoped as
//! `tenant:program` so namespaces never collide in the job table or
//! the on-disk store. Token comparison is constant-time — the compare
//! walks every byte of both strings regardless of where they first
//! differ, so response timing leaks nothing about a token prefix.
//!
//! Without a token file the daemon runs open, exactly as before: every
//! request belongs to the anonymous `""` tenant and program names are
//! not scoped.

use std::path::Path;

/// The loaded token table.
#[derive(Debug, Clone, Default)]
pub struct AuthTokens {
    /// `(tenant, token)` pairs in file order.
    entries: Vec<(String, String)>,
}

/// Compares two byte strings in time dependent only on their lengths,
/// not their contents: every byte pair is XOR-folded into one
/// accumulator with no early exit.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= (x ^ y) as usize;
    }
    diff == 0
}

fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

impl AuthTokens {
    /// Parses token-file text: one `tenant:token` per line, `#`
    /// comments and blank lines skipped. Tenant names are
    /// `[a-z0-9_-]+` (they become program-name prefixes and filesystem
    /// path components); tokens are any non-empty colon-free string.
    ///
    /// # Errors
    ///
    /// A diagnostic naming the first malformed line, a duplicate
    /// tenant, or a duplicate token (two tenants sharing a token would
    /// make authentication ambiguous).
    pub fn parse(text: &str) -> Result<AuthTokens, String> {
        let mut entries: Vec<(String, String)> = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (tenant, token) = line
                .split_once(':')
                .ok_or_else(|| format!("token file line {}: expected `tenant:token`", n + 1))?;
            let (tenant, token) = (tenant.trim(), token.trim());
            if !valid_tenant(tenant) {
                return Err(format!(
                    "token file line {}: tenant `{tenant}` is not [a-z0-9_-]+",
                    n + 1
                ));
            }
            if token.is_empty() || token.contains(':') {
                return Err(format!(
                    "token file line {}: token for tenant `{tenant}` is empty or contains `:`",
                    n + 1
                ));
            }
            if entries.iter().any(|(t, _)| t == tenant) {
                return Err(format!(
                    "token file line {}: duplicate tenant `{tenant}`",
                    n + 1
                ));
            }
            if entries.iter().any(|(_, k)| k == token) {
                return Err(format!(
                    "token file line {}: token for `{tenant}` duplicates another tenant's",
                    n + 1
                ));
            }
            entries.push((tenant.to_string(), token.to_string()));
        }
        if entries.is_empty() {
            return Err("token file has no tenant:token entries".to_string());
        }
        Ok(AuthTokens { entries })
    }

    /// Loads and parses a token file.
    ///
    /// # Errors
    ///
    /// I/O failures and every [`AuthTokens::parse`] diagnostic.
    pub fn load(path: &Path) -> Result<AuthTokens, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read token file {}: {e}", path.display()))?;
        AuthTokens::parse(&text)
    }

    /// Authenticates an `Authorization` header value, returning the
    /// tenant it maps to. Every stored token is compared (constant
    /// time each) even after a match is found, so timing does not
    /// reveal table position either.
    pub fn authenticate(&self, authorization: Option<&str>) -> Option<&str> {
        let header = authorization?;
        let presented = header
            .strip_prefix("Bearer ")
            .or_else(|| header.strip_prefix("bearer "))?
            .trim();
        let mut tenant = None;
        for (name, token) in &self.entries {
            if constant_time_eq(presented.as_bytes(), token.as_bytes()) && tenant.is_none() {
                tenant = Some(name.as_str());
            }
        }
        tenant
    }

    /// Tenants in the table, file order.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(t, _)| t.as_str())
    }
}

/// Scopes a program name into a tenant's namespace. The anonymous
/// tenant (auth disabled) leaves names untouched.
pub fn scoped_program(tenant: &str, program: &str) -> String {
    if tenant.is_empty() {
        program.to_string()
    } else {
        format!("{tenant}:{program}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_agrees_with_plain_eq() {
        assert!(constant_time_eq(b"secret", b"secret"));
        assert!(!constant_time_eq(b"secret", b"secreT"));
        assert!(!constant_time_eq(b"secret", b"secre"));
        assert!(!constant_time_eq(b"", b"x"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn parses_tenants_with_comments_and_blanks() {
        let tokens =
            AuthTokens::parse("# fleet tokens\n\nalice:tok-alice-1\n  bob : tok-bob-2  \n# done\n")
                .unwrap();
        assert_eq!(tokens.tenants().collect::<Vec<_>>(), vec!["alice", "bob"]);
        assert_eq!(
            tokens.authenticate(Some("Bearer tok-alice-1")),
            Some("alice")
        );
        assert_eq!(tokens.authenticate(Some("Bearer tok-bob-2")), Some("bob"));
    }

    #[test]
    fn rejects_malformed_token_files() {
        for (text, needle) in [
            ("no-colon-here\n", "expected `tenant:token`"),
            ("Alice:tok\n", "not [a-z0-9_-]+"),
            ("a b:tok\n", "not [a-z0-9_-]+"),
            (":tok\n", "not [a-z0-9_-]+"),
            ("alice:\n", "empty or contains"),
            ("alice:a:b\n", "empty or contains"),
            ("alice:tok\nalice:tok2\n", "duplicate tenant"),
            ("alice:tok\nbob:tok\n", "duplicates another tenant's"),
            ("# only comments\n", "no tenant:token entries"),
        ] {
            let err = AuthTokens::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        }
    }

    #[test]
    fn authenticate_requires_a_wellformed_bearer_header() {
        let tokens = AuthTokens::parse("alice:tok\n").unwrap();
        assert_eq!(tokens.authenticate(None), None);
        assert_eq!(tokens.authenticate(Some("tok")), None, "no scheme");
        assert_eq!(tokens.authenticate(Some("Basic tok")), None);
        assert_eq!(tokens.authenticate(Some("Bearer wrong")), None);
        assert_eq!(tokens.authenticate(Some("Bearer tok")), Some("alice"));
        assert_eq!(tokens.authenticate(Some("bearer tok")), Some("alice"));
    }

    #[test]
    fn scoped_program_prefixes_only_real_tenants() {
        assert_eq!(scoped_program("", "banking"), "banking");
        assert_eq!(scoped_program("alice", "banking"), "alice:banking");
    }
}
