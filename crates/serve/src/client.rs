//! A minimal blocking HTTP/1.1 client for exercising the daemon —
//! used by the integration tests and `bench_serve`, not shipped as a
//! public API promise. Speaks exactly the subset the server does:
//! `Content-Length` bodies, keep-alive, no chunking.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Reply {
    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    /// First value of the named header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a 30-second I/O timeout.
    ///
    /// # Errors
    ///
    /// Reports connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("bad address: {e}"))?
            .next()
            .ok_or("address resolves to nothing")?;
        let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Reports transport failures and malformed responses.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> Result<Reply, String> {
        self.write_request(method, path, body)?;
        self.read_reply()
    }

    /// Writes a request without reading the response (pipelining).
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn write_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(), String> {
        let body = body.unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: nfi\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Sends raw bytes verbatim (malformed-request tests).
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.writer
            .write_all(bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Half-closes the write side (EOF-mid-request tests).
    pub fn shutdown_write(&self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }

    /// Reads one response off the connection.
    ///
    /// # Errors
    ///
    /// Reports transport failures and malformed responses.
    pub fn read_reply(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if !version.starts_with("HTTP/1.") {
            return Err(format!("malformed status line `{}`", line.trim_end()));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| format!("malformed status `{status}`"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("body read failed: {e}"))?;
        Ok(Reply {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection.
///
/// # Errors
///
/// Same contract as [`Client::send`].
pub fn request_once(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Reply, String> {
    Client::connect(addr)?.send(method, path, body)
}
