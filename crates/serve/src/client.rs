//! A minimal blocking HTTP/1.1 client for exercising the daemon —
//! used by the integration tests and `bench_serve`, not shipped as a
//! public API promise. Speaks exactly the subset the server does:
//! `Content-Length` bodies, keep-alive, no chunking.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a connect attempt may take before it is a failure, and
/// the per-call read/write bound on an established connection. The
/// daemon answers fast or sheds fast; a client hanging for minutes is
/// always wrong.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Longest `Retry-After` the retry helper will actually honor — an
/// overloaded daemon advises seconds, not minutes, and a corrupt or
/// hostile header must not park the client forever.
const MAX_RETRY_AFTER: Duration = Duration::from_secs(10);

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Reply {
    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    /// First value of the named header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    token: Option<String>,
}

impl Client {
    /// Connects with [`IO_TIMEOUT`] bounding the connect attempt and
    /// every read/write — a wedged daemon surfaces as an error, never
    /// a hang.
    ///
    /// # Errors
    ///
    /// Reports connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("bad address: {e}"))?
            .next()
            .ok_or("address resolves to nothing")?;
        let stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)
            .map_err(|e| format!("cannot connect {addr}: {e}"))?;
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            token: None,
        })
    }

    /// Attaches a bearer token: every subsequent [`Self::write_request`]
    /// carries `Authorization: Bearer <token>`.
    #[must_use]
    pub fn with_token(mut self, token: &str) -> Client {
        self.token = Some(token.to_string());
        self
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Reports transport failures and malformed responses.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> Result<Reply, String> {
        self.write_request(method, path, body)?;
        self.read_reply()
    }

    /// Writes a request without reading the response (pipelining).
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn write_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(), String> {
        let body = body.unwrap_or_default();
        let auth = match &self.token {
            Some(token) => format!("Authorization: Bearer {token}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: nfi\r\n{auth}Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer
            .write_all(head.as_bytes())
            .and_then(|()| self.writer.write_all(body))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Sends raw bytes verbatim (malformed-request tests).
    ///
    /// # Errors
    ///
    /// Reports transport failures.
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.writer
            .write_all(bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Half-closes the write side (EOF-mid-request tests).
    pub fn shutdown_write(&self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }

    /// Reads one response off the connection.
    ///
    /// # Errors
    ///
    /// Reports transport failures and malformed responses.
    pub fn read_reply(&mut self) -> Result<Reply, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let (version, status) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        if !version.starts_with("HTTP/1.") {
            return Err(format!("malformed status line `{}`", line.trim_end()));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| format!("malformed status `{status}`"))?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| format!("read failed: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("body read failed: {e}"))?;
        Ok(Reply {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection.
///
/// # Errors
///
/// Same contract as [`Client::send`].
pub fn request_once(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Reply, String> {
    Client::connect(addr)?.send(method, path, body)
}

/// One-shot authenticated request on a fresh connection.
///
/// # Errors
///
/// Same contract as [`Client::send`].
pub fn request_once_as(
    addr: impl ToSocketAddrs,
    token: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<Reply, String> {
    Client::connect(addr)?
        .with_token(token)
        .send(method, path, body)
}

/// One-shot request that cooperates with the daemon's load shedding:
/// a `429`/`503` reply carrying `Retry-After` is retried (on a fresh
/// connection) after sleeping the advised seconds, up to `retries`
/// times. Any other status — and a shed reply once retries are spent —
/// is returned as-is for the caller to judge; transport errors are not
/// retried (the shed path is the one that *promises* the request was
/// not accepted, so only it is safely idempotent to repeat).
///
/// # Errors
///
/// Same contract as [`Client::send`].
pub fn request_with_retry(
    addr: impl ToSocketAddrs + Clone,
    token: Option<&str>,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    retries: usize,
) -> Result<Reply, String> {
    let mut attempt = 0;
    loop {
        let mut client = Client::connect(addr.clone())?;
        if let Some(token) = token {
            client = client.with_token(token);
        }
        let reply = client.send(method, path, body)?;
        let shed = matches!(reply.status, 429 | 503);
        if !shed || attempt >= retries {
            return Ok(reply);
        }
        let advised = reply
            .header("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        std::thread::sleep(Duration::from_secs(advised).min(MAX_RETRY_AFTER));
        attempt += 1;
    }
}
