//! A minimal blocking FIFO job queue (mutex + condvar).
//!
//! The daemon's scheduler lanes all pop from this one queue: ids are
//! handed out in submission order, one lane each. The queue makes no
//! exclusivity promise about *segments* — two jobs on the same program
//! can be in flight on two lanes at once — because store writers
//! serialize behind the per-(program, machine-fp) segment locks in
//! `nfi_core::store`. Parallelism also lives *inside* a job: the
//! worker pool stripes its store misses over child processes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The shared FIFO of queued job ids.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<u64>,
    shutdown: bool,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Enqueues a job id. Returns `false` (dropping the id) after
    /// shutdown.
    pub fn push(&self, id: u64) -> bool {
        let mut inner = self.lock();
        if inner.shutdown {
            return false;
        }
        inner.queue.push_back(id);
        self.ready.notify_one();
        true
    }

    /// Blocks until a job id is available (`Some`) or the queue is shut
    /// down (`None`). Pending ids drain before `None` is reported, so a
    /// graceful shutdown finishes accepted work.
    pub fn pop(&self) -> Option<u64> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.queue.pop_front() {
                return Some(id);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Stops accepting pushes and wakes every blocked `pop`.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = JobQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(JobQueue::new());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.push(7));
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn shutdown_drains_pending_then_reports_none() {
        let q = JobQueue::new();
        q.push(1);
        q.shutdown();
        assert!(!q.push(2), "pushes rejected after shutdown");
        assert_eq!(q.pop(), Some(1), "pending work drains first");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shutdown_wakes_a_blocked_pop() {
        let q = Arc::new(JobQueue::new());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert_eq!(popper.join().unwrap(), None);
    }
}
