//! A blocking, tenant-fair, priority-aware job queue (mutex + condvar).
//!
//! The daemon's scheduler lanes all pop from this one queue. Each
//! tenant owns a private band of three priority FIFOs; `pop` serves
//! tenants round-robin (one job per turn) so a tenant bursting a
//! thousand submissions cannot starve everyone else, and within a
//! tenant higher priorities drain first. With a single tenant (auth
//! disabled — everything lands under the `""` tenant at
//! [`Priority::Normal`]) the queue degenerates to the plain FIFO the
//! daemon always had.
//!
//! Depth is bounded when the daemon asks for it: a full queue rejects
//! the push ([`PushOutcome::Full`]) so the HTTP edge can shed with
//! `503 Retry-After` instead of piling unbounded work onto the
//! condvar. The queue makes no exclusivity promise about *segments* —
//! two jobs on the same program can be in flight on two lanes at once —
//! because store writers serialize behind the per-(program,
//! machine-fp) segment locks in `nfi_core::store`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Scheduling priority of one job within its tenant's band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Drains before everything else the tenant has queued.
    High,
    /// The default.
    #[default]
    Normal,
    /// Drains only when the tenant has nothing better queued.
    Low,
}

impl Priority {
    /// All priorities, drain order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable API key of this priority.
    pub fn key(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses an API key back into a priority.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    fn band(&self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// What happened to a push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The job id is queued.
    Queued,
    /// The queue is at its depth bound; the caller sheds the request.
    Full,
    /// The queue is shut down; the id was dropped.
    Shutdown,
}

/// The shared queue of job ids, banded per tenant and priority.
#[derive(Default)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
}

#[derive(Default)]
struct Inner {
    /// One band per tenant, in first-seen order; `cursor` rotates over
    /// this vec so draining is fair. Empty bands are retired on pop so
    /// the vec stays proportional to *active* tenants.
    tenants: Vec<TenantBand>,
    cursor: usize,
    depth: usize,
    /// 0 = unbounded.
    max_depth: usize,
    shutdown: bool,
}

#[derive(Default)]
struct TenantBand {
    tenant: String,
    lanes: [VecDeque<u64>; 3],
}

impl TenantBand {
    fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    fn pop(&mut self) -> Option<u64> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }
}

impl JobQueue {
    /// An empty, unbounded queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// An empty queue shedding pushes beyond `max_depth` waiting jobs
    /// (0 = unbounded).
    pub fn bounded(max_depth: usize) -> JobQueue {
        let queue = JobQueue::default();
        queue.lock().max_depth = max_depth;
        queue
    }

    /// Enqueues a job id under the anonymous tenant at normal
    /// priority. Returns `false` (dropping the id) after shutdown or
    /// when the depth bound sheds it.
    pub fn push(&self, id: u64) -> bool {
        self.push_for("", Priority::Normal, id) == PushOutcome::Queued
    }

    /// Enqueues a job id into a tenant's band at a priority.
    pub fn push_for(&self, tenant: &str, priority: Priority, id: u64) -> PushOutcome {
        let mut inner = self.lock();
        if inner.shutdown {
            return PushOutcome::Shutdown;
        }
        if inner.max_depth > 0 && inner.depth >= inner.max_depth {
            return PushOutcome::Full;
        }
        let at = match inner.tenants.iter().position(|b| b.tenant == tenant) {
            Some(at) => at,
            None => {
                inner.tenants.push(TenantBand {
                    tenant: tenant.to_string(),
                    ..TenantBand::default()
                });
                inner.tenants.len() - 1
            }
        };
        inner.tenants[at].lanes[priority.band()].push_back(id);
        inner.depth += 1;
        self.ready.notify_one();
        PushOutcome::Queued
    }

    /// Blocks until a job id is available (`Some`) or the queue is shut
    /// down (`None`). Tenants are served round-robin, one job per turn,
    /// highest priority first within a tenant. Pending ids drain before
    /// `None` is reported, so a graceful shutdown finishes accepted
    /// work.
    pub fn pop(&self) -> Option<u64> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.pop_fair() {
                return Some(id);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Jobs currently waiting across every tenant.
    pub fn depth(&self) -> usize {
        self.lock().depth
    }

    /// Jobs currently waiting for one tenant.
    pub fn depth_for(&self, tenant: &str) -> usize {
        self.lock()
            .tenants
            .iter()
            .filter(|b| b.tenant == tenant)
            .flat_map(|b| b.lanes.iter())
            .map(VecDeque::len)
            .sum()
    }

    /// Stops accepting pushes and wakes every blocked `pop`.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Inner {
    fn pop_fair(&mut self) -> Option<u64> {
        if self.tenants.is_empty() {
            return None;
        }
        let n = self.tenants.len();
        for step in 0..n {
            let at = (self.cursor + step) % n;
            if let Some(id) = self.tenants[at].pop() {
                self.depth -= 1;
                // Next turn starts after the tenant just served.
                self.cursor = (at + 1) % n;
                self.retire_empty();
                return Some(id);
            }
        }
        None
    }

    /// Drops empty bands, keeping the cursor aimed at the same tenant
    /// rotation position.
    fn retire_empty(&mut self) {
        let mut at = 0;
        while at < self.tenants.len() {
            if self.tenants[at].is_empty() {
                self.tenants.remove(at);
                if self.cursor > at {
                    self.cursor -= 1;
                }
            } else {
                at += 1;
            }
        }
        if self.tenants.is_empty() {
            self.cursor = 0;
        } else {
            self.cursor %= self.tenants.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_depth() {
        let q = JobQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = Arc::new(JobQueue::new());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.push(7));
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn shutdown_drains_pending_then_reports_none() {
        let q = JobQueue::new();
        q.push(1);
        q.shutdown();
        assert!(!q.push(2), "pushes rejected after shutdown");
        assert_eq!(q.pop(), Some(1), "pending work drains first");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shutdown_wakes_a_blocked_pop() {
        let q = Arc::new(JobQueue::new());
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_back_open() {
        let q = JobQueue::bounded(2);
        assert_eq!(q.push_for("a", Priority::Normal, 1), PushOutcome::Queued);
        assert_eq!(q.push_for("b", Priority::Normal, 2), PushOutcome::Queued);
        assert_eq!(q.push_for("a", Priority::Normal, 3), PushOutcome::Full);
        assert_eq!(q.depth(), 2);
        assert!(q.pop().is_some());
        assert_eq!(
            q.push_for("a", Priority::Normal, 3),
            PushOutcome::Queued,
            "a drained queue admits again"
        );
    }

    #[test]
    fn tenants_drain_round_robin_one_job_per_turn() {
        let q = JobQueue::new();
        // Tenant "hog" floods first; "small" submits two jobs late.
        for id in 1..=4 {
            q.push_for("hog", Priority::Normal, id);
        }
        q.push_for("small", Priority::Normal, 100);
        q.push_for("small", Priority::Normal, 101);
        let order: Vec<u64> = (0..6).map(|_| q.pop().unwrap()).collect();
        assert_eq!(
            order,
            vec![1, 100, 2, 101, 3, 4],
            "the small tenant interleaves instead of waiting out the flood"
        );
    }

    #[test]
    fn priorities_drain_high_before_normal_before_low_within_a_tenant() {
        let q = JobQueue::new();
        q.push_for("t", Priority::Low, 30);
        q.push_for("t", Priority::Normal, 20);
        q.push_for("t", Priority::High, 10);
        q.push_for("t", Priority::High, 11);
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec![10, 11, 20, 30]);
    }

    #[test]
    fn tenant_depth_is_tracked_separately() {
        let q = JobQueue::new();
        q.push_for("a", Priority::Normal, 1);
        q.push_for("a", Priority::High, 2);
        q.push_for("b", Priority::Normal, 3);
        assert_eq!(q.depth_for("a"), 2);
        assert_eq!(q.depth_for("b"), 1);
        assert_eq!(q.depth_for("missing"), 0);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn priority_keys_round_trip() {
        for p in Priority::ALL {
            assert_eq!(Priority::parse(p.key()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }
}
