//! The crash-safe job journal: every job the daemon accepts and every
//! job it finishes is appended to `<state_dir>/journal.jsonl`, and a
//! restarting daemon replays the file so accepted work survives a
//! SIGTERM, a crash, or a power cycle of the host.
//!
//! ```text
//! {"kind":"accepted","id":3,"spec":"<escaped campaign_spec JSONL>"}
//! {"kind":"accepted","id":4,"spec":"...","tenant":"alice","priority":"high","deadline_ms":5000}
//! {"kind":"finished","id":3,"status":"done","replayed":0,"executed":44,"store_errors":0}
//! {"kind":"finished","id":5,"status":"failed","error":"..."}
//! {"kind":"fence","max_id":9}
//! ```
//!
//! The tenant/priority/deadline fields on `accepted` records are
//! **optional**: a journal written before they existed replays exactly
//! as it used to (anonymous tenant, normal priority, no deadline), and
//! a default-valued job omits them so open-daemon journals are
//! byte-identical to the old format.
//!
//! Ordering is what makes the journal honest:
//!
//! * the `accepted` record is appended (and synced) **before** the
//!   submit response goes out — a job the client was told about is a
//!   job the journal knows about;
//! * the `finished` record is appended **before** the job table shows
//!   `done` — a status poll that saw `done` implies the journal will
//!   restore the job as finished after a restart.
//!
//! Replay is tolerant the same way the campaign store is: a truncated
//! or corrupt line (a crash mid-append, an editor accident) is skipped
//! and counted, never trusted. Losing a `finished` record merely
//! re-queues the job — it re-runs against the store, replays warm, and
//! produces the byte-identical document; losing an `accepted` record
//! drops that job (its spec is gone, and its client never got a 202,
//! or can simply resubmit). Corruption can cost work, never change a
//! result.
//!
//! The same at-least-once posture extends to the distributed tier: a
//! job restored as accepted may re-dispatch units that a remote
//! `nfi worker` already executed before the crash (its in-flight
//! results died with the old fleet registry). That is safe for the
//! same reason replay is safe — store keys are deterministic functions
//! of the unit (program, fingerprints, anchor, seed), so re-executing
//! a unit writes the byte-identical outcome line under the same key,
//! and the merged document cannot depend on how many times any unit
//! ran, or where.
//!
//! The file is compacted at startup (finished jobs beyond the table's
//! retention cap fall out) and again whenever
//! [`COMPACT_APPEND_THRESHOLD`] records have accumulated since the
//! last compaction, so a long-running daemon's journal stays
//! proportional to its retained job table, not its lifetime.

use crate::jobs::{Job, JobStatus, RETAINED_FINISHED_JOBS};
use crate::queue::Priority;
use nfi_sfi::jsontext::{
    escape, get_opt_str, get_opt_u64, get_str, get_u64, get_usize, parse_flat_object, JsonValue,
};
use nfi_sfi::CampaignSpec;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Appended records between compactions before the journal is
/// rewritten from the live job table.
pub const COMPACT_APPEND_THRESHOLD: u64 = 2048;

/// How a journaled job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOutcome {
    /// Finished successfully with these run counters.
    Done {
        /// Units replayed from the store.
        replayed: usize,
        /// Units executed by workers.
        executed: usize,
        /// Store-corruption warnings the run tolerated.
        store_errors: usize,
    },
    /// Ended in an error.
    Failed(String),
}

/// One job reconstructed by the startup replay.
#[derive(Debug)]
pub struct ReplayedJob {
    /// The job id (ids keep counting up across restarts).
    pub id: u64,
    /// The planned spec, decoded from the `accepted` record.
    pub spec: CampaignSpec,
    /// `Some` when a `finished` record matched; `None` means the job
    /// never finished and must be re-enqueued.
    pub outcome: Option<JournalOutcome>,
    /// Owning tenant (`""` for records without the field).
    pub tenant: String,
    /// Scheduling priority (`Normal` for records without the field).
    pub priority: Priority,
    /// Queue-deadline budget in milliseconds, if the job had one. A
    /// re-queued job's budget restarts at restore time.
    pub deadline_ms: Option<u64>,
}

/// Everything a startup replay learned from the journal file.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Replayed jobs in id order (finished jobs beyond the retention
    /// cap already dropped).
    pub jobs: Vec<ReplayedJob>,
    /// Diagnostics for skipped lines, one per corruption.
    pub corrupt: Vec<String>,
    /// Highest job id seen in *any* parseable record — new ids must
    /// start above it even when the matching `accepted` line was lost.
    pub max_id: u64,
}

/// The append side of the journal (the replay side is
/// [`Journal::open`]'s other return value).
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    /// Highest job id ever journaled (appends and replay alike) — new
    /// ids must stay above it, and compaction re-records it when the
    /// jobs carrying it have been dropped.
    fence: u64,
    appended: u64,
    appended_since_compact: u64,
    compactions: u64,
}

impl Journal {
    /// Path of the journal inside `state_dir`.
    pub fn path_in(state_dir: impl AsRef<Path>) -> PathBuf {
        state_dir.as_ref().join("journal.jsonl")
    }

    /// Opens the journal under `state_dir`: replays the existing file
    /// (missing is simply empty), compacts it, and returns the append
    /// handle plus everything the replay recovered.
    ///
    /// # Errors
    ///
    /// Reports an unreadable or unwritable journal file. Corrupt
    /// *content* is never an error — it is skipped and reported in
    /// [`JournalReplay::corrupt`].
    pub fn open(state_dir: impl AsRef<Path>) -> Result<(Journal, JournalReplay), String> {
        let path = Journal::path_in(&state_dir);
        std::fs::create_dir_all(state_dir.as_ref())
            .map_err(|e| format!("cannot create {}: {e}", state_dir.as_ref().display()))?;
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        let mut replay = parse_journal(&text);

        // Compact: drop finished jobs beyond what the job table would
        // retain anyway, then rewrite the file to exactly the records
        // the replay trusts (corruption and evicted jobs fall out).
        let finished = replay.jobs.iter().filter(|j| j.outcome.is_some()).count();
        if finished > RETAINED_FINISHED_JOBS {
            let mut to_drop = finished - RETAINED_FINISHED_JOBS;
            replay.jobs.retain(|j| {
                if to_drop > 0 && j.outcome.is_some() {
                    to_drop -= 1;
                    return false;
                }
                true
            });
        }
        let mut compacted = String::new();
        // The id fence must survive compaction even when its evidence
        // (an evicted job, a corrupt record whose id still parsed)
        // does not — otherwise a restart after the rewrite could hand
        // a retired id to a new job while an old client still polls it.
        let top = replay.jobs.iter().map(|j| j.id).max().unwrap_or(0);
        if let Some(line) = fence_line(replay.max_id, top) {
            compacted.push_str(&line);
        }
        for job in &replay.jobs {
            compacted.push_str(&accepted_line(
                job.id,
                &job.spec,
                &job.tenant,
                job.priority,
                job.deadline_ms,
            ));
            if let Some(outcome) = &job.outcome {
                compacted.push_str(&finished_line(job.id, outcome));
            }
        }
        let rewrite = compacted != text;
        if rewrite {
            write_replace(&path, &compacted)?;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                path,
                file,
                fence: replay.max_id,
                appended: 0,
                appended_since_compact: 0,
                compactions: u64::from(rewrite),
            },
            replay,
        ))
    }

    /// Appends (and syncs) the `accepted` record of a new job. Called
    /// before the submit response goes out, so an acknowledged job is
    /// always recoverable.
    ///
    /// # Errors
    ///
    /// Reports the failed write — the caller must then fail the job
    /// instead of acknowledging it.
    pub fn record_accepted(
        &mut self,
        id: u64,
        spec: &CampaignSpec,
        tenant: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<(), String> {
        self.fence = self.fence.max(id);
        self.append(&accepted_line(id, spec, tenant, priority, deadline_ms))
    }

    /// Appends (and syncs) the `finished` record of a job. Called
    /// before the job table flips to done/failed, so a poll-visible
    /// outcome is always recoverable.
    ///
    /// # Errors
    ///
    /// Reports the failed write; the job record then replays as
    /// still-queued after a restart (it re-runs warm from the store).
    pub fn record_finished(&mut self, id: u64, outcome: &JournalOutcome) -> Result<(), String> {
        self.fence = self.fence.max(id);
        self.append(&finished_line(id, outcome))
    }

    /// Whether enough appends have accumulated that the caller should
    /// [`Self::compact`] with a snapshot of its job table.
    pub fn wants_compaction(&self) -> bool {
        self.appended_since_compact >= COMPACT_APPEND_THRESHOLD
    }

    /// Rewrites the journal to exactly `jobs` (the live job table —
    /// evicted jobs fall out). Failures leave the previous journal in
    /// place, which is always safe: it only holds *more* history.
    ///
    /// # Errors
    ///
    /// Reports the failed rewrite.
    pub fn compact(&mut self, jobs: &[Job]) -> Result<(), String> {
        let mut doc = String::new();
        let top = jobs.iter().map(|j| j.id).max().unwrap_or(0);
        if let Some(line) = fence_line(self.fence, top) {
            doc.push_str(&line);
        }
        for job in jobs {
            doc.push_str(&accepted_line(
                job.id,
                &job.spec,
                &job.tenant,
                job.priority,
                job.deadline_ms,
            ));
            let outcome = match &job.status {
                JobStatus::Done => Some(JournalOutcome::Done {
                    replayed: job.replayed,
                    executed: job.executed,
                    store_errors: job.store_errors,
                }),
                JobStatus::Failed(msg) => Some(JournalOutcome::Failed(msg.clone())),
                JobStatus::Queued | JobStatus::Running => None,
            };
            if let Some(outcome) = &outcome {
                doc.push_str(&finished_line(job.id, outcome));
            }
        }
        write_replace(&self.path, &doc)?;
        self.file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", self.path.display()))?;
        self.appended_since_compact = 0;
        self.compactions += 1;
        Ok(())
    }

    /// Records appended since startup.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Compactions performed since startup (including the one
    /// [`Self::open`] may have done).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    fn append(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("cannot append to journal {}: {e}", self.path.display()))?;
        self.appended += 1;
        self.appended_since_compact += 1;
        Ok(())
    }
}

/// The fence record compaction writes when the highest journaled id
/// is no longer carried by any retained job record: replay must keep
/// counting above it.
fn fence_line(fence: u64, top_job_id: u64) -> Option<String> {
    (fence > top_job_id).then(|| format!("{{\"kind\":\"fence\",\"max_id\":{fence}}}\n"))
}

fn accepted_line(
    id: u64,
    spec: &CampaignSpec,
    tenant: &str,
    priority: Priority,
    deadline_ms: Option<u64>,
) -> String {
    let mut line = format!(
        "{{\"kind\":\"accepted\",\"id\":{id},\"spec\":\"{}\"",
        escape(&spec.encode())
    );
    // Default-valued fields are omitted so journals from open daemons
    // stay byte-identical to the pre-tenancy format.
    if !tenant.is_empty() {
        line.push_str(&format!(",\"tenant\":\"{}\"", escape(tenant)));
    }
    if priority != Priority::Normal {
        line.push_str(&format!(",\"priority\":\"{}\"", priority.key()));
    }
    if let Some(budget) = deadline_ms {
        line.push_str(&format!(",\"deadline_ms\":{budget}"));
    }
    line.push_str("}\n");
    line
}

fn finished_line(id: u64, outcome: &JournalOutcome) -> String {
    match outcome {
        JournalOutcome::Done {
            replayed,
            executed,
            store_errors,
        } => format!(
            "{{\"kind\":\"finished\",\"id\":{id},\"status\":\"done\",\"replayed\":{replayed},\"executed\":{executed},\"store_errors\":{store_errors}}}\n",
        ),
        JournalOutcome::Failed(error) => format!(
            "{{\"kind\":\"finished\",\"id\":{id},\"status\":\"failed\",\"error\":\"{}\"}}\n",
            escape(error)
        ),
    }
}

/// Replaces `path` atomically and durably: write a temp file, sync its
/// data, rename it into place. The per-append `sync_data` guarantees
/// ("a 202'd job is always recoverable") would be worthless if a
/// compaction could be renamed over the journal with its data still in
/// the page cache when the host loses power.
fn write_replace(path: &Path, doc: &str) -> Result<(), String> {
    let tmp = path.with_extension("jsonl.tmp");
    let mut file =
        std::fs::File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    file.write_all(doc.as_bytes())
        .and_then(|()| file.sync_data())
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot move compacted journal into place: {e}"))
}

/// Replays journal text into jobs. Every undecodable or inconsistent
/// line is skipped with a diagnostic — replay can lose work to
/// corruption (it re-runs, warm, from the store) but can never invent
/// or alter an outcome.
fn parse_journal(text: &str) -> JournalReplay {
    let mut jobs: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
    let mut replay = JournalReplay::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let report = |e: String| format!("journal line {}: {e}", i + 1);
        let fields = match parse_flat_object(line) {
            Ok(fields) => fields,
            Err(e) => {
                replay.corrupt.push(report(e));
                continue;
            }
        };
        // Any record with a parseable id fences the id counter, even
        // when the rest of the record is corrupt — a restarted daemon
        // must never hand a client's old id to a new job.
        if let Ok(id) = get_u64(&fields, "id") {
            replay.max_id = replay.max_id.max(id);
        }
        let kind = fields.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        let result = match kind {
            "accepted" => replay_accepted(&fields, &mut jobs),
            "finished" => replay_finished(&fields, &mut jobs),
            "fence" => get_u64(&fields, "max_id").map(|id| {
                replay.max_id = replay.max_id.max(id);
            }),
            other => Err(format!("unknown record kind `{other}`")),
        };
        if let Err(e) = result {
            replay.corrupt.push(report(e));
        }
    }
    replay.jobs = jobs.into_values().collect();
    replay
}

fn replay_accepted(
    fields: &nfi_sfi::jsontext::JsonObject,
    jobs: &mut BTreeMap<u64, ReplayedJob>,
) -> Result<(), String> {
    let id = get_u64(fields, "id")?;
    let spec_text = get_str(fields, "spec")?;
    let spec = CampaignSpec::decode(&spec_text).map_err(|e| format!("job {id} spec: {e}"))?;
    if jobs.contains_key(&id) {
        return Err(format!("duplicate accepted record for job {id}"));
    }
    let tenant = get_opt_str(fields, "tenant")?.unwrap_or_default();
    let priority = match get_opt_str(fields, "priority")? {
        None => Priority::Normal,
        Some(key) => {
            Priority::parse(&key).ok_or_else(|| format!("job {id}: unknown priority `{key}`"))?
        }
    };
    let deadline_ms = get_opt_u64(fields, "deadline_ms")?;
    jobs.insert(
        id,
        ReplayedJob {
            id,
            spec,
            outcome: None,
            tenant,
            priority,
            deadline_ms,
        },
    );
    Ok(())
}

fn replay_finished(
    fields: &nfi_sfi::jsontext::JsonObject,
    jobs: &mut BTreeMap<u64, ReplayedJob>,
) -> Result<(), String> {
    let id = get_u64(fields, "id")?;
    let outcome = match get_str(fields, "status")?.as_str() {
        "done" => JournalOutcome::Done {
            replayed: get_usize(fields, "replayed")?,
            executed: get_usize(fields, "executed")?,
            store_errors: get_usize(fields, "store_errors")?,
        },
        "failed" => JournalOutcome::Failed(get_str(fields, "error")?),
        other => return Err(format!("job {id}: unknown finish status `{other}`")),
    };
    let job = jobs
        .get_mut(&id)
        .ok_or_else(|| format!("finished record for job {id} with no accepted record"))?;
    if job.outcome.is_some() {
        return Err(format!("duplicate finished record for job {id}"));
    }
    job.outcome = Some(outcome);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
def f():
    return 1
def test_f():
    assert f() == 1
";

    fn state_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfi-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(program: &str) -> CampaignSpec {
        nfi_core::plan_campaign(program, SOURCE, 7).unwrap()
    }

    #[test]
    fn round_trips_accepted_and_finished_records() {
        let dir = state_dir("roundtrip");
        let (mut journal, replay) = Journal::open(&dir).unwrap();
        assert!(replay.jobs.is_empty());
        journal
            .record_accepted(1, &spec("alpha"), "", Priority::Normal, None)
            .unwrap();
        journal
            .record_finished(
                1,
                &JournalOutcome::Done {
                    replayed: 0,
                    executed: 4,
                    store_errors: 0,
                },
            )
            .unwrap();
        journal
            .record_accepted(2, &spec("beta"), "", Priority::Normal, None)
            .unwrap();
        journal
            .record_finished(2, &JournalOutcome::Failed("boom".to_string()))
            .unwrap();
        journal
            .record_accepted(3, &spec("gamma"), "", Priority::Normal, None)
            .unwrap();
        assert_eq!(journal.appended(), 5);
        drop(journal);

        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert!(replay.corrupt.is_empty(), "{:?}", replay.corrupt);
        assert_eq!(replay.max_id, 3);
        assert_eq!(replay.jobs.len(), 3);
        assert_eq!(replay.jobs[0].spec.program, "alpha");
        assert_eq!(
            replay.jobs[0].outcome,
            Some(JournalOutcome::Done {
                replayed: 0,
                executed: 4,
                store_errors: 0,
            })
        );
        assert_eq!(
            replay.jobs[1].outcome,
            Some(JournalOutcome::Failed("boom".to_string()))
        );
        assert_eq!(replay.jobs[2].outcome, None, "job 3 must re-queue");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_trailing_accepted_line_is_skipped_not_trusted() {
        let dir = state_dir("truncated");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal
            .record_accepted(1, &spec("alpha"), "", Priority::Normal, None)
            .unwrap();
        journal
            .record_accepted(2, &spec("beta"), "", Priority::Normal, None)
            .unwrap();
        drop(journal);
        // Chop the tail mid-record, as a crash mid-append would.
        let path = Journal::path_in(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();

        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), 1, "only the intact record survives");
        assert_eq!(replay.jobs[0].spec.program, "alpha");
        assert_eq!(replay.corrupt.len(), 1, "{:?}", replay.corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_finished_line_requeues_the_job_instead_of_inventing_an_outcome() {
        let dir = state_dir("refinish");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal
            .record_accepted(1, &spec("alpha"), "", Priority::Normal, None)
            .unwrap();
        journal
            .record_finished(
                1,
                &JournalOutcome::Done {
                    replayed: 4,
                    executed: 0,
                    store_errors: 0,
                },
            )
            .unwrap();
        drop(journal);
        let path = Journal::path_in(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        // Garble the finished record only.
        let garbled = text.replace("\"status\":\"done\"", "\"status\":\"do");
        std::fs::write(&path, garbled).unwrap();

        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(
            replay.jobs[0].outcome, None,
            "a corrupt finish degrades to re-queue (re-plan), never a guessed outcome"
        );
        assert_eq!(replay.corrupt.len(), 1, "{:?}", replay.corrupt);
        assert_eq!(replay.max_id, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_finished_and_duplicate_records_are_corrupt() {
        let dir = state_dir("orphan");
        std::fs::create_dir_all(&dir).unwrap();
        let accepted = accepted_line(4, &spec("alpha"), "", Priority::Normal, None);
        let done = finished_line(
            4,
            &JournalOutcome::Done {
                replayed: 0,
                executed: 4,
                store_errors: 0,
            },
        );
        let orphan = finished_line(9, &JournalOutcome::Failed("gone".to_string()));
        std::fs::write(
            Journal::path_in(&dir),
            format!("{accepted}{accepted}{done}{done}{orphan}not json\n"),
        )
        .unwrap();
        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert!(replay.jobs[0].outcome.is_some());
        assert_eq!(replay.corrupt.len(), 4, "{:?}", replay.corrupt);
        assert_eq!(
            replay.max_id, 9,
            "ids from orphan finished records still fence new ids"
        );
        // The fence survives the open-time compaction that dropped the
        // orphan record itself: a second restart must not regress the
        // id floor and reuse id 9.
        let text = std::fs::read_to_string(Journal::path_in(&dir)).unwrap();
        assert!(
            text.contains("\"kind\":\"fence\",\"max_id\":9"),
            "compacted journal lost the fence: {text}"
        );
        let (_journal, again) = Journal::open(&dir).unwrap();
        assert_eq!(again.max_id, 9, "fence must persist across restarts");
        assert!(again.corrupt.is_empty(), "{:?}", again.corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_priority_and_deadline_fields_round_trip() {
        let dir = state_dir("tenancy");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal
            .record_accepted(1, &spec("alice:alpha"), "alice", Priority::High, Some(5000))
            .unwrap();
        journal
            .record_accepted(2, &spec("beta"), "", Priority::Normal, None)
            .unwrap();
        drop(journal);

        let text = std::fs::read_to_string(Journal::path_in(&dir)).unwrap();
        assert!(
            text.contains("\"tenant\":\"alice\",\"priority\":\"high\",\"deadline_ms\":5000"),
            "{text}"
        );
        let plain = text.lines().nth(1).unwrap();
        assert!(
            !plain.contains("tenant") && !plain.contains("priority") && !plain.contains("deadline"),
            "default-valued jobs keep the old record shape: {plain}"
        );

        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert!(replay.corrupt.is_empty(), "{:?}", replay.corrupt);
        assert_eq!(replay.jobs[0].tenant, "alice");
        assert_eq!(replay.jobs[0].priority, Priority::High);
        assert_eq!(replay.jobs[0].deadline_ms, Some(5000));
        assert_eq!(replay.jobs[1].tenant, "");
        assert_eq!(replay.jobs[1].priority, Priority::Normal);
        assert_eq!(replay.jobs[1].deadline_ms, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_format_lines_replay_with_default_tenancy_and_bad_priority_is_corrupt() {
        let dir = state_dir("oldformat");
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-tenancy journal: hand-built accepted + finished lines
        // with none of the new fields.
        let encoded = escape(&spec("alpha").encode());
        let old = format!(
            "{{\"kind\":\"accepted\",\"id\":1,\"spec\":\"{encoded}\"}}\n\
             {{\"kind\":\"finished\",\"id\":1,\"status\":\"done\",\"replayed\":0,\"executed\":4,\"store_errors\":0}}\n\
             {{\"kind\":\"accepted\",\"id\":2,\"spec\":\"{encoded}\",\"priority\":\"urgent\"}}\n"
        );
        std::fs::write(Journal::path_in(&dir), old).unwrap();
        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), 1, "the bad-priority record is skipped");
        assert_eq!(replay.jobs[0].tenant, "");
        assert_eq!(replay.jobs[0].priority, Priority::Normal);
        assert_eq!(replay.jobs[0].deadline_ms, None);
        assert!(replay.jobs[0].outcome.is_some());
        assert_eq!(replay.corrupt.len(), 1, "{:?}", replay.corrupt);
        assert_eq!(replay.max_id, 2, "even the corrupt record fences its id");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_compacts_finished_jobs_beyond_the_retention_cap() {
        let dir = state_dir("compact");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        let s = spec("alpha");
        let total = RETAINED_FINISHED_JOBS as u64 + 10;
        for id in 1..=total {
            journal
                .record_accepted(id, &s, "", Priority::Normal, None)
                .unwrap();
            journal
                .record_finished(
                    id,
                    &JournalOutcome::Done {
                        replayed: 0,
                        executed: 1,
                        store_errors: 0,
                    },
                )
                .unwrap();
        }
        drop(journal);
        let (journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), RETAINED_FINISHED_JOBS);
        assert_eq!(replay.jobs[0].id, 11, "oldest finished jobs fall out");
        assert_eq!(replay.max_id, total);
        assert_eq!(journal.compactions(), 1);
        // The file itself shrank to the retained records.
        let lines = std::fs::read_to_string(Journal::path_in(&dir))
            .unwrap()
            .lines()
            .count();
        assert_eq!(lines, RETAINED_FINISHED_JOBS * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
