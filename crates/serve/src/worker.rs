//! The worker pool: executes a job's store misses, either by spawning
//! `nfi campaign exec --shard i/n` child processes (the daemon's mode)
//! or in-process (tests and single-binary fallback).
//!
//! Process workers are the transport PR 3 left open: the orchestrator
//! already exchanged *encoded shard documents* with its in-process
//! workers, so promoting them to child processes only changes how the
//! bytes move — the spec subset travels as a plan file, each child
//! writes its shard document to a file, the pool decodes and hands the
//! runs back to [`nfi_core::Orchestrator::run_spec_with`] for the same
//! merge-and-persist path an offline `nfi campaign run` takes. That
//! shared tail is what makes a served document byte-identical to the
//! offline one.

use nfi_core::service::ShardRun;
use nfi_core::{IncrementalRun, Orchestrator};
use nfi_sfi::CampaignSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// How store misses execute.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// In-process worker threads (what `nfi campaign run` does).
    InProcess,
    /// Spawned `nfi campaign exec` child processes at the given binary.
    Spawn {
        /// Path of the `nfi` binary to spawn.
        nfi: PathBuf,
    },
}

impl WorkerMode {
    /// Spawn mode pointing at the currently running binary — the
    /// daemon's default, since `nfi serve` *is* the `nfi` binary.
    ///
    /// # Errors
    ///
    /// Reports a platform that cannot resolve its own executable path.
    pub fn current_exe() -> Result<WorkerMode, String> {
        std::env::current_exe()
            .map(|nfi| WorkerMode::Spawn { nfi })
            .map_err(|e| format!("cannot resolve the running binary: {e}"))
    }
}

/// A pool of `workers` execution slots over a scratch directory for
/// plan/shard-document exchange files.
#[derive(Debug)]
pub struct WorkerPool {
    /// Execution mode.
    pub mode: WorkerMode,
    /// Worker count (child processes or threads) per job.
    pub workers: usize,
    /// Scratch directory for the exchange files of spawned workers.
    pub work_dir: PathBuf,
}

impl WorkerPool {
    /// Runs one planned job through `orch` incrementally: replay from
    /// the store, execute the misses on this pool's workers, merge,
    /// persist the segment.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator and worker failures.
    pub fn run_job(
        &self,
        orch: &Orchestrator,
        job_id: u64,
        spec: &CampaignSpec,
    ) -> Result<IncrementalRun, String> {
        match &self.mode {
            WorkerMode::InProcess => orch.run_spec(spec),
            WorkerMode::Spawn { nfi } => orch.run_spec_with(spec, |spec, missing| {
                self.spawn_dispatch(nfi, job_id, spec, missing)
            }),
        }
    }

    /// Stripes `missing` over spawned `nfi campaign exec --shard i/n`
    /// children: the miss subset is written once as a self-contained
    /// plan file (units keep their global indices), every child
    /// executes one stride of it and writes its shard document, and the
    /// decoded documents come back re-widened to the full spec's unit
    /// count so they merge with the replayed run.
    fn spawn_dispatch(
        &self,
        nfi: &Path,
        job_id: u64,
        spec: &CampaignSpec,
        missing: &[usize],
    ) -> Result<Vec<ShardRun>, String> {
        use std::sync::atomic::{AtomicU64, Ordering};
        std::fs::create_dir_all(&self.work_dir)
            .map_err(|e| format!("cannot create {}: {e}", self.work_dir.display()))?;
        // Exchange files are dispatch-unique, not just job-unique: a
        // killed daemon can leave orphan children still writing
        // `job-N` files, and a restarted daemon re-runs job N against
        // the same work dir. The pid separates daemons; the counter
        // separates concurrent dispatches within one (two document
        // rebuilds of the same job, say).
        static DISPATCH_SEQ: AtomicU64 = AtomicU64::new(0);
        let tag = format!(
            "job-{job_id}.{}-{}",
            std::process::id(),
            DISPATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let plan_path = self.work_dir.join(format!("{tag}.plan.jsonl"));
        std::fs::write(&plan_path, spec.subset(missing).encode())
            .map_err(|e| format!("cannot write {}: {e}", plan_path.display()))?;
        let workers = self.workers.clamp(1, missing.len());

        let mut children = Vec::new();
        let mut failures = Vec::new();
        for index in 0..workers {
            let out_path = self
                .work_dir
                .join(format!("{tag}.shard-{index}-{workers}.jsonl"));
            // One engine thread per child: the parallelism lives in the
            // process fan-out, not nested thread pools.
            let spawned = Command::new(nfi)
                .args(["campaign", "exec", "--threads", "1", "--shard"])
                .arg(format!("{index}/{workers}"))
                .arg("--plan")
                .arg(&plan_path)
                .arg("--out")
                .arg(&out_path)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::piped())
                .spawn();
            match spawned {
                Ok(child) => children.push((index, out_path, child)),
                Err(e) => failures.push(format!(
                    "cannot spawn worker {index}/{workers} ({}): {e}",
                    nfi.display()
                )),
            }
        }

        let mut runs = Vec::new();
        for (index, out_path, child) in children {
            let worker = format!("worker {index}/{workers}");
            match child.wait_with_output() {
                Err(e) => failures.push(format!("{worker} did not exit cleanly: {e}")),
                Ok(output) if !output.status.success() => {
                    let stderr = String::from_utf8_lossy(&output.stderr);
                    failures.push(format!(
                        "{worker} exited with {}: {}",
                        output.status,
                        stderr.lines().next_back().unwrap_or("(no diagnostics)"),
                    ));
                }
                Ok(_) => match std::fs::read_to_string(&out_path)
                    .map_err(|e| format!("cannot read {}: {e}", out_path.display()))
                    .and_then(|doc| ShardRun::decode(&doc).map_err(|e| format!("document: {e}")))
                {
                    Ok(mut run) => {
                        // The child saw only the miss subset; re-widen
                        // its coverage denominator to the full spec so
                        // the runs merge with the replayed outcomes.
                        run.total = spec.units.len();
                        runs.push(run);
                    }
                    Err(e) => failures.push(format!("{worker} {e}")),
                },
            }
            let _ = std::fs::remove_file(&out_path);
        }
        let _ = std::fs::remove_file(&plan_path);
        if !failures.is_empty() {
            return Err(failures.join("; "));
        }
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
def add(a, b):
    return a + b
def test_add():
    assert add(1, 2) == 3
";

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfi-worker-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_process_pool_matches_the_plain_orchestrator() {
        let dir = scratch("inproc");
        let pool = WorkerPool {
            mode: WorkerMode::InProcess,
            workers: 2,
            work_dir: dir.join("tmp"),
        };
        let orch = Orchestrator {
            workers: 2,
            ..Orchestrator::new(&dir).unwrap()
        };
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let served = pool.run_job(&orch, 1, &spec).unwrap();

        let plain_dir = scratch("inproc-plain");
        let plain = Orchestrator::new(&plain_dir).unwrap();
        let direct = plain.run_program("demo", SOURCE).unwrap();
        assert_eq!(served.run.encode(), direct.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&plain_dir);
    }

    #[test]
    fn unspawnable_worker_binary_reports_not_panics() {
        let dir = scratch("nobin");
        let pool = WorkerPool {
            mode: WorkerMode::Spawn {
                nfi: dir.join("no-such-binary"),
            },
            workers: 2,
            work_dir: dir.join("tmp"),
        };
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let err = pool.run_job(&orch, 1, &spec).unwrap_err();
        assert!(err.contains("cannot spawn worker"), "{err}");
        // Nothing half-finished was persisted: a later in-process run
        // over the same state dir is a full cold run.
        let followup = Orchestrator::new(&dir).unwrap().run_spec(&spec).unwrap();
        assert_eq!(followup.executed, followup.units);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
