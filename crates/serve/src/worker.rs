//! The worker pool: executes a job's store misses, either by spawning
//! `nfi campaign exec --shard i/n` child processes (the daemon's mode)
//! or in-process (tests and single-binary fallback).
//!
//! Process workers are the transport PR 3 left open: the orchestrator
//! already exchanged *encoded shard documents* with its in-process
//! workers, so promoting them to child processes only changes how the
//! bytes move — the spec subset travels as a plan file, each child
//! writes its shard document to a file, the pool decodes and hands the
//! runs back to [`nfi_core::Orchestrator::run_spec_with`] for the same
//! merge-and-persist path an offline `nfi campaign run` takes. That
//! shared tail is what makes a served document byte-identical to the
//! offline one.
//!
//! Children are **supervised**, not merely awaited:
//!
//! * a watchdog kills any child that outlives its execution budget
//!   ([`WorkerPool::child_timeout`]) — a hung child no longer wedges a
//!   scheduler lane until daemon restart;
//! * a crashed or killed shard is retried on a fresh child up to
//!   [`WorkerPool::max_retries`] times, with capped exponential
//!   backoff plus deterministic jitter between attempts;
//! * a shard that exhausts its retries is **isolated**: its units
//!   re-run one child each (same retry budget), so one poisoned unit
//!   costs only its own outcome. Units that still fail are simply not
//!   covered — the job finishes with per-unit failure accounting
//!   (`failed_units`) and the saved segment stays partial, which is
//!   legal: a later run re-executes only the uncovered units, and the
//!   document endpoint falls back to read-only re-execution. Nothing
//!   fabricated is ever written to the store.
//!
//! Every supervision event is counted in the shared [`WorkerEvents`]
//! so `/v1/metrics` can report retries, watchdog kills, and failed
//! units.

use nfi_core::service::ShardRun;
use nfi_core::{IncrementalRun, Orchestrator};
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{trace, Span, SpanRecord};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the watchdog polls a running child.
const WATCHDOG_POLL: Duration = Duration::from_millis(10);
/// First retry backoff; doubles per retry up to [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Longest backoff between retries.
const BACKOFF_CAP: Duration = Duration::from_millis(2000);

/// How store misses execute.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// In-process worker threads (what `nfi campaign run` does).
    InProcess,
    /// Spawned `nfi campaign exec` child processes at the given binary.
    Spawn {
        /// Path of the `nfi` binary to spawn.
        nfi: PathBuf,
    },
}

impl WorkerMode {
    /// Spawn mode pointing at the currently running binary — the
    /// daemon's default, since `nfi serve` *is* the `nfi` binary.
    ///
    /// # Errors
    ///
    /// Reports a platform that cannot resolve its own executable path.
    pub fn current_exe() -> Result<WorkerMode, String> {
        std::env::current_exe()
            .map(|nfi| WorkerMode::Spawn { nfi })
            .map_err(|e| format!("cannot resolve the running binary: {e}"))
    }
}

/// Supervision counters shared between the pool and `/v1/metrics`.
#[derive(Debug, Default)]
pub struct WorkerEvents {
    /// Children retried on a fresh process (crash or watchdog kill).
    pub retries: AtomicU64,
    /// Children killed for exceeding their execution budget.
    pub watchdog_kills: AtomicU64,
    /// Units that exhausted every retry (shard and isolation level)
    /// and finished uncovered.
    pub failed_units: AtomicU64,
}

/// A pool of `workers` execution slots over a scratch directory for
/// plan/shard-document exchange files.
#[derive(Debug)]
pub struct WorkerPool {
    /// Execution mode.
    pub mode: WorkerMode,
    /// Worker count (child processes or threads) per job.
    pub workers: usize,
    /// Scratch directory for the exchange files of spawned workers.
    pub work_dir: PathBuf,
    /// Watchdog budget per child attempt (`None` = never killed).
    pub child_timeout: Option<Duration>,
    /// Fresh-child retries after a failed attempt (0 = one attempt).
    pub max_retries: usize,
    /// Shared supervision counters.
    pub events: Arc<WorkerEvents>,
}

/// What one supervised shard attempt chain produced.
enum ShardResult {
    /// The shard document, decoded and re-widened.
    Run(ShardRun),
    /// Retries exhausted: isolate these global unit indices
    /// one-child-each (the diagnostic rides along).
    Isolate(Vec<usize>, String),
    /// Unrecoverable dispatch error (nothing to isolate — e.g. the
    /// plan file itself could not be written).
    Fatal(String),
}

impl WorkerPool {
    /// A pool with supervision disabled-by-default knobs: no child
    /// timeout, two retries.
    pub fn new(mode: WorkerMode, workers: usize, work_dir: PathBuf) -> WorkerPool {
        WorkerPool {
            mode,
            workers,
            work_dir,
            child_timeout: None,
            max_retries: 2,
            events: Arc::new(WorkerEvents::default()),
        }
    }

    /// Runs one planned job through `orch` incrementally: replay from
    /// the store, execute the misses on this pool's workers, merge,
    /// persist the segment.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator failures and unrecoverable worker
    /// failures. A child crash/hang is *not* unrecoverable — it is
    /// retried and, past the retry budget, degraded to per-unit
    /// failure outcomes.
    pub fn run_job(
        &self,
        orch: &Orchestrator,
        job_id: u64,
        spec: &CampaignSpec,
    ) -> Result<IncrementalRun, String> {
        match &self.mode {
            WorkerMode::InProcess => orch.run_spec(spec),
            WorkerMode::Spawn { nfi } => orch.run_spec_with(spec, |spec, missing| {
                self.spawn_dispatch(nfi, job_id, spec, missing)
            }),
        }
    }

    /// Stripes `missing` over spawned `nfi campaign exec --shard i/n`
    /// children: the miss subset is written once as a self-contained
    /// plan file (units keep their global indices), every child
    /// executes one stride of it and writes its shard document, and the
    /// decoded documents come back re-widened to the full spec's unit
    /// count so they merge with the replayed run.
    fn spawn_dispatch(
        &self,
        nfi: &Path,
        job_id: u64,
        spec: &CampaignSpec,
        missing: &[usize],
    ) -> Result<Vec<ShardRun>, String> {
        std::fs::create_dir_all(&self.work_dir)
            .map_err(|e| format!("cannot create {}: {e}", self.work_dir.display()))?;
        // Exchange files are dispatch-unique, not just job-unique: a
        // killed daemon can leave orphan children still writing
        // `job-N` files, and a restarted daemon re-runs job N against
        // the same work dir. The pid separates daemons; the counter
        // separates concurrent dispatches within one (two document
        // rebuilds of the same job, say).
        static DISPATCH_SEQ: AtomicU64 = AtomicU64::new(0);
        let tag = format!(
            "job-{job_id}.{}-{}",
            std::process::id(),
            DISPATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let subset = spec.subset(missing);
        let plan_path = self.work_dir.join(format!("{tag}.plan.jsonl"));
        std::fs::write(&plan_path, subset.encode())
            .map_err(|e| format!("cannot write {}: {e}", plan_path.display()))?;
        let workers = self.workers.clamp(1, missing.len());

        // Shards run (and retry) concurrently; each thread owns one
        // stride of the miss subset end to end. Supervisor threads
        // inherit the dispatching lane's trace context so each child's
        // span (and the spans the child echoes back) nest under the
        // execute phase.
        let context = trace::current_context();
        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|shard| {
                    let (tag, plan_path, subset) = (&tag, &plan_path, &subset);
                    let context = context.clone();
                    scope.spawn(move || {
                        let _ctx = context.map(|(t, parent)| trace::push_context(t, parent));
                        self.run_shard(nfi, tag, plan_path, subset, shard, workers, spec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        ShardResult::Fatal("worker supervisor thread panicked".to_string())
                    })
                })
                .collect()
        });

        let mut runs = Vec::new();
        let mut fatal = Vec::new();
        let mut isolate: Vec<(usize, String)> = Vec::new();
        for result in results {
            match result {
                ShardResult::Run(run) => runs.push(run),
                ShardResult::Isolate(units, why) => {
                    isolate.extend(units.into_iter().map(|u| (u, why.clone())))
                }
                ShardResult::Fatal(e) => fatal.push(e),
            }
        }
        if fatal.is_empty() && !isolate.is_empty() {
            runs.extend(self.isolate_units(nfi, &tag, spec, &isolate));
        }
        let _ = std::fs::remove_file(&plan_path);
        if !fatal.is_empty() {
            return Err(fatal.join("; "));
        }
        Ok(runs)
    }

    /// One shard's attempt chain: run a fresh child per attempt with
    /// backoff between attempts; past the budget, hand the shard's
    /// units over for per-unit isolation.
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        nfi: &Path,
        tag: &str,
        plan_path: &Path,
        subset: &CampaignSpec,
        shard: usize,
        of: usize,
        spec: &CampaignSpec,
    ) -> ShardResult {
        let label = format!("worker {shard}/{of}");
        let mut last_err = String::new();
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.events.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff_delay(tag, shard, attempt));
            }
            let out_path = self
                .work_dir
                .join(format!("{tag}.shard-{shard}-{of}.a{attempt}.jsonl"));
            let outcome = self.run_child(
                nfi,
                plan_path,
                &out_path,
                &format!("{shard}/{of}"),
                &label,
                spec.units.len(),
            );
            let _ = std::fs::remove_file(&out_path);
            match outcome {
                Ok(run) => return ShardResult::Run(run),
                Err(e) => last_err = e,
            }
        }
        // The stride this shard owned: positions p of the subset with
        // p % of == shard, mapped back to global unit indices (the
        // same stripe `nfi campaign exec --shard` executes).
        let units: Vec<usize> = subset
            .units
            .iter()
            .enumerate()
            .filter(|(p, _)| p % of == shard)
            .map(|(_, u)| u.index)
            .collect();
        ShardResult::Isolate(
            units,
            format!(
                "{label} failed {} attempt(s): {last_err}",
                self.max_retries + 1
            ),
        )
    }

    /// Per-unit isolation: every unit of an exhausted shard re-runs on
    /// its own single-unit child (fresh retry budget each). Units that
    /// still fail are counted and left uncovered — never fabricated.
    fn isolate_units(
        &self,
        nfi: &Path,
        tag: &str,
        spec: &CampaignSpec,
        units: &[(usize, String)],
    ) -> Vec<ShardRun> {
        let mut runs = Vec::new();
        for (unit, why) in units {
            let plan_path = self.work_dir.join(format!("{tag}.unit-{unit}.plan.jsonl"));
            if std::fs::write(&plan_path, spec.subset(&[*unit]).encode()).is_err() {
                self.events.failed_units.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut recovered = None;
            for attempt in 0..=self.max_retries {
                if attempt > 0 {
                    self.events.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff_delay(tag, *unit, attempt));
                }
                let out_path = self
                    .work_dir
                    .join(format!("{tag}.unit-{unit}.a{attempt}.jsonl"));
                let outcome = self.run_child(
                    nfi,
                    &plan_path,
                    &out_path,
                    "0/1",
                    &format!("isolated worker for unit {unit} ({why})"),
                    spec.units.len(),
                );
                let _ = std::fs::remove_file(&out_path);
                if let Ok(run) = outcome {
                    recovered = Some(run);
                    break;
                }
            }
            let _ = std::fs::remove_file(&plan_path);
            match recovered {
                Some(run) => runs.push(run),
                None => {
                    self.events.failed_units.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        runs
    }

    /// One supervised child: spawn, drain stderr on a side thread,
    /// poll under the watchdog budget, decode the shard document.
    #[allow(clippy::too_many_arguments)]
    fn run_child(
        &self,
        nfi: &Path,
        plan_path: &Path,
        out_path: &Path,
        shard_arg: &str,
        label: &str,
        total_units: usize,
    ) -> Result<ShardRun, String> {
        // One engine thread per child: the parallelism lives in the
        // process fan-out, not nested thread pools.
        let mut command = Command::new(nfi);
        command
            .args(["campaign", "exec", "--threads", "1", "--shard"])
            .arg(shard_arg)
            .arg("--plan")
            .arg(plan_path)
            .arg("--out")
            .arg(out_path)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        // Hand the child this span's id via NFI_TRACE; it echoes its
        // own spans back as NFI-SPAN stderr lines, re-anchored below.
        let child_span = Span::enter("worker_child");
        let trace_ctx = trace::current_context().filter(|_| child_span.id() > 0);
        let spawned_at_us = trace_ctx.as_ref().map(|(t, _)| t.elapsed_us()).unwrap_or(0);
        if let Some((t, _)) = &trace_ctx {
            command.env(trace::TRACE_ENV, t.context_env(child_span.id()));
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("cannot spawn {label} ({}): {e}", nfi.display()))?;
        // Drain stderr concurrently so a chatty child cannot deadlock
        // against a full pipe while the watchdog polls. The drain
        // reports through a channel rather than a join: a killed
        // child's orphaned grandchildren can inherit the pipe's write
        // end and keep it open indefinitely, and the watchdog's whole
        // point is that nothing a misbehaving child does stalls the
        // lane. On the grace-period timeout the thread is abandoned to
        // exit whenever the last writer finally closes the pipe.
        let drain = child.stderr.take().map(|mut pipe| {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                use std::io::Read;
                let mut buf = Vec::new();
                let _ = pipe.read_to_end(&mut buf);
                let _ = tx.send(buf);
            });
            rx
        });
        let verdict = self.watch(&mut child, label);
        let stderr = drain
            .and_then(|rx| rx.recv_timeout(Duration::from_millis(200)).ok())
            .map(|buf| String::from_utf8_lossy(&buf).into_owned())
            .unwrap_or_default();
        // Re-anchor the spans the child echoed (even from a failed
        // attempt — its partial timeline is exactly what a trace is
        // for): ids shift into a reserved range, the child's roots
        // attach under this attempt's span, and starts shift by the
        // spawn offset so one monotonic timeline covers both processes.
        if let Some((t, _)) = &trace_ctx {
            let spans: Vec<SpanRecord> =
                stderr.lines().filter_map(trace::parse_span_line).collect();
            if let Some(width) = spans.iter().map(|s| s.id).max() {
                let base = t.reserve_ids(width);
                for span in &spans {
                    t.import_child(span, child_span.id(), base, spawned_at_us);
                }
            }
        }
        let status = verdict?;
        if !status.success() {
            return Err(format!(
                "{label} exited with {status}: {}",
                stderr
                    .lines()
                    .rfind(|l| !l.starts_with(nfi_telemetry::trace::SPAN_LINE_PREFIX))
                    .unwrap_or("(no diagnostics)"),
            ));
        }
        let mut run = std::fs::read_to_string(out_path)
            .map_err(|e| format!("{label}: cannot read {}: {e}", out_path.display()))
            .and_then(|doc| ShardRun::decode(&doc).map_err(|e| format!("{label} document: {e}")))?;
        // The child saw only the miss subset; re-widen its coverage
        // denominator to the full spec so the runs merge with the
        // replayed outcomes.
        run.total = total_units;
        Ok(run)
    }

    /// Polls a child to completion or kills it at the watchdog budget.
    fn watch(&self, child: &mut Child, label: &str) -> Result<std::process::ExitStatus, String> {
        let started = Instant::now();
        loop {
            match child.try_wait() {
                Ok(Some(status)) => return Ok(status),
                Ok(None) => {
                    if let Some(budget) = self.child_timeout {
                        if started.elapsed() >= budget {
                            let _ = child.kill();
                            let _ = child.wait();
                            self.events.watchdog_kills.fetch_add(1, Ordering::Relaxed);
                            return Err(format!(
                                "watchdog killed {label} after its {}ms budget",
                                budget.as_millis()
                            ));
                        }
                    }
                    std::thread::sleep(WATCHDOG_POLL);
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!("{label} did not exit cleanly: {e}"));
                }
            }
        }
    }
}

/// Backoff before retry `attempt` (1-based): `BACKOFF_BASE`
/// doubling per attempt, capped, plus a deterministic jitter hashed
/// from the dispatch tag and slot — concurrent retries spread out
/// instead of thundering back in lockstep, and reproducibly so.
fn backoff_delay(tag: &str, slot: usize, attempt: usize) -> Duration {
    let base = BACKOFF_BASE
        .saturating_mul(1u32 << (attempt - 1).min(10) as u32)
        .min(BACKOFF_CAP);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in tag
        .as_bytes()
        .iter()
        .chain(slot.to_le_bytes().iter())
        .chain(attempt.to_le_bytes().iter())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let jitter_cap = (base.as_millis() as u64 / 2).max(1);
    base + Duration::from_millis(h % jitter_cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
def add(a, b):
    return a + b
def test_add():
    assert add(1, 2) == 3
";

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nfi-worker-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A shell script posing as the `nfi` binary.
    #[cfg(unix)]
    fn fake_nfi(dir: &Path, body: &str) -> PathBuf {
        use std::os::unix::fs::PermissionsExt;
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join("fake-nfi.sh");
        std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).unwrap();
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
        path
    }

    #[test]
    fn in_process_pool_matches_the_plain_orchestrator() {
        let dir = scratch("inproc");
        let pool = WorkerPool::new(WorkerMode::InProcess, 2, dir.join("tmp"));
        let orch = Orchestrator {
            workers: 2,
            ..Orchestrator::new(&dir).unwrap()
        };
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let served = pool.run_job(&orch, 1, &spec).unwrap();

        let plain_dir = scratch("inproc-plain");
        let plain = Orchestrator::new(&plain_dir).unwrap();
        let direct = plain.run_program("demo", SOURCE).unwrap();
        assert_eq!(served.run.encode(), direct.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&plain_dir);
    }

    #[test]
    fn unspawnable_worker_binary_degrades_to_per_unit_failures() {
        let dir = scratch("nobin");
        let pool = WorkerPool {
            max_retries: 0,
            ..WorkerPool::new(
                WorkerMode::Spawn {
                    nfi: dir.join("no-such-binary"),
                },
                2,
                dir.join("tmp"),
            )
        };
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        // Every shard and every isolated unit fails to spawn: the job
        // still *finishes* — with zero coverage — instead of erroring.
        let run = pool.run_job(&orch, 1, &spec).unwrap();
        assert_eq!(run.executed, 0, "nothing could execute");
        assert_eq!(run.replayed, 0);
        assert_eq!(
            pool.events.failed_units.load(Ordering::Relaxed),
            spec.units.len() as u64,
            "every unit surfaced as failed"
        );
        // Nothing fabricated was persisted: a later in-process run
        // over the same state dir is a full cold run.
        let followup = Orchestrator::new(&dir).unwrap().run_spec(&spec).unwrap();
        assert_eq!(followup.executed, followup.units);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(unix)]
    fn watchdog_kills_a_hung_child_and_counts_it() {
        let dir = scratch("hang");
        let nfi = fake_nfi(&dir, "sleep 60");
        let pool = WorkerPool {
            child_timeout: Some(Duration::from_millis(80)),
            max_retries: 1,
            ..WorkerPool::new(WorkerMode::Spawn { nfi }, 1, dir.join("tmp"))
        };
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let started = Instant::now();
        let run = pool.run_job(&orch, 1, &spec).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the watchdog, not the sleep, bounded the run"
        );
        assert_eq!(run.executed, 0, "a hung child covers nothing");
        let kills = pool.events.watchdog_kills.load(Ordering::Relaxed);
        // Shard attempts (1 + 1 retry) plus per-unit isolation
        // attempts are each killed once.
        assert!(kills >= 2, "expected >= 2 watchdog kills, saw {kills}");
        assert!(pool.events.retries.load(Ordering::Relaxed) >= 1);
        assert_eq!(
            pool.events.failed_units.load(Ordering::Relaxed),
            spec.units.len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(unix)]
    fn a_crashing_child_retries_with_backoff_then_isolates() {
        let dir = scratch("crash");
        let nfi = fake_nfi(&dir, "exit 7");
        let pool = WorkerPool {
            max_retries: 1,
            ..WorkerPool::new(WorkerMode::Spawn { nfi }, 2, dir.join("tmp"))
        };
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let run = pool.run_job(&orch, 1, &spec).unwrap();
        assert_eq!(run.executed, 0);
        let retries = pool.events.retries.load(Ordering::Relaxed);
        assert!(retries >= 2, "both shards retried at least once: {retries}");
        assert_eq!(
            pool.events.failed_units.load(Ordering::Relaxed),
            spec.units.len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_grows_doubling_capped_and_jitters_deterministically() {
        let a1 = backoff_delay("tag", 0, 1);
        let a2 = backoff_delay("tag", 0, 2);
        let a9 = backoff_delay("tag", 0, 9);
        assert!(a1 >= BACKOFF_BASE && a1 < BACKOFF_BASE * 2);
        assert!(a2 >= BACKOFF_BASE * 2 && a2 < BACKOFF_BASE * 3);
        assert!(a9 >= BACKOFF_CAP && a9 <= BACKOFF_CAP + BACKOFF_CAP / 2);
        assert_eq!(
            backoff_delay("tag", 3, 1),
            backoff_delay("tag", 3, 1),
            "jitter is a pure function of (tag, slot, attempt)"
        );
        assert_ne!(
            backoff_delay("tag", 0, 1),
            backoff_delay("tag", 1, 1),
            "different slots jitter apart"
        );
    }
}
