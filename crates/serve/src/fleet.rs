//! The worker fleet: remote `nfi worker` nodes as a dispatch tier.
//!
//! [`worker::WorkerPool`](crate::worker::WorkerPool) promoted the
//! orchestrator's in-process workers to supervised child processes;
//! this module promotes them across the network. The seam is the same
//! one both earlier tiers use — [`Orchestrator::run_spec_with`] hands
//! the dispatcher a self-contained miss set, the dispatcher returns
//! decoded [`ShardRun`]s, and the orchestrator merges and persists
//! them — so a document produced by remote workers is byte-identical
//! to the local-process and offline paths by construction.
//!
//! The protocol is **pull-based** over the daemon's existing HTTP/1.1
//! codec (no new listener, no tokio):
//!
//! * a worker `POST /v1/workers` registers with its machine
//!   fingerprint (refused on mismatch — a different build or machine
//!   configuration would break byte parity) and receives a
//!   `(worker id, generation)` identity plus a heartbeat interval;
//! * it heartbeats `POST /v1/workers/:id/heartbeat` from a side
//!   thread, so liveness survives long executions;
//! * it pulls assignments with `POST /v1/workers/:id/poll`. A
//!   dispatching lane hash-shards its miss set into **more chunks
//!   than live workers** ([`OVERSHARD`]), so fast workers naturally
//!   pull more chunks — work-stealing without a stealing protocol;
//! * it executes the chunk's subset spec through the ordinary engine
//!   and streams the shard document (plus its `NFI-SPAN` trace lines)
//!   back with `POST /v1/workers/:id/result`.
//!
//! Worker death is invisible to clients:
//!
//! * a worker silent past the heartbeat timeout is marked **lost**;
//!   its leases requeue and the next poll from any live worker picks
//!   them up;
//! * an assignment requeued past its cap — or stranded with no live
//!   workers at all — is executed **locally** by the blocked lane, so
//!   every accepted job completes even if the whole fleet dies
//!   mid-campaign;
//! * results are **first-wins idempotent**: execution is at-least-once
//!   (a timed-out worker may still finish), but only the first
//!   document for an assignment is kept, so [`nfi_core::merge`] never
//!   sees overlapping coverage and the bytes never depend on how many
//!   times a chunk ran;
//! * a worker that rejoins re-registers under a bumped **generation**;
//!   traffic from its stale generation is refused (and counted), so a
//!   zombie process cannot corrupt its successor's leases.
//!
//! Every protocol event is counted in [`FleetEvents`] and surfaces as
//! the `fleet` section of `/v1/metrics` and the `nfi_fleet_*`
//! Prometheus families.

use nfi_core::service::{self, ShardRun};
use nfi_core::{FleetStats, Orchestrator};
use nfi_sfi::CampaignSpec;
use nfi_telemetry::{log::log, trace, Level, Span, SpanRecord, Trace};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Chunks created per live worker at dispatch time. Over-sharding is
/// what makes pull-based assignment steal work: a straggler holds one
/// small chunk while faster workers drain the rest of the pool.
pub const OVERSHARD: usize = 4;

/// How long a blocked dispatch waits between lease scans. Requeue
/// latency after a heartbeat timeout is bounded by timeout + this.
const LEASE_SCAN: Duration = Duration::from_millis(50);

/// Protocol counters shared between the fleet and `/v1/metrics`.
#[derive(Debug, Default)]
pub struct FleetEvents {
    /// Successful registrations (rejoins included).
    pub registrations: AtomicU64,
    /// Accepted heartbeats.
    pub heartbeats: AtomicU64,
    /// Accepted polls (with or without an assignment to hand out).
    pub polls: AtomicU64,
    /// Workers marked lost after a heartbeat timeout.
    pub workers_lost: AtomicU64,
    /// Assignments created by dispatching lanes.
    pub dispatched: AtomicU64,
    /// Assignments completed by a worker result.
    pub completed: AtomicU64,
    /// Requeues (heartbeat loss, rejoin, error result, bad document).
    pub requeued: AtomicU64,
    /// Worker-reported execution failures and undecodable documents.
    pub failed: AtomicU64,
    /// Results discarded because the assignment was already done (or
    /// already harvested) — the at-least-once duplicates.
    pub duplicate_results: AtomicU64,
    /// Requests refused for carrying a stale generation (or arriving
    /// from a lost worker that must re-register first).
    pub stale_rejections: AtomicU64,
    /// Assignments the dispatching lane executed locally (requeue cap
    /// exhausted, or no live workers left).
    pub local_fallbacks: AtomicU64,
}

/// Why a worker request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No such worker id (daemon restarted, or never registered).
    Unknown,
    /// The generation is stale, or the worker was marked lost; it must
    /// re-register before issuing further requests.
    Stale,
    /// Registration refused: capability mismatch.
    Mismatch(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Unknown => write!(f, "unknown worker (register first)"),
            FleetError::Stale => write!(f, "stale registration (re-register to rejoin)"),
            FleetError::Mismatch(why) => write!(f, "{why}"),
        }
    }
}

/// A successful registration.
#[derive(Debug, Clone, Copy)]
pub struct Registration {
    /// The worker's id (stable across rejoins of the same name).
    pub worker: u64,
    /// The registration generation; every subsequent request must
    /// carry it, and a rejoin bumps it.
    pub generation: u64,
    /// The heartbeat interval the worker should keep.
    pub heartbeat_ms: u64,
}

/// What one poll handed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Assignment id to report the result under.
    pub assignment: u64,
    /// The job the assignment belongs to (diagnostics).
    pub job: u64,
    /// The encoded subset [`CampaignSpec`] to execute.
    pub plan: String,
    /// `NFI_TRACE`-format context the worker's spans re-anchor under.
    pub context: Option<String>,
}

/// How [`Fleet::complete`] classified a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First result for the assignment — accepted.
    Accepted,
    /// The assignment was already done (or gone): discarded, counted.
    Duplicate,
}

#[derive(Debug)]
struct WorkerEntry {
    generation: u64,
    last_seen: Instant,
    lost: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum AssignState {
    Pending,
    Leased { worker: u64, since: Instant },
    Done,
}

#[derive(Debug)]
struct Assignment {
    id: u64,
    job: u64,
    /// Global unit indices of this chunk (the local-fallback path
    /// re-subsets the job's spec from these instead of re-decoding).
    indices: Vec<usize>,
    /// Encoded subset spec handed to the worker.
    plan: String,
    /// `NFI_TRACE` context string for the worker.
    context: Option<String>,
    state: AssignState,
    requeues: u32,
    /// Pre-allocated span id in the job trace (0 = untraced).
    span: u64,
    /// Trace-epoch offset when the assignment was created.
    dispatched_at_us: u64,
    /// First accepted result: (shard document, raw `NFI-SPAN` lines).
    result: Option<(String, Vec<String>)>,
}

#[derive(Debug, Default)]
struct FleetInner {
    workers: HashMap<u64, WorkerEntry>,
    by_name: HashMap<String, u64>,
    assignments: BTreeMap<u64, Assignment>,
}

/// The shared worker registry + assignment pool. One per daemon; the
/// HTTP handler threads mutate it through the protocol methods while
/// blocked scheduler lanes wait on it in [`Fleet::dispatch`].
#[derive(Debug)]
pub struct Fleet {
    /// Expected machine fingerprint; registrations must match it.
    expected_fp: u64,
    /// Silence budget before a worker is marked lost.
    heartbeat_timeout: Duration,
    /// Requeues per assignment before the lane runs it locally.
    max_requeues: u32,
    /// Optional per-lease execution budget (`None` = heartbeat-only
    /// failure detection).
    lease_timeout: Option<Duration>,
    /// Protocol counters.
    pub events: FleetEvents,
    inner: Mutex<FleetInner>,
    changed: Condvar,
    next_worker: AtomicU64,
    next_assignment: AtomicU64,
}

impl Fleet {
    /// A fleet that accepts workers whose machine fingerprint is
    /// `expected_fp` (the scheduler's own — byte parity requires both
    /// sides to execute under the same machine configuration).
    pub fn new(
        expected_fp: u64,
        heartbeat_timeout: Duration,
        max_requeues: u32,
        lease_timeout: Option<Duration>,
    ) -> Fleet {
        Fleet {
            expected_fp,
            heartbeat_timeout,
            max_requeues,
            lease_timeout,
            events: FleetEvents::default(),
            inner: Mutex::new(FleetInner::default()),
            changed: Condvar::new(),
            next_worker: AtomicU64::new(0),
            next_assignment: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FleetInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or re-registers) a worker by name.
    ///
    /// A name that registered before keeps its worker id but bumps its
    /// **generation**: the old generation's polls, heartbeats, and
    /// results are refused from then on, and any leases it held
    /// requeue immediately — a crashed-and-restarted worker rejoins
    /// cleanly while its zombie predecessor is fenced off.
    ///
    /// # Errors
    ///
    /// [`FleetError::Mismatch`] when `fingerprint` differs from the
    /// scheduler's machine fingerprint.
    pub fn register(&self, name: &str, fingerprint: u64) -> Result<Registration, FleetError> {
        if fingerprint != self.expected_fp {
            return Err(FleetError::Mismatch(format!(
                "machine fingerprint {fingerprint:016x} does not match the scheduler's \
                 {:016x}; run the same nfi build with the same machine configuration",
                self.expected_fp
            )));
        }
        let mut inner = self.lock();
        let worker = match inner.by_name.get(name) {
            Some(&id) => id,
            None => {
                let id = self.next_worker.fetch_add(1, Ordering::Relaxed) + 1;
                inner.by_name.insert(name.to_string(), id);
                id
            }
        };
        let generation = inner.workers.get(&worker).map_or(1, |w| w.generation + 1);
        self.requeue_leases_of(&mut inner, worker);
        inner.workers.insert(
            worker,
            WorkerEntry {
                generation,
                last_seen: Instant::now(),
                lost: false,
            },
        );
        self.events.registrations.fetch_add(1, Ordering::Relaxed);
        self.changed.notify_all();
        log(
            Level::Info,
            "worker_registered",
            &[
                ("name", name),
                ("worker", &worker.to_string()),
                ("generation", &generation.to_string()),
            ],
        );
        Ok(Registration {
            worker,
            generation,
            heartbeat_ms: (self.heartbeat_timeout.as_millis() as u64 / 4).max(50),
        })
    }

    /// Accepts a heartbeat, refreshing the worker's liveness.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unknown`] for an unregistered id,
    /// [`FleetError::Stale`] for a stale generation or a worker
    /// already marked lost (it must re-register).
    pub fn heartbeat(&self, worker: u64, generation: u64) -> Result<(), FleetError> {
        let mut inner = self.lock();
        self.validate(&mut inner, worker, generation)?;
        self.events.heartbeats.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Hands out the oldest pending assignment, if any.
    ///
    /// Polling also counts as liveness. Assignments past the requeue
    /// cap are never handed out — they belong to the dispatching
    /// lane's local fallback.
    ///
    /// # Errors
    ///
    /// Same contract as [`Fleet::heartbeat`].
    pub fn poll(&self, worker: u64, generation: u64) -> Result<Option<Lease>, FleetError> {
        let mut inner = self.lock();
        self.reap(&mut inner);
        self.validate(&mut inner, worker, generation)?;
        self.events.polls.fetch_add(1, Ordering::Relaxed);
        let max_requeues = self.max_requeues;
        let lease = inner
            .assignments
            .values_mut()
            .find(|a| a.state == AssignState::Pending && a.requeues <= max_requeues)
            .map(|a| {
                a.state = AssignState::Leased {
                    worker,
                    since: Instant::now(),
                };
                Lease {
                    assignment: a.id,
                    job: a.job,
                    plan: a.plan.clone(),
                    context: a.context.clone(),
                }
            });
        Ok(lease)
    }

    /// Records a worker's result for an assignment.
    ///
    /// **First result wins**: a success for a not-yet-done assignment
    /// is stored (even if the lease has since moved to another worker
    /// — that is the at-least-once race, and taking the earlier result
    /// wastes less work); anything after that is counted and
    /// discarded, so merged documents never depend on how many times a
    /// chunk executed. An error result requeues the assignment if this
    /// worker still holds its lease.
    ///
    /// A lost (timed-out) worker with a current generation may still
    /// deliver — that is exactly the duplicate path — but it must
    /// re-register before polling again.
    ///
    /// # Errors
    ///
    /// [`FleetError::Unknown`] / [`FleetError::Stale`] as in
    /// [`Fleet::heartbeat`] (except that lost workers are allowed
    /// through here).
    pub fn complete(
        &self,
        worker: u64,
        generation: u64,
        assignment: u64,
        outcome: Result<(String, Vec<String>), String>,
    ) -> Result<Completion, FleetError> {
        let mut inner = self.lock();
        match inner.workers.get(&worker) {
            None => return Err(FleetError::Unknown),
            Some(w) if w.generation != generation => {
                self.events.stale_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(FleetError::Stale);
            }
            Some(_) => {}
        }
        let Some(a) = inner.assignments.get_mut(&assignment) else {
            // Already harvested by its lane (or the job is gone): a
            // classic late duplicate.
            self.events
                .duplicate_results
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Completion::Duplicate);
        };
        if a.state == AssignState::Done {
            self.events
                .duplicate_results
                .fetch_add(1, Ordering::Relaxed);
            return Ok(Completion::Duplicate);
        }
        match outcome {
            Ok(result) => {
                a.result = Some(result);
                a.state = AssignState::Done;
                self.events.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(why) => {
                self.events.failed.fetch_add(1, Ordering::Relaxed);
                log(
                    Level::Warn,
                    "assignment_failed",
                    &[
                        ("assignment", &assignment.to_string()),
                        ("worker", &worker.to_string()),
                        ("error", &why),
                    ],
                );
                // Requeue only if this worker still holds the lease —
                // a late error after the lease moved on must not
                // clobber the new holder's claim.
                if matches!(&a.state, AssignState::Leased { worker: w, .. } if *w == worker) {
                    a.state = AssignState::Pending;
                    a.requeues += 1;
                    self.events.requeued.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.changed.notify_all();
        Ok(Completion::Accepted)
    }

    /// Live (registered, not lost) worker count. The scheduler routes
    /// a job to the remote tier exactly when this is nonzero.
    pub fn live_workers(&self) -> usize {
        let mut inner = self.lock();
        self.reap(&mut inner);
        inner.workers.values().filter(|w| !w.lost).count()
    }

    /// A metrics snapshot (marks timed-out workers lost first, so the
    /// gauge is current even on an idle daemon).
    pub fn stats(&self) -> FleetStats {
        let workers_live = self.live_workers() as u64;
        let e = &self.events;
        FleetStats {
            workers_live,
            workers_lost: e.workers_lost.load(Ordering::Relaxed),
            registrations: e.registrations.load(Ordering::Relaxed),
            heartbeats: e.heartbeats.load(Ordering::Relaxed),
            polls: e.polls.load(Ordering::Relaxed),
            assignments_dispatched: e.dispatched.load(Ordering::Relaxed),
            assignments_completed: e.completed.load(Ordering::Relaxed),
            assignments_requeued: e.requeued.load(Ordering::Relaxed),
            assignments_failed: e.failed.load(Ordering::Relaxed),
            duplicate_results: e.duplicate_results.load(Ordering::Relaxed),
            stale_rejections: e.stale_rejections.load(Ordering::Relaxed),
            local_fallbacks: e.local_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Dispatches a job's miss set over the fleet and blocks until
    /// every chunk has a result: the remote leg of
    /// [`Orchestrator::run_spec_with`].
    ///
    /// The misses are hash-sharded into `live workers × OVERSHARD`
    /// chunks, each encoded once as a self-contained subset spec
    /// ([`CampaignSpec::subset`]) and queued for pulling. The lane
    /// then waits, rescanning every [`LEASE_SCAN`]: done assignments
    /// are harvested (their worker spans re-anchored into the job
    /// trace), timed-out leases requeue, and a chunk past its requeue
    /// cap — or stranded with no live workers — executes right here on
    /// the lane. The returned runs carry the **full** spec's unit
    /// count, so they merge with the store's replayed outcomes exactly
    /// like the local tiers' runs do.
    ///
    /// # Errors
    ///
    /// Only local-fallback execution errors propagate (a plan that
    /// cannot execute anywhere); worker loss never does.
    pub fn dispatch(
        &self,
        orch: &Orchestrator,
        job: u64,
        spec: &CampaignSpec,
        missing: &[usize],
    ) -> Result<Vec<ShardRun>, String> {
        if missing.is_empty() {
            return Ok(Vec::new());
        }
        let total = spec.units.len();
        let context = trace::current_context();
        let chunk_count = (self.live_workers().max(1) * OVERSHARD).clamp(1, missing.len());
        let mut chunks: Vec<Vec<usize>> = vec![Vec::new(); chunk_count];
        for &index in missing {
            chunks[chunk_of(index, chunk_count)].push(index);
        }
        chunks.retain(|c| !c.is_empty());

        let mut outstanding: Vec<u64> = Vec::with_capacity(chunks.len());
        {
            let mut inner = self.lock();
            for indices in chunks {
                let id = self.next_assignment.fetch_add(1, Ordering::Relaxed) + 1;
                let (span, dispatched_at_us, context_env) = match &context {
                    Some((t, _)) => {
                        let span = t.alloc_span();
                        (span, t.elapsed_us(), Some(t.context_env(span)))
                    }
                    None => (0, 0, None),
                };
                let plan = spec.subset(&indices).encode();
                inner.assignments.insert(
                    id,
                    Assignment {
                        id,
                        job,
                        indices,
                        plan,
                        context: context_env,
                        state: AssignState::Pending,
                        requeues: 0,
                        span,
                        dispatched_at_us,
                        result: None,
                    },
                );
                self.events.dispatched.fetch_add(1, Ordering::Relaxed);
                outstanding.push(id);
            }
            self.changed.notify_all();
        }

        let mut runs = Vec::new();
        while !outstanding.is_empty() {
            // Classify under the lock; execute/decode outside it.
            let mut done = Vec::new();
            let mut fallback = Vec::new();
            {
                let mut inner = self.lock();
                loop {
                    self.reap(&mut inner);
                    let any_live = inner.workers.values().any(|w| !w.lost);
                    for &id in &outstanding {
                        enum Take {
                            Done,
                            Fallback,
                            Wait,
                        }
                        let take = match inner.assignments.get(&id) {
                            Some(a) => match &a.state {
                                AssignState::Done => Take::Done,
                                AssignState::Pending
                                    if a.requeues > self.max_requeues || !any_live =>
                                {
                                    Take::Fallback
                                }
                                _ => Take::Wait,
                            },
                            None => Take::Wait,
                        };
                        match take {
                            Take::Done => {
                                done.push(inner.assignments.remove(&id).expect("present"));
                            }
                            Take::Fallback => {
                                fallback.push(inner.assignments.remove(&id).expect("present"));
                            }
                            Take::Wait => {}
                        }
                    }
                    if !done.is_empty() || !fallback.is_empty() {
                        break;
                    }
                    let (guard, _) = self
                        .changed
                        .wait_timeout(inner, LEASE_SCAN)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                }
            }
            for assignment in done {
                let id = assignment.id;
                match self.harvest(&context, total, assignment) {
                    Ok(run) => {
                        outstanding.retain(|&o| o != id);
                        runs.push(run);
                    }
                    Err(requeued) => {
                        // Undecodable document: back into the pool for
                        // another worker (or the fallback path).
                        let mut inner = self.lock();
                        inner.assignments.insert(id, *requeued);
                    }
                }
            }
            for assignment in fallback {
                let id = assignment.id;
                match self.run_locally(orch, spec, total, &assignment) {
                    Ok(run) => {
                        outstanding.retain(|&o| o != id);
                        runs.push(run);
                    }
                    Err(e) => {
                        // Unexecutable anywhere: abandon the dispatch,
                        // clearing our remaining assignments so late
                        // results count as duplicates, not leaks.
                        let mut inner = self.lock();
                        for &o in &outstanding {
                            inner.assignments.remove(&o);
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(runs)
    }

    /// Marks silent workers lost and requeues expired leases. Called
    /// under the lock from every scan point, so liveness converges on
    /// whichever of poll / stats / dispatch touches the fleet next.
    fn reap(&self, inner: &mut FleetInner) {
        let now = Instant::now();
        let FleetInner {
            workers,
            assignments,
            ..
        } = inner;
        for w in workers.values_mut() {
            if !w.lost && now.duration_since(w.last_seen) > self.heartbeat_timeout {
                w.lost = true;
                self.events.workers_lost.fetch_add(1, Ordering::Relaxed);
            }
        }
        for a in assignments.values_mut() {
            let expired = match &a.state {
                AssignState::Leased { worker, since } => {
                    workers.get(worker).is_none_or(|w| w.lost)
                        || self
                            .lease_timeout
                            .is_some_and(|t| now.duration_since(*since) > t)
                }
                _ => false,
            };
            if expired {
                a.state = AssignState::Pending;
                a.requeues += 1;
                self.events.requeued.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Requeues every lease held by `worker` (any generation) — the
    /// rejoin path.
    fn requeue_leases_of(&self, inner: &mut FleetInner, worker: u64) {
        for a in inner.assignments.values_mut() {
            if matches!(&a.state, AssignState::Leased { worker: w, .. } if *w == worker) {
                a.state = AssignState::Pending;
                a.requeues += 1;
                self.events.requeued.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Strict liveness check for heartbeat/poll: current generation,
    /// not lost. Refreshes `last_seen` on success.
    fn validate(
        &self,
        inner: &mut FleetInner,
        worker: u64,
        generation: u64,
    ) -> Result<(), FleetError> {
        let Some(w) = inner.workers.get_mut(&worker) else {
            return Err(FleetError::Unknown);
        };
        if w.generation != generation || w.lost {
            self.events.stale_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(FleetError::Stale);
        }
        w.last_seen = Instant::now();
        Ok(())
    }

    /// Decodes a harvested assignment's document and re-anchors the
    /// worker's spans under the job trace (the same `reserve_ids` +
    /// `import_child` protocol process workers use over stderr).
    /// An undecodable document hands the assignment back for requeue
    /// (boxed — the error path is rare and the struct is wide).
    fn harvest(
        &self,
        context: &Option<(Arc<Trace>, u64)>,
        total: usize,
        mut assignment: Assignment,
    ) -> Result<ShardRun, Box<Assignment>> {
        let (doc, span_lines) = assignment
            .result
            .take()
            .expect("done assignment has result");
        match ShardRun::decode(&doc) {
            Ok(mut run) => {
                if let Some((t, parent)) = context {
                    if assignment.span > 0 {
                        let spans: Vec<SpanRecord> = span_lines
                            .iter()
                            .filter_map(|l| trace::parse_span_line(l))
                            .collect();
                        if let Some(width) = spans.iter().map(|s| s.id).max() {
                            let base = t.reserve_ids(width);
                            for span in &spans {
                                t.import_child(
                                    span,
                                    assignment.span,
                                    base,
                                    assignment.dispatched_at_us,
                                );
                            }
                        }
                        t.record(SpanRecord {
                            id: assignment.span,
                            parent: *parent,
                            name: "remote_shard".to_string(),
                            start_us: assignment.dispatched_at_us,
                            dur_us: t.elapsed_us().saturating_sub(assignment.dispatched_at_us),
                        });
                    }
                }
                // The worker saw only the subset; re-widen the coverage
                // denominator so the run merges with replayed outcomes.
                run.total = total;
                Ok(run)
            }
            Err(e) => {
                self.events.failed.fetch_add(1, Ordering::Relaxed);
                self.events.requeued.fetch_add(1, Ordering::Relaxed);
                log(
                    Level::Warn,
                    "assignment_bad_document",
                    &[("assignment", &assignment.id.to_string()), ("error", &e)],
                );
                assignment.state = AssignState::Pending;
                assignment.requeues += 1;
                Err(Box::new(assignment))
            }
        }
    }

    /// Executes an abandoned assignment on the dispatching lane — the
    /// tier of last resort that makes total fleet loss invisible.
    fn run_locally(
        &self,
        orch: &Orchestrator,
        spec: &CampaignSpec,
        total: usize,
        assignment: &Assignment,
    ) -> Result<ShardRun, String> {
        self.events.local_fallbacks.fetch_add(1, Ordering::Relaxed);
        log(
            Level::Warn,
            "assignment_local_fallback",
            &[
                ("assignment", &assignment.id.to_string()),
                ("units", &assignment.indices.len().to_string()),
            ],
        );
        let _span = Span::enter("local_fallback");
        let subset = spec.subset(&assignment.indices);
        let mut run = service::exec_spec(&subset, &orch.machine, orch.config)?;
        run.total = total;
        Ok(run)
    }
}

/// The chunk a global unit index hash-shards into: FNV-1a over the
/// index bytes, mod the chunk count — stable across dispatches, so the
/// same miss set always chunks the same way.
fn chunk_of(index: usize, chunks: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in index.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % chunks as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_core::service::exec_spec;
    use std::path::PathBuf;

    const SOURCE: &str = "\
def add(a, b):
    return a + b
def test_add():
    assert add(1, 2) == 3
";

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nfi-fleet-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fixture(tag: &str) -> (Orchestrator, CampaignSpec, Vec<usize>) {
        let orch = Orchestrator::new(scratch(tag)).unwrap();
        let spec = nfi_core::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let all: Vec<usize> = (0..spec.units.len()).collect();
        (orch, spec, all)
    }

    fn fleet_for(orch: &Orchestrator, timeout: Duration, max_requeues: u32) -> Fleet {
        Fleet::new(orch.machine.fingerprint(), timeout, max_requeues, None)
    }

    /// Plays one obedient worker until the dispatch thread finishes.
    fn drain_as_worker(
        fleet: &Fleet,
        orch: &Orchestrator,
        reg: Registration,
        stop: impl Fn() -> bool,
    ) {
        loop {
            match fleet.poll(reg.worker, reg.generation) {
                Ok(Some(lease)) => {
                    let sub = CampaignSpec::decode(&lease.plan).unwrap();
                    let run = exec_spec(&sub, &orch.machine, orch.config).unwrap();
                    fleet
                        .complete(
                            reg.worker,
                            reg.generation,
                            lease.assignment,
                            Ok((run.encode(), Vec::new())),
                        )
                        .unwrap();
                }
                Ok(None) => {
                    if stop() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => return,
            }
        }
    }

    #[test]
    fn remote_dispatch_merges_byte_identical_to_direct_execution() {
        let (orch, spec, all) = fixture("parity");
        let fleet = fleet_for(&orch, Duration::from_secs(5), 2);
        let reg = fleet.register("w1", orch.machine.fingerprint()).unwrap();
        let runs = std::thread::scope(|scope| {
            let dispatch = scope.spawn(|| fleet.dispatch(&orch, 1, &spec, &all));
            drain_as_worker(&fleet, &orch, reg, || dispatch.is_finished());
            dispatch.join().unwrap().unwrap()
        });
        let merged = nfi_core::merge(&runs).unwrap();
        let direct = exec_spec(&spec, &orch.machine, orch.config).unwrap();
        assert_eq!(merged.encode(), direct.encode());
        assert!(fleet.stats().assignments_dispatched >= 1);
        assert_eq!(fleet.stats().local_fallbacks, 0);
    }

    #[test]
    fn no_live_workers_falls_back_to_local_execution() {
        let (orch, spec, all) = fixture("fallback");
        let fleet = fleet_for(&orch, Duration::from_millis(100), 2);
        let runs = fleet.dispatch(&orch, 1, &spec, &all).unwrap();
        let merged = nfi_core::merge(&runs).unwrap();
        let direct = exec_spec(&spec, &orch.machine, orch.config).unwrap();
        assert_eq!(merged.encode(), direct.encode());
        assert!(fleet.stats().local_fallbacks >= 1);
    }

    #[test]
    fn heartbeat_timeout_requeues_the_lease_and_fences_the_worker() {
        let (orch, spec, all) = fixture("timeout");
        let fleet = fleet_for(&orch, Duration::from_millis(60), 2);
        let reg = fleet.register("w1", orch.machine.fingerprint()).unwrap();
        // Seed the pool directly (no dispatch thread): one assignment.
        {
            let mut inner = fleet.lock();
            inner.assignments.insert(
                1,
                Assignment {
                    id: 1,
                    job: 9,
                    indices: all.clone(),
                    plan: spec.subset(&all).encode(),
                    context: None,
                    state: AssignState::Pending,
                    requeues: 0,
                    span: 0,
                    dispatched_at_us: 0,
                    result: None,
                },
            );
        }
        let lease = fleet.poll(reg.worker, reg.generation).unwrap().unwrap();
        assert_eq!(lease.assignment, 1);
        // The worker goes silent past the heartbeat timeout.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(fleet.live_workers(), 0, "silent worker marked lost");
        {
            let inner = fleet.lock();
            let a = &inner.assignments[&1];
            assert_eq!(a.state, AssignState::Pending, "lease requeued");
            assert_eq!(a.requeues, 1);
        }
        assert_eq!(fleet.stats().workers_lost, 1);
        assert_eq!(fleet.stats().assignments_requeued, 1);
        // The lost worker is fenced until it re-registers.
        assert_eq!(
            fleet.heartbeat(reg.worker, reg.generation),
            Err(FleetError::Stale)
        );
        assert_eq!(
            fleet.poll(reg.worker, reg.generation),
            Err(FleetError::Stale)
        );
        let rejoined = fleet.register("w1", orch.machine.fingerprint()).unwrap();
        assert_eq!(rejoined.worker, reg.worker, "same name keeps its id");
        assert_eq!(rejoined.generation, reg.generation + 1);
        assert!(fleet
            .poll(rejoined.worker, rejoined.generation)
            .unwrap()
            .is_some());
    }

    #[test]
    fn duplicate_result_after_requeue_keeps_the_first_bytes() {
        let (orch, spec, all) = fixture("dup");
        let fleet = fleet_for(&orch, Duration::from_millis(60), 2);
        let w1 = fleet.register("w1", orch.machine.fingerprint()).unwrap();
        {
            let mut inner = fleet.lock();
            inner.assignments.insert(
                1,
                Assignment {
                    id: 1,
                    job: 9,
                    indices: all.clone(),
                    plan: spec.subset(&all).encode(),
                    context: None,
                    state: AssignState::Pending,
                    requeues: 0,
                    span: 0,
                    dispatched_at_us: 0,
                    result: None,
                },
            );
        }
        let lease = fleet.poll(w1.worker, w1.generation).unwrap().unwrap();
        std::thread::sleep(Duration::from_millis(120));
        let w2 = fleet.register("w2", orch.machine.fingerprint()).unwrap();
        let release = fleet.poll(w2.worker, w2.generation).unwrap().unwrap();
        assert_eq!(release.assignment, lease.assignment);
        let sub = CampaignSpec::decode(&release.plan).unwrap();
        let doc = exec_spec(&sub, &orch.machine, orch.config)
            .unwrap()
            .encode();
        assert_eq!(
            fleet.complete(w2.worker, w2.generation, 1, Ok((doc.clone(), Vec::new()))),
            Ok(Completion::Accepted)
        );
        // w1 (lost, but still the current generation) delivers late,
        // with different bytes: discarded, counted, first bytes kept.
        assert_eq!(
            fleet.complete(
                w1.worker,
                w1.generation,
                1,
                Ok(("garbage-late-result".to_string(), Vec::new()))
            ),
            Ok(Completion::Duplicate)
        );
        assert_eq!(fleet.stats().duplicate_results, 1);
        let inner = fleet.lock();
        let stored = inner.assignments[&1].result.as_ref().unwrap();
        assert_eq!(stored.0, doc, "first result's bytes survive");
    }

    #[test]
    fn stale_generation_is_rejected_after_rejoin() {
        let (orch, spec, all) = fixture("stale");
        let fleet = fleet_for(&orch, Duration::from_secs(5), 2);
        let old = fleet.register("w", orch.machine.fingerprint()).unwrap();
        {
            let mut inner = fleet.lock();
            inner.assignments.insert(
                1,
                Assignment {
                    id: 1,
                    job: 9,
                    indices: all.clone(),
                    plan: spec.subset(&all).encode(),
                    context: None,
                    state: AssignState::Pending,
                    requeues: 0,
                    span: 0,
                    dispatched_at_us: 0,
                    result: None,
                },
            );
        }
        let lease = fleet.poll(old.worker, old.generation).unwrap().unwrap();
        // The worker restarts and re-registers under the same name:
        // its old lease requeues and its old generation is fenced.
        let new = fleet.register("w", orch.machine.fingerprint()).unwrap();
        assert_eq!(new.generation, old.generation + 1);
        assert_eq!(
            fleet.heartbeat(old.worker, old.generation),
            Err(FleetError::Stale)
        );
        assert_eq!(
            fleet.poll(old.worker, old.generation),
            Err(FleetError::Stale)
        );
        assert_eq!(
            fleet.complete(
                old.worker,
                old.generation,
                lease.assignment,
                Ok(("zombie".to_string(), Vec::new()))
            ),
            Err(FleetError::Stale)
        );
        assert!(fleet.stats().stale_rejections >= 3);
        // The new generation picks the requeued lease back up.
        let release = fleet.poll(new.worker, new.generation).unwrap().unwrap();
        assert_eq!(release.assignment, lease.assignment);
    }

    #[test]
    fn requeue_cap_exhaustion_executes_locally_byte_identical() {
        let (orch, spec, all) = fixture("cap");
        // Cap 0: a single requeue already exceeds the budget.
        let fleet = fleet_for(&orch, Duration::from_millis(60), 0);
        let reg = fleet.register("w1", orch.machine.fingerprint()).unwrap();
        let runs = std::thread::scope(|scope| {
            let dispatch = scope.spawn(|| fleet.dispatch(&orch, 1, &spec, &all));
            // Lease everything, then go silent: every assignment times
            // out once, exceeding the cap, and the lane runs them all.
            while !dispatch.is_finished() {
                match fleet.poll(reg.worker, reg.generation) {
                    Ok(Some(_)) => {}
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            dispatch.join().unwrap().unwrap()
        });
        let merged = nfi_core::merge(&runs).unwrap();
        let direct = exec_spec(&spec, &orch.machine, orch.config).unwrap();
        assert_eq!(merged.encode(), direct.encode());
        assert!(fleet.stats().local_fallbacks >= 1);
        assert!(fleet.stats().assignments_requeued >= 1);
    }

    #[test]
    fn registration_rejects_a_mismatched_machine_fingerprint() {
        let (orch, _, _) = fixture("fp");
        let fleet = fleet_for(&orch, Duration::from_secs(5), 2);
        let err = fleet
            .register("w1", orch.machine.fingerprint() ^ 1)
            .unwrap_err();
        assert!(matches!(err, FleetError::Mismatch(_)), "{err}");
    }
}
