//! The one-shot injection pipeline: NL description + code → integrated
//! faulty program → failure-mode report.

use nfi_inject::{integrate_snippet, run_experiment_cached, ExperimentReport, PatchError};
use nfi_llm::{FaultLlm, GeneratedFault, LlmConfig, TrainingRecord};
use nfi_nlp::FaultSpec;
use nfi_pylite::{MachineConfig, Module, PyliteError};
use std::fmt;
use std::time::Instant;

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Machine settings used by the test harness.
    pub machine: MachineConfig,
    /// Generator settings.
    pub llm: LlmConfig,
}

/// Why the pipeline could not complete.
#[derive(Debug)]
pub enum PipelineError {
    /// The submitted code does not parse.
    Code(PyliteError),
    /// The generator produced no applicable candidate.
    NoCandidates,
    /// The reviewed snippet could not be integrated.
    Integration(PatchError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Code(e) => write!(f, "submitted code does not parse: {e}"),
            PipelineError::NoCandidates => {
                write!(f, "no fault candidate applies to the submitted code")
            }
            PipelineError::Integration(e) => write!(f, "integration failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PyliteError> for PipelineError {
    fn from(e: PyliteError) -> Self {
        PipelineError::Code(e)
    }
}

/// Wall-clock microseconds spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// NLP analysis.
    pub nlp_us: u128,
    /// Candidate synthesis + policy sampling.
    pub generate_us: u128,
    /// Snippet integration.
    pub integrate_us: u128,
    /// Pristine + faulty suite execution.
    pub test_us: u128,
}

/// The full result of one injection.
#[derive(Debug, Clone)]
pub struct InjectionReport {
    /// Structured spec produced by the NLP engine.
    pub spec: FaultSpec,
    /// The generated fault (snippet, rationale, provenance).
    pub fault: GeneratedFault,
    /// The integrated faulty module.
    pub faulty_module: Module,
    /// Differential test results.
    pub experiment: ExperimentReport,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// The end-to-end injector (Fig. 1 without the review loop; see
/// [`crate::session`] for the interactive variant).
pub struct NeuralFaultInjector {
    llm: FaultLlm,
    config: PipelineConfig,
}

impl NeuralFaultInjector {
    /// Creates a pipeline with an untrained generator.
    pub fn new(config: PipelineConfig) -> Self {
        NeuralFaultInjector {
            llm: FaultLlm::untrained(config.llm.clone()),
            config,
        }
    }

    /// Fine-tunes the generator on SFI-produced records (§IV-1).
    pub fn fine_tune(&mut self, records: Vec<TrainingRecord>) {
        self.llm.fine_tune(records);
    }

    /// The underlying generator (e.g. for RLHF training).
    pub fn llm_mut(&mut self) -> &mut FaultLlm {
        &mut self.llm
    }

    /// Read access to the generator.
    pub fn llm(&self) -> &FaultLlm {
        &self.llm
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on source text.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn inject(
        &mut self,
        description: &str,
        source: &str,
    ) -> Result<InjectionReport, PipelineError> {
        let module = nfi_pylite::parse(source)?;
        self.inject_module(description, &module)
    }

    /// Runs the full pipeline on a parsed module.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn inject_module(
        &mut self,
        description: &str,
        module: &Module,
    ) -> Result<InjectionReport, PipelineError> {
        let t = Instant::now();
        let spec = nfi_nlp::analyze(description, Some(module));
        let nlp_us = t.elapsed().as_micros();
        self.inject_prepared(spec, nlp_us, module)
    }

    /// Runs a whole batch of descriptions against one module through
    /// the batched NLP engine: the module's symbol index is built once
    /// for the batch ([`nfi_nlp::analyze_batch`]) instead of once per
    /// description, then each spec runs the generate → integrate → test
    /// stages as usual. Outcome `i` equals
    /// `self.inject_module(descriptions[i], module)` (modulo the
    /// amortized NLP timing).
    pub fn inject_batch_module<S: AsRef<str>>(
        &mut self,
        descriptions: &[S],
        module: &Module,
    ) -> Vec<Result<InjectionReport, PipelineError>> {
        let t = Instant::now();
        let specs = nfi_nlp::analyze_batch(descriptions, Some(module));
        let nlp_us = t.elapsed().as_micros() / descriptions.len().max(1) as u128;
        specs
            .into_iter()
            .map(|spec| self.inject_prepared(spec, nlp_us, module))
            .collect()
    }

    /// Runs the generation → integration → testing stages for a spec
    /// the caller already produced (e.g. through a shared
    /// [`nfi_nlp::Analyzer`]). `nlp_us` is the NLP time to record in
    /// the report's stage timings.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn inject_prepared(
        &mut self,
        spec: FaultSpec,
        nlp_us: u128,
        module: &Module,
    ) -> Result<InjectionReport, PipelineError> {
        let mut timings = StageTimings {
            nlp_us,
            ..StageTimings::default()
        };

        let t = Instant::now();
        let fault = self
            .llm
            .generate(&spec, module)
            .ok_or(PipelineError::NoCandidates)?;
        timings.generate_us = t.elapsed().as_micros();

        // Integration: splice the *reviewed snippet* back into the
        // pristine codebase, exercising the automated integration tool.
        let t = Instant::now();
        let faulty_module = match integrate_snippet(module, &fault.snippet) {
            Ok(m) => m,
            Err(PatchError::EmptySnippet) => fault.module.clone(),
            Err(e) => return Err(PipelineError::Integration(e)),
        };
        timings.integrate_us = t.elapsed().as_micros();

        let t = Instant::now();
        let experiment = run_experiment_cached(module, &faulty_module, &self.config.machine);
        timings.test_us = t.elapsed().as_micros();

        Ok(InjectionReport {
            spec,
            fault,
            faulty_module,
            experiment,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_inject::FailureMode;

    const ECOMMERCE: &str = "\
def process_transaction(details):
    return True
def test_ok():
    assert process_transaction({})
";

    #[test]
    fn end_to_end_timeout_injection() {
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        let report = injector
            .inject(
                "Simulate a database timeout causing an unhandled exception in the process transaction function.",
                ECOMMERCE,
            )
            .unwrap();
        assert_eq!(
            report.spec.target_function.as_deref(),
            Some("process_transaction")
        );
        assert!(report.fault.snippet.contains("TimeoutError"));
        // The integrated module differs from pristine and still parses.
        let printed = nfi_pylite::print_module(&report.faulty_module);
        nfi_pylite::parse(&printed).unwrap();
    }

    #[test]
    fn crash_pattern_is_detected_by_suite() {
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        // Loop until the sampler picks the unhandled-raise pattern; the
        // experiment for it must be an activated, detected crash.
        for _ in 0..20 {
            let report = injector
                .inject(
                    "Simulate a database timeout causing an unhandled exception in the process transaction function.",
                    ECOMMERCE,
                )
                .unwrap();
            if report.fault.pattern == "raise_unhandled" {
                assert!(report.experiment.activated);
                assert!(report.experiment.detected);
                assert_eq!(
                    report.experiment.overall,
                    FailureMode::CrashUnhandled("TimeoutError".into())
                );
                return;
            }
        }
        panic!("raise_unhandled never sampled in 20 draws");
    }

    #[test]
    fn unparseable_code_is_an_error() {
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        assert!(matches!(
            injector.inject("whatever", "def f(:\n"),
            Err(PipelineError::Code(_))
        ));
    }

    #[test]
    fn timings_are_recorded() {
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        let report = injector
            .inject("simulate a timeout error in process_transaction", ECOMMERCE)
            .unwrap();
        // test stage runs two suites; it cannot be zero.
        assert!(report.timings.test_us > 0);
    }

    #[test]
    fn batch_injection_equals_sequential_injection() {
        let module = nfi_pylite::parse(ECOMMERCE).unwrap();
        let descriptions = [
            "Simulate a database timeout causing an unhandled exception in process_transaction.",
            "Leak the database connection handle in process_transaction.",
        ];
        let mut batched = NeuralFaultInjector::new(PipelineConfig::default());
        let mut sequential = NeuralFaultInjector::new(PipelineConfig::default());
        let batch = batched.inject_batch_module(&descriptions, &module);
        assert_eq!(batch.len(), descriptions.len());
        for (description, got) in descriptions.iter().zip(batch) {
            let got = got.expect("batch injection succeeds");
            let want = sequential
                .inject_module(description, &module)
                .expect("sequential injection succeeds");
            assert_eq!(got.spec, want.spec);
            assert_eq!(got.fault.pattern, want.fault.pattern);
            assert_eq!(got.fault.snippet, want.fault.snippet);
            assert_eq!(got.experiment.overall, want.experiment.overall);
        }
    }

    #[test]
    fn fine_tuned_pipeline_still_works() {
        let ds = nfi_dataset::generate(
            &[*nfi_corpus::by_name("kvcache").unwrap()],
            &nfi_dataset::DatasetConfig {
                per_program_cap: 20,
                seed: 1,
            },
        );
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        injector.fine_tune(ds.to_training_records());
        let report = injector
            .inject(
                "simulate a timeout failure in process_transaction",
                ECOMMERCE,
            )
            .unwrap();
        assert!(report.fault.n_candidates > 0);
    }
}
