//! The parallel campaign execution engine.
//!
//! Fault-injection campaigns are embarrassingly parallel — every plan
//! application and every harness run is independent — yet the original
//! drivers executed them serially. This module fans that work across a
//! rayon work-stealing pool while keeping one hard guarantee:
//!
//! > **Results are bitwise identical for every thread count.**
//!
//! Three rules make that hold:
//!
//! 1. every unit of work derives its inputs (seed, plan, scenario) from
//!    its *index*, never from shared mutable state,
//! 2. outputs are collected in input order (the pool reorders execution,
//!    not results),
//! 3. aggregation folds over that ordered collection with commutative
//!    counters ([`CampaignRunReport`] uses `BTreeMap` counts), so the
//!    reduction is order-independent anyway.
//!
//! `threads = 1` therefore reproduces the sequential behaviour exactly,
//! and `threads = N` reproduces `threads = 1`. The parity suite in
//! `tests/parallel_parity.rs` enforces this.

use nfi_inject::{run_experiment, FailureMode};
use nfi_pylite::MachineConfig;
use nfi_sfi::{Campaign, FaultPlan};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration for the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads. `1` runs inline on the caller thread (exactly the
    /// old sequential behaviour); the default is the machine's available
    /// parallelism.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl ExecConfig {
    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        ExecConfig { threads: 1 }
    }

    /// A fixed worker count (`0` is clamped to `1`).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
        }
    }
}

/// Ordered parallel map: applies `f` to every item, returning results in
/// input order. With `threads = 1` this is a plain sequential iterator —
/// no pool, no thread spawn, byte-for-byte the old code path.
pub fn par_map<T: Sync, R: Send>(
    config: ExecConfig,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    par_map_indexed(config, items.len(), |i| f(&items[i]))
}

/// Ordered parallel map over indices `0..n`, for work units that derive
/// everything from their index (per-seed experiment runs, per-scenario
/// injectors).
pub fn par_map_indexed<R: Send>(
    config: ExecConfig,
    n: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    if config.threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let pool = pool_for(config.threads);
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// Process-wide pool cache, one pool per requested width — repeated
/// engine calls (one per campaign, per experiment driver) reuse a pool
/// instead of rebuilding one, which matters once the vendored rayon
/// shim is swapped for upstream rayon (whose pools own OS threads).
fn pool_for(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut pools = pools.lock().expect("pool cache lock");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool"),
        )
    }))
}

/// Outcome of one plan in a campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Operator mnemonic.
    pub operator: &'static str,
    /// Fault-class key.
    pub class: &'static str,
    /// Whether the plan still applied (site present).
    pub applied: bool,
    /// Whether the fault had an observable effect under test.
    pub activated: bool,
    /// Whether the embedded suite detected it.
    pub detected: bool,
    /// Most severe failure mode, when the plan applied.
    pub mode: Option<FailureMode>,
}

/// Order-independent aggregate of a campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignRunReport {
    /// Plans executed.
    pub total: usize,
    /// Plans that still applied.
    pub applied: usize,
    /// Applied plans with observable effect.
    pub activated: usize,
    /// Applied plans the suite detected.
    pub detected: usize,
    /// Applied plans per fault-class key.
    pub per_class: BTreeMap<&'static str, usize>,
    /// Applied plans per operator mnemonic.
    pub per_operator: BTreeMap<&'static str, usize>,
    /// Failure-mode frequency (by mode key).
    pub modes: BTreeMap<String, usize>,
}

impl CampaignRunReport {
    /// Folds one outcome into the aggregate (commutative counters, so
    /// fold order cannot change the result).
    fn absorb(&mut self, outcome: &PlanOutcome) {
        self.total += 1;
        if !outcome.applied {
            return;
        }
        self.applied += 1;
        if outcome.activated {
            self.activated += 1;
        }
        if outcome.detected {
            self.detected += 1;
        }
        *self.per_class.entry(outcome.class).or_insert(0) += 1;
        *self.per_operator.entry(outcome.operator).or_insert(0) += 1;
        if let Some(mode) = &outcome.mode {
            *self.modes.entry(mode.key().to_string()).or_insert(0) += 1;
        }
    }
}

/// Full result of [`run_campaign`]: ordered per-plan outcomes plus the
/// aggregate report.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// One outcome per executed plan, in plan order.
    pub outcomes: Vec<PlanOutcome>,
    /// The aggregate.
    pub report: CampaignRunReport,
}

/// Applies every given plan of a campaign and runs the differential test
/// harness on each mutant, fanned across the configured worker pool.
///
/// The module is shared by `Arc` — workers never clone the AST — and
/// each plan's machine is constructed fresh from `machine`, so outcomes
/// depend only on (module, plan, machine config) and are identical for
/// every thread count.
pub fn run_campaign_plans(
    campaign: &Campaign,
    plans: &[FaultPlan],
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    let module = campaign.module_arc();
    let outcomes = par_map(config, plans, |plan| {
        let class = plan.class.key();
        match campaign.apply(plan) {
            Some(fault) => {
                let report = run_experiment(&module, &fault.module, machine);
                PlanOutcome {
                    operator: plan.operator,
                    class,
                    applied: true,
                    activated: report.activated,
                    detected: report.detected,
                    mode: Some(report.overall),
                }
            }
            None => PlanOutcome {
                operator: plan.operator,
                class,
                applied: false,
                activated: false,
                detected: false,
                mode: None,
            },
        }
    });
    let mut report = CampaignRunReport::default();
    for outcome in &outcomes {
        report.absorb(outcome);
    }
    CampaignRun { outcomes, report }
}

/// [`run_campaign_plans`] over a campaign's full enumeration.
pub fn run_campaign(
    campaign: &Campaign,
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    run_campaign_plans(campaign, campaign.plans(), machine, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn campaign() -> Campaign {
        let module = parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n",
        )
        .unwrap();
        Campaign::full(&module)
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        assert!(ExecConfig::default().threads >= 1);
        assert_eq!(ExecConfig::sequential().threads, 1);
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let seq = par_map(ExecConfig::sequential(), &items, |x| x * 3);
        let par = par_map(ExecConfig::with_threads(8), &items, |x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(seq[33], 99);
    }

    #[test]
    fn par_map_indexed_matches_sequential() {
        let seq = par_map_indexed(ExecConfig::sequential(), 50, |i| i * i);
        let par = par_map_indexed(ExecConfig::with_threads(4), 50, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn campaign_run_aggregates_consistently() {
        let c = campaign();
        let run = run_campaign(&c, &MachineConfig::default(), ExecConfig::sequential());
        assert_eq!(run.report.total, c.plans().len());
        assert_eq!(run.outcomes.len(), c.plans().len());
        assert!(run.report.applied > 0);
        let by_class: usize = run.report.per_class.values().sum();
        assert_eq!(by_class, run.report.applied);
    }

    #[test]
    fn campaign_run_is_thread_count_invariant() {
        let c = campaign();
        let machine = MachineConfig::default();
        let seq = run_campaign(&c, &machine, ExecConfig::sequential());
        let par = run_campaign(&c, &machine, ExecConfig::with_threads(8));
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.report, par.report);
    }
}
