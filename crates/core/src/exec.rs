//! The parallel campaign execution engine.
//!
//! Fault-injection campaigns are embarrassingly parallel — every plan
//! application and every harness run is independent — yet the original
//! drivers executed them serially. This module fans that work across a
//! rayon work-stealing pool while keeping one hard guarantee:
//!
//! > **Results are bitwise identical for every thread count.**
//!
//! Three rules make that hold:
//!
//! 1. every unit of work derives its inputs (seed, plan, scenario) from
//!    its *index*, never from shared mutable state,
//! 2. outputs are collected in input order (the pool reorders execution,
//!    not results),
//! 3. aggregation folds over that ordered collection with commutative
//!    counters ([`CampaignRunReport`] uses `BTreeMap` counts), so the
//!    reduction is order-independent anyway.
//!
//! `threads = 1` therefore reproduces the sequential behaviour exactly,
//! and `threads = N` reproduces `threads = 1`. The parity suite in
//! `tests/parallel_parity.rs` enforces this.

use crate::cache::MutantCache;
use nfi_inject::memo::ExperimentCache;
use nfi_inject::{run_experiment, FailureMode};
use nfi_pylite::{fingerprint, MachineConfig, Module};
use nfi_sfi::{apply_plan, Campaign, FaultPlan, Shard};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration for the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads. `1` runs inline on the caller thread (exactly the
    /// old sequential behaviour); the default is the machine's available
    /// parallelism.
    pub threads: usize,
    /// The strided slice of the campaign this engine executes. The
    /// default [`Shard::FULL`] runs everything; `i/n` runs plan indices
    /// with `index % n == i`, so `n` cooperating processes partition a
    /// plan without coordinating.
    pub shard: Shard,
    /// Whether plan application and experiment runs go through the
    /// process-wide content-addressed caches ([`MutantCache`],
    /// [`ExperimentCache`]). Caching never changes results — keys are
    /// content hashes and both operations are deterministic — it only
    /// skips recomputing them.
    pub use_cache: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            shard: Shard::FULL,
            use_cache: true,
        }
    }
}

impl ExecConfig {
    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            ..ExecConfig::default()
        }
    }

    /// A fixed worker count (`0` is clamped to `1`).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            ..ExecConfig::default()
        }
    }

    /// This configuration restricted to one shard of the plan.
    pub fn sharded(self, shard: Shard) -> Self {
        ExecConfig { shard, ..self }
    }

    /// This configuration with the content-addressed caches toggled.
    pub fn cached(self, use_cache: bool) -> Self {
        ExecConfig { use_cache, ..self }
    }
}

/// Ordered parallel map: applies `f` to every item, returning results in
/// input order. With `threads = 1` this is a plain sequential iterator —
/// no pool, no thread spawn, byte-for-byte the old code path.
pub fn par_map<T: Sync, R: Send>(
    config: ExecConfig,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    par_map_indexed(config, items.len(), |i| f(&items[i]))
}

/// Ordered parallel map over indices `0..n`, for work units that derive
/// everything from their index (per-seed experiment runs, per-scenario
/// injectors).
pub fn par_map_indexed<R: Send>(
    config: ExecConfig,
    n: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    if config.threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let pool = pool_for(config.threads);
    pool.install(|| (0..n).into_par_iter().map(f).collect())
}

/// Process-wide pool cache, one pool per requested width — repeated
/// engine calls (one per campaign, per experiment driver) reuse a pool
/// instead of rebuilding one, which matters once the vendored rayon
/// shim is swapped for upstream rayon (whose pools own OS threads).
fn pool_for(threads: usize) -> Arc<ThreadPool> {
    static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut pools = pools.lock().expect("pool cache lock");
    Arc::clone(pools.entry(threads).or_insert_with(|| {
        Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool"),
        )
    }))
}

/// Outcome of one plan in a campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutcome {
    /// Operator mnemonic.
    pub operator: &'static str,
    /// Fault-class key.
    pub class: &'static str,
    /// Whether the plan still applied (site present).
    pub applied: bool,
    /// Whether the fault had an observable effect under test.
    pub activated: bool,
    /// Whether the embedded suite detected it.
    pub detected: bool,
    /// Most severe failure mode, when the plan applied.
    pub mode: Option<FailureMode>,
}

/// Order-independent aggregate of a campaign run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignRunReport {
    /// Plans executed.
    pub total: usize,
    /// Plans that still applied.
    pub applied: usize,
    /// Applied plans with observable effect.
    pub activated: usize,
    /// Applied plans the suite detected.
    pub detected: usize,
    /// Applied plans per fault-class key.
    pub per_class: BTreeMap<&'static str, usize>,
    /// Applied plans per operator mnemonic.
    pub per_operator: BTreeMap<&'static str, usize>,
    /// Failure-mode frequency (by mode key).
    pub modes: BTreeMap<String, usize>,
}

impl CampaignRunReport {
    /// Folds one outcome into the aggregate (commutative counters, so
    /// fold order cannot change the result).
    fn absorb(&mut self, outcome: &PlanOutcome) {
        self.total += 1;
        if !outcome.applied {
            return;
        }
        self.applied += 1;
        if outcome.activated {
            self.activated += 1;
        }
        if outcome.detected {
            self.detected += 1;
        }
        *self.per_class.entry(outcome.class).or_insert(0) += 1;
        *self.per_operator.entry(outcome.operator).or_insert(0) += 1;
        if let Some(mode) = &outcome.mode {
            *self.modes.entry(mode.key().to_string()).or_insert(0) += 1;
        }
    }
}

/// Full result of [`run_campaign`]: ordered per-plan outcomes plus the
/// aggregate report.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Global plan index of each outcome (contiguous for a full run,
    /// strided for a shard — the merge key of the campaign service).
    pub indices: Vec<usize>,
    /// One outcome per executed plan, in plan-index order.
    pub outcomes: Vec<PlanOutcome>,
    /// The aggregate.
    pub report: CampaignRunReport,
}

/// Applies one plan to a module and runs the differential experiment,
/// optionally through the process-wide mutant and experiment caches.
/// This is the engine's unit of work: outcomes depend only on
/// (module, plan, machine config), never on shared mutable state.
pub fn execute_plan(
    module: &Module,
    module_fp: u64,
    plan: &FaultPlan,
    machine: &MachineConfig,
    use_cache: bool,
) -> PlanOutcome {
    let class = plan.class.key();
    let not_applied = PlanOutcome {
        operator: plan.operator,
        class,
        applied: false,
        activated: false,
        detected: false,
        mode: None,
    };
    let report = if use_cache {
        match MutantCache::global().apply(module, module_fp, plan) {
            Some(mutant) => ExperimentCache::global().run_keyed(
                module,
                &mutant.fault.module,
                module_fp,
                mutant.module_fp,
                machine,
            ),
            None => return not_applied,
        }
    } else {
        match apply_plan(module, plan) {
            Some(fault) => run_experiment(module, &fault.module, machine),
            None => return not_applied,
        }
    };
    PlanOutcome {
        operator: plan.operator,
        class,
        applied: true,
        activated: report.activated,
        detected: report.detected,
        mode: Some(report.overall),
    }
}

/// Shared core of the campaign runners: executes `(index, plan)` pairs
/// across the worker pool and folds the aggregate.
fn run_worklist(
    module: &Module,
    worklist: &[(usize, &FaultPlan)],
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    let module_fp = fingerprint(module);
    let outcomes = par_map(config, worklist, |(_, plan)| {
        execute_plan(module, module_fp, plan, machine, config.use_cache)
    });
    let mut report = CampaignRunReport::default();
    for outcome in &outcomes {
        report.absorb(outcome);
    }
    CampaignRun {
        indices: worklist.iter().map(|(i, _)| *i).collect(),
        outcomes,
        report,
    }
}

/// Applies every given plan of a campaign and runs the differential test
/// harness on each mutant, fanned across the configured worker pool.
///
/// The module is shared by `Arc` — workers never clone the AST — and
/// each plan's machine is constructed fresh from `machine`, so outcomes
/// depend only on (module, plan, machine config) and are identical for
/// every thread count. `config.shard` restricts execution to the
/// strided subset of plan indices; `config.use_cache` routes mutants
/// and experiments through the content-addressed caches.
pub fn run_campaign_plans(
    campaign: &Campaign,
    plans: &[FaultPlan],
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    let module = campaign.module_arc();
    let worklist: Vec<(usize, &FaultPlan)> = plans
        .iter()
        .enumerate()
        .filter(|(i, _)| config.shard.covers(*i))
        .collect();
    run_worklist(&module, &worklist, machine, config)
}

/// [`run_campaign_plans`] addressing plans by index into the campaign's
/// enumeration — the zero-clone path for sampled subsets
/// ([`Campaign::sample_indices`]) and plan-IR shards.
pub fn run_campaign_indices(
    campaign: &Campaign,
    indices: &[usize],
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    let module = campaign.module_arc();
    let plans = campaign.plans();
    let worklist: Vec<(usize, &FaultPlan)> = indices
        .iter()
        .filter(|&&i| config.shard.covers(i))
        .map(|&i| (i, &plans[i]))
        .collect();
    run_worklist(&module, &worklist, machine, config)
}

/// [`run_campaign_plans`] over a campaign's full enumeration.
pub fn run_campaign(
    campaign: &Campaign,
    machine: &MachineConfig,
    config: ExecConfig,
) -> CampaignRun {
    run_campaign_plans(campaign, campaign.plans(), machine, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::parse;

    fn campaign() -> Campaign {
        let module = parse(
            "m = lock()\ntotal = 0\ndef add(v):\n    global total\n    m.acquire()\n    total = total + v\n    m.release()\n    return total\ndef test_add():\n    assert add(1) == 1\n",
        )
        .unwrap();
        Campaign::full(&module)
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        assert!(ExecConfig::default().threads >= 1);
        assert_eq!(ExecConfig::sequential().threads, 1);
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let seq = par_map(ExecConfig::sequential(), &items, |x| x * 3);
        let par = par_map(ExecConfig::with_threads(8), &items, |x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(seq[33], 99);
    }

    #[test]
    fn par_map_indexed_matches_sequential() {
        let seq = par_map_indexed(ExecConfig::sequential(), 50, |i| i * i);
        let par = par_map_indexed(ExecConfig::with_threads(4), 50, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn campaign_run_aggregates_consistently() {
        let c = campaign();
        let run = run_campaign(&c, &MachineConfig::default(), ExecConfig::sequential());
        assert_eq!(run.report.total, c.plans().len());
        assert_eq!(run.outcomes.len(), c.plans().len());
        assert!(run.report.applied > 0);
        let by_class: usize = run.report.per_class.values().sum();
        assert_eq!(by_class, run.report.applied);
    }

    #[test]
    fn campaign_run_is_thread_count_invariant() {
        let c = campaign();
        let machine = MachineConfig::default();
        let seq = run_campaign(&c, &machine, ExecConfig::sequential());
        let par = run_campaign(&c, &machine, ExecConfig::with_threads(8));
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.report, par.report);
    }

    #[test]
    fn cached_and_uncached_runs_are_identical() {
        let c = campaign();
        let machine = MachineConfig::default();
        let cold = run_campaign(&c, &machine, ExecConfig::sequential().cached(false));
        let warm = run_campaign(&c, &machine, ExecConfig::sequential().cached(true));
        let replay = run_campaign(&c, &machine, ExecConfig::sequential().cached(true));
        assert_eq!(cold.outcomes, warm.outcomes);
        assert_eq!(warm.outcomes, replay.outcomes);
        assert_eq!(cold.report, replay.report);
    }

    #[test]
    fn sharded_runs_partition_the_full_run() {
        let c = campaign();
        let machine = MachineConfig::default();
        let full = run_campaign(&c, &machine, ExecConfig::sequential());
        assert_eq!(full.indices, (0..c.plans().len()).collect::<Vec<_>>());
        let mut merged: Vec<(usize, PlanOutcome)> = Vec::new();
        for index in 0..3 {
            let config = ExecConfig::sequential().sharded(Shard { index, count: 3 });
            let run = run_campaign(&c, &machine, config);
            assert_eq!(run.indices.len(), run.outcomes.len());
            merged.extend(run.indices.into_iter().zip(run.outcomes));
        }
        merged.sort_by_key(|(i, _)| *i);
        let outcomes: Vec<PlanOutcome> = merged.into_iter().map(|(_, o)| o).collect();
        assert_eq!(outcomes, full.outcomes, "3-way shard union != full run");
    }

    #[test]
    fn indexed_execution_matches_plan_execution() {
        let c = campaign();
        let machine = MachineConfig::default();
        let indices = c.sample_indices(5, 42);
        let by_index = run_campaign_indices(&c, &indices, &machine, ExecConfig::sequential());
        assert_eq!(by_index.indices, indices);
        let full = run_campaign(&c, &machine, ExecConfig::sequential());
        for (i, outcome) in by_index.indices.iter().zip(by_index.outcomes.iter()) {
            assert_eq!(outcome, &full.outcomes[*i]);
        }
    }
}
