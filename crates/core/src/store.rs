//! The incremental campaign store and the host-level orchestrator.
//!
//! The paper's workflow is iterative — regenerate faults, re-run the
//! campaign, compare — so re-executing experiments whose inputs did
//! not change is pure waste. This module persists campaign outcomes on
//! disk, content-addressed, and puts an orchestrator on top of the
//! plan IR that only executes what the store cannot replay:
//!
//! ```text
//! state dir
//! └── store/<program_fp>-<module_fp>-<machine_fp>.jsonl
//!       {"kind":"campaign_store","format":2, ...}         header
//!       {"kind":"stored","unit":K,"anchor":A,"outcome":L} one line per unit
//! ```
//!
//! Addressing:
//!
//! * the **segment** key is (program name, module fingerprint,
//!   machine-config fingerprint) — edit one source line or change a
//!   scheduler knob and the old segment simply stops matching. The
//!   program name is part of the key so two programs (or two tenants'
//!   scoped `tenant:program` names) with byte-identical source own
//!   *separate* segments — they can never save over or prune each
//!   other. The name rides in the file name as a fingerprint; the
//!   header stores it verbatim and the loader cross-checks it, so a
//!   fingerprint collision degrades to a reported re-execution, never
//!   a silent replay of another program's outcomes;
//! * the **line** key is [`WorkUnit::store_key`] — operator, the
//!   site's *structural anchor* + ordinal ([`nfi_pylite::anchors`]),
//!   operator detail, and the experiment seed. Stable across
//!   processes and hosts, so a segment written by one worker replays
//!   in any other — and stable across *module versions* for units
//!   whose enclosing function did not change, which is what the
//!   anchor-fallback path below keys on.
//!
//! A module-fingerprint match replays the whole segment (the fast
//! path). On a fingerprint **miss** — a warm edit — the orchestrator
//! falls back to the program's previous segment (pruning keeps at most
//! one per machine config) and splits the plan by anchor: units whose
//! anchor-stable key still resolves there are **anchor hits**,
//! replayed with their enumeration index rewritten to the new plan;
//! the rest are **anchor misses** and execute. A one-line body edit
//! therefore re-executes only the units whose enclosing function
//! changed — O(diff), not O(module). Segments record a `format`
//! version; pre-anchor segments (format 1, or no `format` field)
//! degrade gracefully: their keys simply never match, so everything
//! re-executes once and the re-saved segment is format 2.
//!
//! Replayed outcome lines are re-emitted **verbatim** (the same
//! guarantee [`service::merge`] gives shard documents), so a warm
//! incremental run's merged document is byte-identical to a cold one;
//! anchor-replayed lines are re-emitted through the one canonical
//! encoder with only the index rewritten, preserving the same
//! guarantee. Corrupt store lines — truncation, garbling, editor
//! accidents — are reported as warnings and the affected units fall
//! back to re-execution; the store can never change a result, only
//! skip recomputing it.
//!
//! [`Orchestrator`] is the multi-run, multi-worker entry point behind
//! `nfi campaign run --state-dir`: plan, replay what the store covers,
//! stripe the misses across workers, merge, and write the segment
//! back. Workers exchange *encoded shard documents*, and the dispatch
//! step is pluggable ([`Orchestrator::run_spec_with`]): the default
//! uses in-process threads, while the `nfi serve` daemon passes a
//! dispatcher that spawns `nfi campaign exec --shard i/n` child
//! processes — same artifacts, same merge, byte-identical documents.
//!
//! The store has **one writer per segment at a time**: every
//! orchestrated run serializes its load → execute → save cycle behind
//! the segment's [`SegmentLocks`] entry, so the `nfi serve` scheduler
//! lanes (and a concurrent offline `campaign run` on the same state
//! dir) can execute independent programs in parallel without ever
//! interleaving on one segment.

use crate::exec::ExecConfig;
use crate::service::{self, ShardOutcome, ShardRun};
use nfi_pylite::MachineConfig;
use nfi_sfi::jsontext::{escape, get_hex_u64, get_str, get_usize, parse_flat_object, JsonValue};
use nfi_sfi::{CampaignSpec, WorkUnit};
use nfi_telemetry::{families, Span};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// The `phase_duration{phase=...}` histogram handle for one
/// orchestrator phase. The registry caches and leaks the series, so
/// the per-job cost is one mutex-guarded lookup; recording on the
/// returned handle is lock-free.
fn phase_hist(phase: &'static str) -> &'static nfi_telemetry::AtomicHistogram {
    nfi_telemetry::registry().histogram(families::PHASE, &[("phase", phase)])
}

/// A content-addressed on-disk store of campaign outcome lines.
pub struct CampaignStore {
    root: PathBuf,
}

/// The segment format this build writes: format 2 keys lines by
/// structural anchor ([`WorkUnit::store_key`]) and records each line's
/// anchor. Format-1 segments (including headerless pre-versioning
/// ones) are read but never used as an anchor-fallback source.
pub const SEGMENT_FORMAT: u32 = 2;

/// One loaded store segment: outcome lines by unit store key, plus
/// every corruption the loader tolerated (each one falls back to
/// re-execution).
#[derive(Debug, Default)]
pub struct LoadedSegment {
    /// Verbatim outcome lines, keyed by [`WorkUnit::store_key`].
    pub lines: HashMap<u64, String>,
    /// Human-readable reports of skipped/corrupt lines.
    pub errors: Vec<String>,
    /// Declared segment format (1 when the header predates
    /// versioning; 0 when there is no readable header at all).
    pub format: u32,
    /// Whether the header decoded and matched the requested address —
    /// the gate for using this segment as an anchor-fallback source.
    pub header_valid: bool,
}

impl CampaignStore {
    /// Opens (creating if needed) the store under `state_dir`.
    ///
    /// # Errors
    ///
    /// Reports an uncreatable directory.
    pub fn open(state_dir: impl AsRef<Path>) -> Result<CampaignStore, String> {
        let root = state_dir.as_ref().join("store");
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("cannot create store dir {}: {e}", root.display()))?;
        Ok(CampaignStore { root })
    }

    /// Path of the segment holding `(program, module_fp, machine_fp)`
    /// outcomes. The program travels as a fingerprint — names are
    /// tenant-scoped (`tenant:program`) and user-chosen, so they don't
    /// belong in filesystem paths verbatim.
    pub fn segment_path(&self, program: &str, module_fp: u64, machine_fp: u64) -> PathBuf {
        self.root.join(format!(
            "{:016x}-{module_fp:016x}-{machine_fp:016x}.jsonl",
            fnv1a(program.as_bytes())
        ))
    }

    /// Loads the segment for `(program, module_fp, machine_fp)`. A
    /// missing segment is simply empty; a corrupt line (truncated,
    /// garbled, mismatched program or fingerprints, duplicate key) is
    /// reported in [`LoadedSegment::errors`] and skipped, so the caller
    /// re-executes those units instead of panicking or replaying
    /// garbage.
    pub fn load(&self, program: &str, module_fp: u64, machine_fp: u64) -> LoadedSegment {
        let path = self.segment_path(program, module_fp, machine_fp);
        let mut seg = LoadedSegment::default();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return seg,
            Err(e) => {
                seg.errors
                    .push(format!("cannot read store segment {}: {e}", path.display()));
                return seg;
            }
        };
        let mut declared: Option<usize> = None;
        // Keys seen more than once are poisoned outright: conflicting
        // payloads mean neither can be trusted, and a third occurrence
        // must not sneak the key back in.
        let mut poisoned: HashSet<u64> = HashSet::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let report = |e: String| format!("{}:{}: {e}", path.display(), i + 1);
            if line.contains("\"kind\":\"campaign_store\"") {
                match Self::decode_header(line, program, module_fp, machine_fp) {
                    Ok((count, format)) => {
                        declared = Some(count);
                        seg.format = format;
                        seg.header_valid = true;
                    }
                    Err(e) => seg.errors.push(report(e)),
                }
            } else if line.contains("\"kind\":\"stored\"") {
                match Self::decode_stored(line) {
                    Ok((key, outcome)) => {
                        if poisoned.contains(&key) || seg.lines.insert(key, outcome).is_some() {
                            seg.errors
                                .push(report(format!("duplicate unit key {key:016x}")));
                            seg.lines.remove(&key);
                            poisoned.insert(key);
                        }
                    }
                    Err(e) => seg.errors.push(report(e)),
                }
            } else {
                seg.errors.push(report("unknown record kind".to_string()));
            }
        }
        match declared {
            Some(count) if count != seg.lines.len() => seg.errors.push(format!(
                "{}: header declares {count} stored lines, found {} intact (truncated?)",
                path.display(),
                seg.lines.len()
            )),
            Some(_) => {}
            None => seg.errors.push(format!(
                "{}: no campaign_store header (truncated?)",
                path.display()
            )),
        }
        seg
    }

    fn decode_header(
        line: &str,
        program: &str,
        module_fp: u64,
        machine_fp: u64,
    ) -> Result<(usize, u32), String> {
        let fields = parse_flat_object(line)?;
        if get_hex_u64(&fields, "module_fp")? != module_fp
            || get_hex_u64(&fields, "machine_fp")? != machine_fp
        {
            return Err("store header fingerprints do not match the segment name".to_string());
        }
        // The file name only carries the program's *fingerprint*; the
        // verbatim header name is the collision backstop.
        if get_str(&fields, "program")? != program {
            return Err(format!(
                "store header names program `{}`, expected `{program}` \
                 (program fingerprint collision?)",
                get_str(&fields, "program")?
            ));
        }
        // Headers written before segment versioning carry no `format`
        // field and read as format 1.
        let format = match fields.get("format") {
            Some(v) => u32::try_from(
                v.as_u64()
                    .ok_or_else(|| format!("field `format` is not an unsigned integer: {v:?}"))?,
            )
            .map_err(|_| "field `format` does not fit in u32".to_string())?,
            None => 1,
        };
        Ok((get_usize(&fields, "lines")?, format))
    }

    /// Decodes the (key, verbatim outcome line) of one stored record.
    /// The outcome payload is *not* parsed here — [`Orchestrator`]
    /// decodes it exactly once at replay time and degrades a garbled
    /// payload to re-execution there, so the warm path never parses a
    /// line twice.
    fn decode_stored(line: &str) -> Result<(u64, String), String> {
        let fields = parse_flat_object(line)?;
        Ok((get_hex_u64(&fields, "unit")?, get_str(&fields, "outcome")?))
    }

    /// The program's *previous* segment under `machine_fp` — any intact
    /// anchor-capable segment of the same program whose module
    /// fingerprint differs from `current_fp`. Pruning keeps at most one
    /// such segment per (program, machine config), so this is the
    /// anchor-fallback source for a warm edit. Answers `None` when
    /// there is none, when its header does not check out, or when it
    /// predates anchor keying (format < 2 — those keys can never match
    /// and pre-anchor replays must not be guessed at).
    pub fn previous_segment(
        &self,
        program: &str,
        current_fp: u64,
        machine_fp: u64,
    ) -> Option<(u64, LoadedSegment)> {
        let entries = std::fs::read_dir(&self.root).ok()?;
        let prefix = format!("{:016x}-", fnv1a(program.as_bytes()));
        let suffix = format!("-{machine_fp:016x}.jsonl");
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(&prefix) || !name.ends_with(&suffix) {
                continue;
            }
            let middle = &name[prefix.len()..name.len() - suffix.len()];
            let Ok(old_fp) = u64::from_str_radix(middle, 16) else {
                continue;
            };
            if old_fp == current_fp {
                continue;
            }
            let segment = self.load(program, old_fp, machine_fp);
            // `header_valid` re-checks the verbatim program name, so a
            // program-fingerprint collision can never donate lines.
            if segment.header_valid && segment.format >= SEGMENT_FORMAT {
                return Some((old_fp, segment));
            }
        }
        None
    }

    /// Per-segment detail for `nfi store inspect`: the header identity
    /// plus line and distinct-anchor counts read from the records
    /// themselves (tolerating corrupt lines — they are simply not
    /// counted). Orphans come back with their [`SegmentInfo::note`] and
    /// zero counts.
    pub fn inspect(&self) -> Vec<SegmentDetail> {
        self.segments()
            .into_iter()
            .map(|info| {
                let mut detail = SegmentDetail {
                    format: 0,
                    lines: 0,
                    anchors: std::collections::BTreeMap::new(),
                    info,
                };
                let Ok(text) = std::fs::read_to_string(&detail.info.path) else {
                    return detail;
                };
                for line in text.lines() {
                    if line.contains("\"kind\":\"campaign_store\"") {
                        if let Ok(fields) = parse_flat_object(line) {
                            detail.format = fields
                                .get("format")
                                .and_then(JsonValue::as_u64)
                                .and_then(|v| u32::try_from(v).ok())
                                .unwrap_or(1);
                        }
                    } else if line.contains("\"kind\":\"stored\"") {
                        let Ok(fields) = parse_flat_object(line) else {
                            continue;
                        };
                        detail.lines += 1;
                        // Pre-anchor lines count under anchor 0.
                        let anchor = get_hex_u64(&fields, "anchor").unwrap_or(0);
                        *detail.anchors.entry(anchor).or_insert(0) += 1;
                    }
                }
                detail
            })
            .collect()
    }

    /// Persists a complete (or partial) run of `spec` as the segment
    /// for `(spec.module_fp, machine_fp)`, replacing any previous
    /// segment atomically (write-then-rename). Segments of the same
    /// program under the same machine config but a *different* module
    /// fingerprint are pruned — they can never match again once the
    /// source changed.
    ///
    /// # Errors
    ///
    /// Reports I/O failures and outcomes that don't belong to `spec`.
    pub fn save(&self, spec: &CampaignSpec, machine_fp: u64, run: &ShardRun) -> Result<(), String> {
        let key_by_index: HashMap<usize, (u64, u64)> = spec
            .units
            .iter()
            .map(|u| (u.index, (u.store_key(), u.anchor)))
            .collect();
        let mut doc = format!(
            "{{\"kind\":\"campaign_store\",\"format\":{SEGMENT_FORMAT},\"program\":\"{}\",\"module_fp\":\"{:016x}\",\"machine_fp\":\"{:016x}\",\"lines\":{}}}\n",
            escape(&spec.program),
            spec.module_fp,
            machine_fp,
            run.outcomes.len(),
        );
        for o in &run.outcomes {
            let (key, anchor) = key_by_index
                .get(&o.index)
                .ok_or_else(|| format!("outcome index {} is not in the spec", o.index))?;
            // The anchor is advisory (replay keys on `unit` alone) but
            // makes segments inspectable: `nfi store inspect` groups
            // lines by anchor to show what a warm edit would keep.
            doc.push_str(&format!(
                "{{\"kind\":\"stored\",\"unit\":\"{key:016x}\",\"anchor\":\"{anchor:016x}\",\"outcome\":\"{}\"}}\n",
                escape(&o.line)
            ));
        }
        let path = self.segment_path(&spec.program, spec.module_fp, machine_fp);
        // The temp name is writer-unique (pid + counter): a program-
        // fingerprint collision would let two writers share a segment
        // address, and a fixed temp name would then interleave their
        // bytes. With unique temps each rename publishes one internally
        // consistent segment; last writer wins, and the loser's next
        // load reports the header mismatch and re-executes.
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "jsonl.{}-{}.tmp",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, doc).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("cannot move segment into place: {e}"))?;
        self.prune_stale(&spec.program, spec.module_fp, machine_fp);
        Ok(())
    }

    /// Lists every segment in the store with its decoded header, plus
    /// files that *should* be segments but have no readable header
    /// (crashed writes, editor accidents) as [`SegmentInfo::orphan`]s.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let ext = path.extension().and_then(|e| e.to_str());
            if ext == Some("tmp") {
                out.push(SegmentInfo::orphan(path, bytes, "leftover temp file"));
                continue;
            }
            if ext != Some("jsonl") {
                continue;
            }
            let header = std::fs::File::open(&path).ok().and_then(first_line);
            let parsed = header.as_deref().map(parse_flat_object);
            match parsed {
                Some(Ok(fields)) => match (
                    fields.get("program").and_then(JsonValue::as_str),
                    get_hex_u64(&fields, "module_fp"),
                    get_hex_u64(&fields, "machine_fp"),
                ) {
                    (Some(program), Ok(module_fp), Ok(machine_fp)) => out.push(SegmentInfo {
                        path,
                        bytes,
                        program: Some(program.to_string()),
                        module_fp: Some(module_fp),
                        machine_fp: Some(machine_fp),
                        note: None,
                    }),
                    _ => out.push(SegmentInfo::orphan(path, bytes, "incomplete store header")),
                },
                _ => out.push(SegmentInfo::orphan(path, bytes, "unreadable store header")),
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Garbage-collects the store against `live` program names: removes
    /// every segment whose header names a program outside the set, and
    /// every orphan (headerless file, leftover temp file). This is the
    /// manual companion to the automatic per-save pruning, which only
    /// ever sees programs that are still being run — segments of
    /// *deleted* programs linger until this sweeps them.
    ///
    /// With `dry_run` nothing is removed; the report lists what would
    /// go. Removal failures are reported in [`GcReport::errors`] and do
    /// not abort the sweep.
    pub fn gc(&self, live: &HashSet<&str>, dry_run: bool) -> GcReport {
        let mut report = GcReport {
            dry_run,
            ..GcReport::default()
        };
        for seg in self.segments() {
            let reason = match &seg.program {
                Some(p) if live.contains(p.as_str()) => {
                    report.kept += 1;
                    continue;
                }
                Some(p) => format!("program `{p}` is no longer present"),
                None => format!(
                    "orphan: {}",
                    seg.note.as_deref().unwrap_or("no valid store header")
                ),
            };
            if !dry_run {
                if let Err(e) = std::fs::remove_file(&seg.path) {
                    report
                        .errors
                        .push(format!("cannot remove {}: {e}", seg.path.display()));
                    continue;
                }
            }
            report.removed.push((seg, reason));
        }
        report
    }

    /// Removes segments recorded for `program` under `machine_fp` whose
    /// module fingerprint differs from `keep_fp` (the source changed;
    /// those outcomes can never be replayed again). Best-effort: prune
    /// failures are ignored — a stale segment is wasted disk, not a
    /// correctness problem.
    fn prune_stale(&self, program: &str, keep_fp: u64, machine_fp: u64) {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return;
        };
        let keep = self.segment_path(program, keep_fp, machine_fp);
        for entry in entries.flatten() {
            let path = entry.path();
            if path == keep || path.extension().is_none_or(|e| e != "jsonl") {
                continue;
            }
            let header = match std::fs::File::open(&path).map(first_line) {
                Ok(Some(line)) => line,
                _ => continue,
            };
            let Ok(fields) = parse_flat_object(&header) else {
                continue;
            };
            let same_program = fields.get("program").and_then(JsonValue::as_str) == Some(program);
            let same_machine = fields.get("machine_fp").and_then(JsonValue::as_str)
                == Some(format!("{machine_fp:016x}").as_str());
            if same_program && same_machine {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

/// fnv1a-64 over `bytes` — segment and lock-file naming.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Advisory per-(program, machine-fingerprint) segment locks.
///
/// Store writers follow load → execute → save; two writers
/// interleaving that cycle on one program's segment would double-run
/// work at best and prune each other's freshly saved segments at
/// worst. Every orchestrated run therefore holds the segment's lock
/// for the whole cycle, at two levels:
///
/// * an **in-process keyed mutex** — the concurrent scheduler lanes of
///   one `nfi serve` daemon share an orchestrator and thus this table;
/// * an **advisory `flock`ed lock file** under `<state_dir>/locks/` —
///   separate processes on the same state dir (a daemon plus
///   concurrent offline `campaign run`s) serialize here. The kernel
///   releases `flock`s when their holder dies, so a crashed or
///   SIGKILLed daemon can never wedge the store. (Two *daemons* never
///   share a state dir at all — `nfi serve` holds an exclusive
///   daemon-level lock, because the job journal and worker exchange
///   dir are single-owner resources.)
///
/// The key is (program, machine fingerprint), not the segment's full
/// (program, module fingerprint, machine fingerprint) address: saving
/// a segment also prunes the *other* module fingerprints of the same
/// program, so the program is the true write-conflict unit. The
/// in-process table keys on the verbatim name (no collisions); the
/// lock *files* key on its fnv1a fingerprint, where a collision only
/// over-serializes two unrelated programs — never corrupts.
///
/// Reads need no lock: segment replacement is write-then-rename, so a
/// reader always sees a complete old or complete new segment.
pub struct SegmentLocks {
    root: PathBuf,
    held: Mutex<HashSet<(String, u64)>>,
    released: Condvar,
}

impl SegmentLocks {
    /// The lock table rooted at `<state_dir>/locks` (created lazily on
    /// first acquire).
    pub fn open(state_dir: impl AsRef<Path>) -> SegmentLocks {
        SegmentLocks {
            root: state_dir.as_ref().join("locks"),
            held: Mutex::new(HashSet::new()),
            released: Condvar::new(),
        }
    }

    /// Blocks until this process and this machine agree the caller is
    /// the only writer of `(program, machine_fp)`, then returns the
    /// guard that holds both levels until dropped.
    ///
    /// The file level is best-effort: a filesystem without `flock`
    /// support degrades to in-process-only locking rather than
    /// failing the run (the lock is advisory either way).
    pub fn acquire(&self, program: &str, machine_fp: u64) -> SegmentGuard<'_> {
        let key = (program.to_string(), machine_fp);
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        while held.contains(&key) {
            held = self.released.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        held.insert(key.clone());
        drop(held);
        let name = fnv1a(program.as_bytes()) ^ machine_fp.rotate_left(32);
        let file = std::fs::create_dir_all(&self.root).ok().and_then(|()| {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(self.root.join(format!("{name:016x}.lock")))
                .ok()
        });
        let file = file.filter(|f| f.lock().is_ok());
        SegmentGuard {
            locks: self,
            key,
            _file: file,
        }
    }
}

/// A held segment lock ([`SegmentLocks::acquire`]); both levels release
/// on drop (the `flock` when the file handle closes).
pub struct SegmentGuard<'a> {
    locks: &'a SegmentLocks,
    key: (String, u64),
    _file: Option<std::fs::File>,
}

impl Drop for SegmentGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.locks.held.lock().unwrap_or_else(|e| e.into_inner());
        held.remove(&self.key);
        self.locks.released.notify_all();
    }
}

/// One store segment (or a file posing as one) as seen by
/// [`CampaignStore::segments`] / [`CampaignStore::gc`].
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// File path under the store root.
    pub path: PathBuf,
    /// On-disk size in bytes.
    pub bytes: u64,
    /// Program named by the header (`None` for orphans).
    pub program: Option<String>,
    /// Module fingerprint from the header (`None` for orphans).
    pub module_fp: Option<u64>,
    /// Machine fingerprint from the header (`None` for orphans).
    pub machine_fp: Option<u64>,
    /// Why this file is an orphan (`None` for intact segments).
    pub note: Option<String>,
}

impl SegmentInfo {
    fn orphan(path: PathBuf, bytes: u64, note: &str) -> SegmentInfo {
        SegmentInfo {
            path,
            bytes,
            program: None,
            module_fp: None,
            machine_fp: None,
            note: Some(note.to_string()),
        }
    }
}

/// One segment's full debugging view ([`CampaignStore::inspect`], the
/// engine of `nfi store inspect`).
#[derive(Debug, Clone)]
pub struct SegmentDetail {
    /// Header identity (same record `segments()` lists).
    pub info: SegmentInfo,
    /// Declared segment format (1 for pre-versioning headers, 0 when
    /// no header decoded at all).
    pub format: u32,
    /// Intact stored lines.
    pub lines: usize,
    /// Stored-line count per structural anchor (pre-anchor lines all
    /// group under anchor 0).
    pub anchors: std::collections::BTreeMap<u64, usize>,
}

/// What a [`CampaignStore::gc`] sweep did (or, dry-run, would do).
#[derive(Debug, Default)]
pub struct GcReport {
    /// Removed (or removable) segments with the reason each one went.
    pub removed: Vec<(SegmentInfo, String)>,
    /// Segments kept because their program is live.
    pub kept: usize,
    /// Whether this was a listing-only pass.
    pub dry_run: bool,
    /// Removal failures (sweep continued past them).
    pub errors: Vec<String>,
}

impl GcReport {
    /// Total bytes the removed segments occupied.
    pub fn bytes_removed(&self) -> u64 {
        self.removed.iter().map(|(s, _)| s.bytes).sum()
    }
}

/// Reads the first line of an open file (header sniffing for prune).
fn first_line(file: std::fs::File) -> Option<String> {
    use std::io::{BufRead, BufReader};
    let mut line = String::new();
    BufReader::new(file).read_line(&mut line).ok()?;
    let trimmed = line.trim_end_matches('\n');
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// What one incremental program run did: how much the store replayed,
/// how much had to execute, and the merged canonical document.
#[derive(Debug)]
pub struct IncrementalRun {
    /// Program name from the spec.
    pub program: String,
    /// Total units in the campaign.
    pub units: usize,
    /// Units replayed from the store — fast-path verbatim replays
    /// *plus* anchor-fallback replays (so `units - replayed - executed`
    /// stays the uncovered remainder either way).
    pub replayed: usize,
    /// Units executed this run (store misses + corrupt lines).
    pub executed: usize,
    /// Of `replayed`, how many came through the anchor fallback (a
    /// warm edit replaying the previous segment). Zero on the
    /// module-fingerprint fast path.
    pub anchor_replayed: usize,
    /// Units the anchor fallback was consulted for but could not
    /// cover (changed-function units of a warm edit). Zero when no
    /// fallback segment was consulted.
    pub anchor_missed: usize,
    /// Store corruption reports (each fell back to re-execution).
    pub store_errors: Vec<String>,
    /// The merged run — byte-identical to an unsharded cold run.
    pub run: ShardRun,
}

/// The host-level campaign orchestrator: plan → replay from the store
/// → dispatch misses to workers → collect shard documents → merge →
/// persist. See the module docs for the trust argument.
pub struct Orchestrator {
    /// The backing store.
    pub store: CampaignStore,
    /// Per-(program, machine-fp) segment locks every run holds for its
    /// load → execute → save cycle. Callers running concurrent lanes
    /// must share one orchestrator (the in-process level of the lock
    /// lives here); separate processes meet at the lock files.
    pub locks: SegmentLocks,
    /// Worker count for miss execution (in-process workers; clamped to
    /// at least 1 and at most the miss count).
    pub workers: usize,
    /// Machine configuration every experiment runs under (its
    /// fingerprint is half the segment address).
    pub machine: MachineConfig,
    /// Engine configuration *within* one worker (threads, caches).
    pub config: ExecConfig,
    /// Scheduler seed stamped on planned units.
    pub seed: u64,
    /// Whether a module-fingerprint miss may fall back to anchor
    /// replay from the program's previous segment (on by default;
    /// `--no-anchor-reuse` forces every warm edit to re-execute in
    /// full).
    pub anchor_reuse: bool,
}

impl Orchestrator {
    /// An orchestrator with sequential single-worker defaults over the
    /// store at `state_dir`.
    ///
    /// # Errors
    ///
    /// Propagates [`CampaignStore::open`] failures.
    pub fn new(state_dir: impl AsRef<Path>) -> Result<Orchestrator, String> {
        Ok(Orchestrator {
            store: CampaignStore::open(&state_dir)?,
            locks: SegmentLocks::open(&state_dir),
            workers: 1,
            machine: MachineConfig::default(),
            config: ExecConfig::sequential(),
            seed: MachineConfig::default().seed,
            anchor_reuse: true,
        })
    }

    /// Plans `source` and runs it incrementally ([`Self::run_spec`]).
    ///
    /// # Errors
    ///
    /// Reports an unparseable source or a failed execution/merge/save.
    pub fn run_program(&self, program: &str, source: &str) -> Result<IncrementalRun, String> {
        let spec = service::plan_campaign(program, source, self.seed)?;
        self.run_spec(&spec)
    }

    /// Runs one spec incrementally: units whose outcome line is in the
    /// store are replayed verbatim and re-emitted; only the rest
    /// execute, striped across the workers. The merged document is
    /// byte-identical to an unsharded cold run and is written back as
    /// the new store segment.
    ///
    /// # Errors
    ///
    /// Reports execution, merge, and store-write failures. Store
    /// *corruption* is not an error — it degrades to re-execution and
    /// is reported in [`IncrementalRun::store_errors`].
    pub fn run_spec(&self, spec: &CampaignSpec) -> Result<IncrementalRun, String> {
        self.run_spec_with(spec, |spec, missing| self.dispatch(spec, missing))
    }

    /// [`Self::run_spec`] with a caller-supplied dispatcher for the
    /// store misses: `dispatch` receives the spec and the sorted global
    /// indices of the units the store could not replay, and must return
    /// shard runs that together cover exactly those indices (each with
    /// `total` equal to the full spec's unit count).
    ///
    /// This seam is the dispatch-tier abstraction. Three dispatchers
    /// exist today: the default [`Self::run_spec`] stripes misses over
    /// in-process worker threads; `nfi-serve`'s process pool spawns
    /// `nfi campaign exec --shard i/n` children; and its worker fleet
    /// hash-shards the miss set into subset specs
    /// ([`CampaignSpec::subset`]) pulled by remote `nfi worker` nodes.
    ///
    /// # Protocol invariants
    ///
    /// * **Byte-identical merge.** Replay, merge, and segment
    ///   persistence are this function, regardless of dispatcher — so
    ///   a dispatcher that returns correct shard runs yields a document
    ///   byte-identical to an offline `campaign run`, whether the
    ///   units executed in-process, in a child, or across the network.
    /// * **No overlapping coverage.** The returned runs must cover
    ///   each missing index exactly once; [`service::merge`] refuses
    ///   duplicates. A dispatcher with at-least-once execution (the
    ///   remote fleet requeues assignments from lost workers) must
    ///   dedup results *before* returning — the fleet keeps only the
    ///   first document per assignment.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::run_spec`]; dispatcher errors propagate.
    pub fn run_spec_with(
        &self,
        spec: &CampaignSpec,
        dispatch: impl FnOnce(&CampaignSpec, &[usize]) -> Result<Vec<ShardRun>, String>,
    ) -> Result<IncrementalRun, String> {
        let machine_fp = self.machine.fingerprint();
        // Single writer per segment: the whole load → dispatch → save
        // cycle runs under the segment lock, so concurrent lanes (and
        // concurrent processes) on the same program serialize — the
        // second runner replays what the first one saved.
        let _guard = self.locks.acquire(&spec.program, machine_fp);
        let replay_span = Span::enter_with("store_replay", Some(phase_hist("store_replay")));
        let mut segment = self.store.load(&spec.program, spec.module_fp, machine_fp);
        // A clean fingerprint miss (no segment at this address, not
        // even a corrupt one) is the warm-edit case: look for the
        // program's previous segment and replay by anchor-stable key.
        let fallback = if self.anchor_reuse && segment.lines.is_empty() && segment.errors.is_empty()
        {
            let _anchor_span =
                Span::enter_with("anchor_fallback", Some(phase_hist("anchor_fallback")));
            self.store
                .previous_segment(&spec.program, spec.module_fp, machine_fp)
        } else {
            None
        };
        let mut replayed = Vec::new();
        let mut missing = HashSet::new();
        let mut anchor_replayed = 0usize;
        let mut anchor_missed = 0usize;
        for unit in &spec.units {
            if let Some((_, previous)) = &fallback {
                // Anchor-fallback replay: the unit's key is anchor-
                // stable, so an unchanged enclosing function resolves
                // in the previous segment even though statement ids,
                // lines, and the module fingerprint all shifted. Only
                // the enumeration index is version-bound — rewrite it
                // and re-render through the canonical encoder, which
                // keeps the merged document byte-identical to a cold
                // run of the edited module (the runtime outcome of an
                // untouched function is unchanged by construction).
                match previous.lines.get(&unit.store_key()) {
                    Some(line) => match ShardOutcome::decode(line) {
                        Ok(o) if o.operator == unit.operator && o.class == unit.class.key() => {
                            anchor_replayed += 1;
                            replayed.push(o.reindexed(unit.index));
                        }
                        _ => {
                            anchor_missed += 1;
                            missing.insert(unit.index);
                        }
                    },
                    None => {
                        anchor_missed += 1;
                        missing.insert(unit.index);
                    }
                }
                continue;
            }
            match segment.lines.get(&unit.store_key()) {
                Some(line) => match ShardOutcome::decode(line) {
                    // A replayed payload must still describe this unit
                    // — index, operator, and class are all cheap to
                    // cross-check, so a garbled-but-decodable payload
                    // degrades to re-execution like any other
                    // corruption instead of silently changing a result.
                    Ok(o)
                        if o.index == unit.index
                            && o.operator == unit.operator
                            && o.class == unit.class.key() =>
                    {
                        replayed.push(o)
                    }
                    Ok(o) => {
                        segment.errors.push(format!(
                            "stored outcome for unit {} describes ({}, {}, {}), expected \
                             ({}, {}, {}); re-executing",
                            unit.index,
                            o.index,
                            o.operator,
                            o.class,
                            unit.index,
                            unit.operator,
                            unit.class.key(),
                        ));
                        missing.insert(unit.index);
                    }
                    Err(e) => {
                        segment
                            .errors
                            .push(format!("unit {}: {e}; re-executing", unit.index));
                        missing.insert(unit.index);
                    }
                },
                None => {
                    missing.insert(unit.index);
                }
            }
        }
        // Corruption in the fallback segment degraded those units to
        // re-execution; surface the reports the same way fast-path
        // corruption is surfaced.
        if let Some((_, previous)) = fallback {
            segment.errors.extend(previous.errors);
        }
        drop(replay_span);
        let replayed_count = replayed.len();
        let mut runs = vec![ShardRun {
            program: spec.program.clone(),
            module_fp: spec.module_fp,
            total: spec.units.len(),
            outcomes: replayed,
        }];
        if !missing.is_empty() {
            let mut indices: Vec<usize> = missing.iter().copied().collect();
            indices.sort_unstable();
            let _execute_span = Span::enter_with("execute", Some(phase_hist("execute")));
            runs.extend(dispatch(spec, &indices)?);
        }
        let merged = {
            let _merge_span = Span::enter_with("merge", Some(phase_hist("merge")));
            service::merge(&runs)?
        };
        {
            let _persist_span = Span::enter_with("persist", Some(phase_hist("persist")));
            self.store.save(spec, machine_fp, &merged)?;
        }
        // Executed is counted from what actually came back, not from
        // what was dispatched: a supervised dispatcher (the serve
        // worker pool) may legally return *partial* coverage when a
        // unit exhausts its retries, and the saved segment is then
        // partial too. `units - replayed - executed` is exactly the
        // uncovered remainder.
        Ok(IncrementalRun {
            program: spec.program.clone(),
            units: spec.units.len(),
            replayed: replayed_count,
            executed: merged.outcomes.len().saturating_sub(replayed_count),
            anchor_replayed,
            anchor_missed,
            store_errors: segment.errors,
            run: merged,
        })
    }

    /// Read-only full replay: the merged document of `spec` rebuilt
    /// purely from the on-disk segment, or `None` unless *every* unit
    /// replays cleanly (missing segment, missing lines, or any
    /// corruption all answer `None` — the caller falls back to a
    /// normal [`Self::run_spec`], which re-executes and re-saves).
    ///
    /// This is what lets a serving daemon stream finished documents
    /// from the store instead of buffering them in memory: the
    /// replayed lines are re-emitted verbatim, so the rebuilt document
    /// is byte-identical to the one the original run produced. Takes
    /// no segment lock — segment replacement is atomic-rename, so a
    /// read sees a complete old or complete new segment.
    pub fn replay_full(&self, spec: &CampaignSpec) -> Option<String> {
        let machine_fp = self.machine.fingerprint();
        let segment = self.store.load(&spec.program, spec.module_fp, machine_fp);
        if !segment.errors.is_empty() {
            return None;
        }
        let mut replayed = Vec::with_capacity(spec.units.len());
        for unit in &spec.units {
            let line = segment.lines.get(&unit.store_key())?;
            let outcome = ShardOutcome::decode(line).ok()?;
            if outcome.index != unit.index
                || outcome.operator != unit.operator
                || outcome.class != unit.class.key()
            {
                return None;
            }
            replayed.push(outcome);
        }
        let run = ShardRun {
            program: spec.program.clone(),
            module_fp: spec.module_fp,
            total: spec.units.len(),
            outcomes: replayed,
        };
        service::merge(&[run]).ok().map(|merged| merged.encode())
    }

    /// The default dispatcher: stripes the missing unit indices
    /// round-robin across the workers and executes each stripe on its
    /// own in-process worker thread. Every worker hands back an
    /// *encoded* shard document — the same artifact the spawned
    /// `nfi campaign exec --shard` processes of `nfi serve` hand back —
    /// which the orchestrator decodes and merges, so the two worker
    /// transports are interchangeable without any data-flow change.
    fn dispatch(&self, spec: &CampaignSpec, indices: &[usize]) -> Result<Vec<ShardRun>, String> {
        let workers = self.workers.clamp(1, indices.len());
        let stripes: Vec<HashSet<usize>> = (0..workers)
            .map(|w| {
                indices
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .copied()
                    .collect::<HashSet<usize>>()
            })
            .collect();
        // Shard threads inherit the dispatching thread's trace context
        // so their spans nest under the execute phase.
        let context = nfi_telemetry::trace::current_context();
        let docs: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = stripes
                .iter()
                .map(|stripe| {
                    let context = context.clone();
                    scope.spawn(move || {
                        let _ctx = context.map(|(trace, parent)| {
                            nfi_telemetry::trace::push_context(trace, parent)
                        });
                        let _span = Span::enter("exec_shard");
                        service::exec_units(spec, &self.machine, self.config, |u: &WorkUnit| {
                            stripe.contains(&u.index)
                        })
                        .map(|run| run.encode())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| "worker panicked".to_string())?)
                .collect::<Result<Vec<String>, String>>()
        })?;
        docs.iter()
            .map(|doc| ShardRun::decode(doc).map_err(|e| format!("worker document: {e}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "\
m = lock()
total = 0
def add(v):
    global total
    m.acquire()
    total = total + v
    m.release()
    return total
def test_add():
    assert add(1) == 1
";

    fn state_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nfi-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_then_warm_run_replays_everything_byte_identically() {
        let dir = state_dir("warm");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(cold.replayed, 0);
        assert_eq!(cold.executed, cold.units);
        assert!(cold.store_errors.is_empty());
        let warm = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(warm.executed, 0, "warm run must execute no units");
        assert_eq!(warm.replayed, warm.units);
        assert_eq!(warm.run.encode(), cold.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_document_matches_the_plain_service_run() {
        let dir = state_dir("parity");
        let orch = Orchestrator::new(&dir).unwrap();
        orch.run_program("demo", SOURCE).unwrap();
        let warm = orch.run_program("demo", SOURCE).unwrap();
        let spec = service::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(warm.run.encode(), direct.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_worker_dispatch_is_byte_identical_to_single_worker() {
        let dir_a = state_dir("w1");
        let dir_b = state_dir("w4");
        let one = Orchestrator::new(&dir_a).unwrap();
        let four = Orchestrator {
            workers: 4,
            ..Orchestrator::new(&dir_b).unwrap()
        };
        let a = one.run_program("demo", SOURCE).unwrap();
        let b = four.run_program("demo", SOURCE).unwrap();
        assert_eq!(a.run.encode(), b.run.encode());
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn source_edit_invalidates_the_segment_and_prunes_the_old_one() {
        let dir = state_dir("edit");
        let orch = Orchestrator::new(&dir).unwrap();
        let first = orch.run_program("demo", SOURCE).unwrap();
        // A body edit inside `add`: its units re-execute, everything
        // outside the function anchor-replays from the old segment.
        let edited = SOURCE.replace("total + v", "total + v + 0");
        let second = orch.run_program("demo", &edited).unwrap();
        let spec = service::plan_campaign("demo", &edited, orch.seed).unwrap();
        let in_add = spec
            .units
            .iter()
            .filter(|u| u.site.function.as_deref() == Some("add"))
            .count();
        assert!(in_add > 0 && in_add < spec.units.len());
        assert_eq!(second.executed, in_add, "only add's units re-execute");
        assert_eq!(second.replayed, second.units - in_add);
        assert_eq!(second.anchor_replayed, second.replayed);
        assert_eq!(second.anchor_missed, in_add);
        // The replay-spliced document is byte-identical to a cold run
        // of the edited source.
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(second.run.encode(), direct.encode());
        let machine_fp = orch.machine.fingerprint();
        let old = orch
            .store
            .segment_path("demo", first.run.module_fp, machine_fp);
        assert!(!old.exists(), "stale segment should be pruned");
        // And the edited program is now warm on the fast path.
        let third = orch.run_program("demo", &edited).unwrap();
        assert_eq!(third.executed, 0);
        assert_eq!(third.anchor_replayed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_level_edit_reuses_function_units_with_shifted_indices() {
        let dir = state_dir("edit-top");
        let orch = Orchestrator::new(&dir).unwrap();
        orch.run_program("demo", SOURCE).unwrap();
        // Appending a top-level statement changes the shared top-level
        // anchor (those units re-execute) and shifts enumeration
        // indices, so function units replay *re-indexed*.
        let edited = format!("{SOURCE}edited_marker = 1\n");
        let second = orch.run_program("demo", &edited).unwrap();
        let spec = service::plan_campaign("demo", &edited, orch.seed).unwrap();
        let top_level = spec
            .units
            .iter()
            .filter(|u| u.site.function.is_none())
            .count();
        assert_eq!(
            second.executed, top_level,
            "only top-level units re-execute"
        );
        assert_eq!(second.anchor_replayed, second.units - top_level);
        assert!(second.anchor_replayed > 0);
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(second.run.encode(), direct.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anchor_reuse_can_be_disabled() {
        let dir = state_dir("edit-noanchor");
        let orch = Orchestrator {
            anchor_reuse: false,
            ..Orchestrator::new(&dir).unwrap()
        };
        orch.run_program("demo", SOURCE).unwrap();
        let edited = SOURCE.replace("total + v", "total + v + 0");
        let second = orch.run_program("demo", &edited).unwrap();
        assert_eq!(second.replayed, 0, "no anchor reuse: full re-execution");
        assert_eq!(second.executed, second.units);
        assert_eq!(second.anchor_replayed, 0);
        assert_eq!(second.anchor_missed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_anchor_segments_degrade_to_full_re_execution() {
        let dir = state_dir("edit-v1");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        // Downgrade the saved segment to format 1 in place: a real
        // pre-anchor segment would also carry incompatible keys, but
        // the format gate alone must already refuse the fallback.
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"format\":2,", "")).unwrap();
        let edited = SOURCE.replace("total + v", "total + v + 0");
        let second = orch.run_program("demo", &edited).unwrap();
        assert_eq!(second.anchor_replayed, 0, "format-1 segments never donate");
        assert_eq!(second.executed, second.units);
        // Never a changed byte either way.
        let spec = service::plan_campaign("demo", &edited, orch.seed).unwrap();
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(second.run.encode(), direct.encode());
        // The migrated save is format 2 and warm again.
        let third = orch.run_program("demo", &edited).unwrap();
        assert_eq!(third.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fallback_lines_degrade_to_re_execution_only() {
        let dir = state_dir("edit-corrupt");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        // Garble one stored line of the would-be fallback segment.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replace("\"outcome\"", "\"outcom\"");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let edited = SOURCE.replace("total + v", "total + v + 0");
        let second = orch.run_program("demo", &edited).unwrap();
        assert!(
            !second.store_errors.is_empty(),
            "fallback corruption must be reported"
        );
        let spec = service::plan_campaign("demo", &edited, orch.seed).unwrap();
        let direct = service::exec_spec(&spec, &orch.machine, ExecConfig::sequential()).unwrap();
        assert_eq!(second.run.encode(), direct.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_lines_are_reported_and_re_executed() {
        let dir = state_dir("corrupt");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        // Garble one stored line and truncate the tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let n = lines.len();
        lines[1] = lines[1].replace("\"kind\":\"stored\"", "\"kind\":\"stor");
        lines.truncate(n - 1);
        std::fs::write(&path, lines.join("\n")).unwrap();

        let repaired = orch.run_program("demo", SOURCE).unwrap();
        assert!(
            !repaired.store_errors.is_empty(),
            "corruption must be reported"
        );
        assert_eq!(
            repaired.executed, 2,
            "exactly the garbled and truncated units re-execute"
        );
        assert_eq!(repaired.replayed, repaired.units - 2);
        assert_eq!(
            repaired.run.encode(),
            cold.run.encode(),
            "repair must be byte-identical to the cold run"
        );
        // The repaired segment is fully warm again.
        let warm = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(warm.executed, 0);
        assert!(warm.store_errors.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decodable_payload_describing_the_wrong_plan_is_not_replayed() {
        let dir = state_dir("wrongplan");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        // Swap one payload's operator for another valid-looking key:
        // the line still parses and its index still matches, but it no
        // longer describes the unit it is filed under.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let target = lines
            .iter()
            .position(|l| l.contains("operator"))
            .expect("a stored line");
        let op_start = lines[target]
            .find("\\\"operator\\\":\\\"")
            .expect("escaped operator field")
            + "\\\"operator\\\":\\\"".len();
        let op_end = op_start + lines[target][op_start..].find('\\').unwrap();
        lines[target].replace_range(op_start..op_end, "BOGUS");
        std::fs::write(&path, lines.join("\n")).unwrap();

        let repaired = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(repaired.executed, 1, "the mismatched unit re-executes");
        assert!(repaired
            .store_errors
            .iter()
            .any(|e| e.contains("BOGUS") && e.contains("expected")));
        assert_eq!(repaired.run.encode(), cold.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_unit_keys_stay_poisoned_past_a_third_occurrence() {
        let dir = state_dir("dup");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        // Append the first stored line twice more: three occurrences of
        // one key. None of them may be replayed.
        let text = std::fs::read_to_string(&path).unwrap();
        let dup = text.lines().nth(1).unwrap().to_string();
        std::fs::write(&path, format!("{text}{dup}\n{dup}\n")).unwrap();
        let rerun = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(rerun.executed, 1, "the poisoned unit must re-execute");
        assert!(rerun
            .store_errors
            .iter()
            .any(|e| e.contains("duplicate unit key")));
        assert_eq!(rerun.run.encode(), cold.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identically_sourced_programs_own_separate_segments() {
        // The segment address includes the program name, so two
        // programs (e.g. two tenants' scoped names) with byte-identical
        // source never save over or prune each other.
        let dir = state_dir("samesource");
        let orch = Orchestrator::new(&dir).unwrap();
        let a = orch.run_program("alice:demo", SOURCE).unwrap();
        let b = orch.run_program("bob:demo", SOURCE).unwrap();
        assert_eq!(a.executed, a.units, "alice runs cold");
        assert_eq!(b.executed, b.units, "bob runs cold too — no shared segment");
        let machine_fp = orch.machine.fingerprint();
        assert_ne!(
            orch.store
                .segment_path("alice:demo", a.run.module_fp, machine_fp),
            orch.store
                .segment_path("bob:demo", b.run.module_fp, machine_fp),
        );
        // Both stay warm: neither save pruned or replaced the other.
        assert_eq!(orch.run_program("alice:demo", SOURCE).unwrap().executed, 0);
        assert_eq!(orch.run_program("bob:demo", SOURCE).unwrap().executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_segment_naming_another_program_is_rejected_not_replayed() {
        // Program-fingerprint collisions in the file name are caught by
        // the verbatim header check: the loader reports the mismatch
        // and the caller re-executes.
        let dir = state_dir("headerprog");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        let other = orch
            .store
            .segment_path("other", cold.run.module_fp, machine_fp);
        std::fs::rename(&path, &other).unwrap();
        let seg = orch.store.load("other", cold.run.module_fp, machine_fp);
        assert!(seg
            .errors
            .iter()
            .any(|e| e.contains("names program `demo`, expected `other`")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_partially_covering_dispatcher_yields_per_unit_failure_accounting() {
        // A supervised dispatcher may legally return partial coverage
        // (a poisoned unit exhausted its retries). The run still
        // finishes; executed counts what actually came back and the
        // uncovered unit re-executes on the next run.
        let dir = state_dir("partial");
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = service::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let result = orch
            .run_spec_with(&spec, |spec, missing| {
                // Cover everything except the last missing unit.
                let covered = &missing[..missing.len() - 1];
                let sub = spec.subset(covered);
                let doc = service::exec_spec(&sub, &orch.machine, ExecConfig::sequential())
                    .unwrap()
                    .encode();
                let mut run = ShardRun::decode(&doc).unwrap();
                run.total = spec.units.len();
                Ok(vec![run])
            })
            .unwrap();
        assert_eq!(result.replayed, 0);
        assert_eq!(
            result.executed,
            result.units - 1,
            "one unit stayed uncovered"
        );
        assert_eq!(result.run.outcomes.len(), result.units - 1);
        // The saved partial segment replays what it has; only the
        // uncovered unit executes on a plain follow-up run.
        let followup = orch.run_spec(&spec).unwrap();
        assert_eq!(followup.replayed, followup.units - 1);
        assert_eq!(followup.executed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_dead_programs_and_orphans_but_keeps_live_segments() {
        let dir = state_dir("gc");
        let orch = Orchestrator::new(&dir).unwrap();
        orch.run_program("alive", SOURCE).unwrap();
        // A different source, or the two programs would share one
        // (module fp, machine fp) segment address.
        let dead_source = format!("{SOURCE}dead_marker = 1\n");
        orch.run_program("dead", &dead_source).unwrap();
        // An orphan with no parseable header and a leftover temp file.
        let store_root = dir.join("store");
        std::fs::write(store_root.join("feedbeef.jsonl"), "not a header\n").unwrap();
        std::fs::write(store_root.join("feedbeef.jsonl.tmp"), "half-written").unwrap();

        let live: HashSet<&str> = ["alive"].into_iter().collect();
        let dry = orch.store.gc(&live, true);
        assert!(dry.dry_run);
        assert_eq!(
            dry.removed.len(),
            3,
            "dead + orphan + tmp: {:?}",
            dry.removed
        );
        assert_eq!(dry.kept, 1);
        assert!(dry.bytes_removed() > 0);
        // Dry run removed nothing.
        assert_eq!(orch.store.segments().len(), 4);

        let swept = orch.store.gc(&live, false);
        assert_eq!(swept.removed.len(), 3);
        assert!(swept.errors.is_empty(), "{:?}", swept.errors);
        assert!(swept
            .removed
            .iter()
            .any(|(s, reason)| s.program.as_deref() == Some("dead")
                && reason.contains("no longer present")));
        let left = orch.store.segments();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].program.as_deref(), Some("alive"));
        // The survivor still replays warm.
        let warm = orch.run_program("alive", SOURCE).unwrap();
        assert_eq!(warm.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_spec_with_accepts_an_external_dispatcher() {
        let dir = state_dir("extdispatch");
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = service::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        // A dispatcher that executes the misses through a *subset spec*
        // striped two ways — the exact artifact flow the serve daemon
        // uses with spawned `nfi campaign exec --shard i/n` children.
        let result = orch
            .run_spec_with(&spec, |spec, missing| {
                assert_eq!(missing.len(), spec.units.len(), "cold run misses all");
                assert!(missing.windows(2).all(|w| w[0] < w[1]), "sorted");
                let sub = spec.subset(missing);
                let mut runs = Vec::new();
                for index in 0..2 {
                    let config =
                        ExecConfig::sequential().sharded(nfi_sfi::Shard { index, count: 2 });
                    let doc = service::exec_spec(&sub, &orch.machine, config)
                        .unwrap()
                        .encode();
                    // Decoded from the wire document, total re-widened to
                    // the full spec as the serve worker pool does.
                    let mut run = ShardRun::decode(&doc).unwrap();
                    run.total = spec.units.len();
                    runs.push(run);
                }
                Ok(runs)
            })
            .unwrap();
        assert_eq!(result.executed, result.units);
        // Byte-identical to the plain in-process orchestrated run.
        let plain_dir = state_dir("extdispatch-plain");
        let plain = Orchestrator::new(&plain_dir).unwrap();
        let direct = plain.run_program("demo", SOURCE).unwrap();
        assert_eq!(result.run.encode(), direct.run.encode());
        // And the segment it persisted replays fully warm.
        let warm = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(warm.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&plain_dir);
    }

    #[test]
    fn segment_locks_serialize_one_key_and_admit_distinct_keys() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let dir = state_dir("locktable");
        let locks = Arc::new(SegmentLocks::open(&dir));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let locks = Arc::clone(&locks);
            let inside = Arc::clone(&inside);
            handles.push(std::thread::spawn(move || {
                for _ in 0..8 {
                    let _guard = locks.acquire("same-program", 7);
                    assert_eq!(
                        inside.fetch_add(1, Ordering::SeqCst),
                        0,
                        "two holders inside one (program, machine_fp) section"
                    );
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    inside.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        // A distinct key is admitted while `same-program` is held.
        let _held = locks.acquire("other-program", 7);
        let locks2 = Arc::clone(&locks);
        let other = std::thread::spawn(move || {
            let _guard = locks2.acquire("third-program", 7);
        });
        other.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_level_lock_serializes_separate_lock_tables() {
        // Two SegmentLocks instances share no in-process state — only
        // the flock files — which models two processes on one state
        // dir. flock conflicts are per open file description, so this
        // is testable without spawning.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let dir = state_dir("lockfile");
        let a = SegmentLocks::open(&dir);
        let b = Arc::new(SegmentLocks::open(&dir));
        let guard = a.acquire("prog", 42);
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let b = Arc::clone(&b);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                let _guard = b.acquire("prog", 42);
                assert!(
                    released.load(Ordering::SeqCst),
                    "second table acquired the segment while the first still held it"
                );
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        released.store(true, Ordering::SeqCst);
        drop(guard);
        waiter.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_lanes_same_program_execute_once_without_interleaving() {
        // The satellite invariant behind `nfi serve --lanes`: two lanes
        // racing the same program serialize on the segment lock — one
        // runs cold, the other replays everything the first saved, and
        // both documents are byte-identical.
        let dir = state_dir("lanes");
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = service::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        let (a, b) = std::thread::scope(|scope| {
            let ra = scope.spawn(|| orch.run_spec(&spec).unwrap());
            let rb = scope.spawn(|| orch.run_spec(&spec).unwrap());
            (ra.join().unwrap(), rb.join().unwrap())
        });
        assert_eq!(
            a.executed + b.executed,
            a.units,
            "exactly one lane executes; the other replays ({} + {} != {})",
            a.executed,
            b.executed,
            a.units
        );
        assert_eq!(a.run.encode(), b.run.encode());
        let plain_dir = state_dir("lanes-plain");
        let plain = Orchestrator::new(&plain_dir).unwrap();
        let direct = plain.run_program("demo", SOURCE).unwrap();
        assert_eq!(a.run.encode(), direct.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&plain_dir);
    }

    #[test]
    fn replay_full_rebuilds_the_exact_document_and_refuses_partial_segments() {
        let dir = state_dir("replayfull");
        let orch = Orchestrator::new(&dir).unwrap();
        let spec = service::plan_campaign("demo", SOURCE, orch.seed).unwrap();
        assert!(
            orch.replay_full(&spec).is_none(),
            "an empty store cannot replay"
        );
        let cold = orch.run_spec(&spec).unwrap();
        assert_eq!(
            orch.replay_full(&spec).as_deref(),
            Some(cold.run.encode().as_str()),
            "full replay must be byte-identical to the run that saved it"
        );
        // Drop one stored line: replay_full refuses rather than serving
        // a shorter document.
        let machine_fp = orch.machine.fingerprint();
        let path = orch.store.segment_path("demo", spec.module_fp, machine_fp);
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
        std::fs::write(&path, truncated.join("\n")).unwrap();
        assert!(orch.replay_full(&spec).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wholly_garbled_segment_degrades_to_a_cold_run() {
        let dir = state_dir("garbage");
        let orch = Orchestrator::new(&dir).unwrap();
        let cold = orch.run_program("demo", SOURCE).unwrap();
        let machine_fp = orch.machine.fingerprint();
        let path = orch
            .store
            .segment_path("demo", cold.run.module_fp, machine_fp);
        std::fs::write(&path, "not json at all\n\u{0}\u{1}\u{2}\n").unwrap();
        let rerun = orch.run_program("demo", SOURCE).unwrap();
        assert_eq!(rerun.executed, rerun.units);
        assert!(!rerun.store_errors.is_empty());
        assert_eq!(rerun.run.encode(), cold.run.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
