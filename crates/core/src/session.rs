//! The interactive review session — the running example's loop (§III-A).
//!
//! Each round: generate → tester reviews → if rejected, parse the NL
//! critique into intents, refine the spec, nudge the policy (online
//! REINFORCE with the rating as reward), and regenerate.

use crate::pipeline::{NeuralFaultInjector, PipelineError};
use nfi_llm::{refine_spec, GeneratedFault};
use nfi_pylite::Module;
use nfi_rlhf::{Feedback, SimulatedTester};

/// One round of the session.
#[derive(Debug, Clone)]
pub struct SessionRound {
    /// Round index (0-based).
    pub round: usize,
    /// The generated fault presented to the tester.
    pub fault: GeneratedFault,
    /// The tester's verdict.
    pub feedback: Feedback,
}

/// Result of a full session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// All rounds, in order.
    pub rounds: Vec<SessionRound>,
    /// Whether the tester accepted a generation.
    pub accepted: bool,
}

impl SessionResult {
    /// The accepted (or last) generation.
    pub fn final_fault(&self) -> Option<&GeneratedFault> {
        self.rounds.last().map(|r| &r.fault)
    }
}

/// Runs an iterative review session with a tester.
///
/// # Errors
///
/// Propagates pipeline errors ([`PipelineError`]).
pub fn run_session(
    injector: &mut NeuralFaultInjector,
    description: &str,
    module: &Module,
    tester: &SimulatedTester,
    max_rounds: usize,
) -> Result<SessionResult, PipelineError> {
    let mut spec = nfi_nlp::analyze(description, Some(module));
    let mut rounds = Vec::new();
    let mut accepted = false;

    for round in 0..max_rounds.max(1) {
        // Generate against the (possibly refined) spec.
        let cands = injector.llm().candidates(&spec, module);
        if cands.is_empty() {
            return Err(PipelineError::NoCandidates);
        }
        let fault = injector
            .llm_mut()
            .generate(&spec, module)
            .ok_or(PipelineError::NoCandidates)?;
        let feedback = tester.review(&fault);

        // Online policy update: rating recentered at 3 as the reward.
        let chosen_idx = cands
            .iter()
            .position(|c| c.pattern == fault.pattern)
            .unwrap_or(0);
        let advantage = (feedback.rating - 3.0) / 2.0;
        injector
            .llm_mut()
            .policy_mut()
            .reinforce(&cands, chosen_idx, advantage, 0.2);

        let critique = feedback.critique.clone();
        let was_accepted = feedback.accepted;
        rounds.push(SessionRound {
            round,
            fault,
            feedback,
        });
        if was_accepted {
            accepted = true;
            break;
        }
        // Refine the spec from the critique, as in the running example.
        if let Some(text) = critique {
            let intents = nfi_nlp::parse_critique(&text);
            spec = refine_spec(&spec, &intents);
        }
    }
    Ok(SessionResult { rounds, accepted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use nfi_rlhf::TargetProfile;

    const ECOMMERCE: &str = "\
def process_transaction(details):
    return True
";

    #[test]
    fn running_example_session_converges_to_retry() {
        let module = nfi_pylite::parse(ECOMMERCE).unwrap();
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 42);
        tester.noise = 0.0;
        let result = run_session(
            &mut injector,
            "Simulate a scenario where a database transaction fails due to a timeout, causing an unhandled exception within the process transaction function.",
            &module,
            &tester,
            8,
        )
        .unwrap();
        assert!(
            result.accepted,
            "session should converge: {:?}",
            result
                .rounds
                .iter()
                .map(|r| (r.fault.pattern.clone(), r.feedback.rating))
                .collect::<Vec<_>>()
        );
        let last = result.final_fault().unwrap();
        assert!(
            last.pattern.contains("retry"),
            "final pattern {} should include a retry path",
            last.pattern
        );
        assert!(last.snippet.contains("Attempting to retry transaction"));
    }

    #[test]
    fn rejected_rounds_carry_critiques() {
        let module = nfi_pylite::parse(ECOMMERCE).unwrap();
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        let mut tester = SimulatedTester::new(TargetProfile::wants_retry(), 3);
        tester.noise = 0.0;
        let result = run_session(
            &mut injector,
            "simulate a timeout with an unhandled exception in process_transaction",
            &module,
            &tester,
            6,
        )
        .unwrap();
        for round in &result.rounds {
            if !round.feedback.accepted {
                assert!(round.feedback.critique.is_some());
            }
        }
    }

    #[test]
    fn session_respects_round_budget() {
        let module = nfi_pylite::parse(ECOMMERCE).unwrap();
        let mut injector = NeuralFaultInjector::new(PipelineConfig::default());
        // A tester that can never be satisfied: wants an exception kind
        // the spec never requests.
        let profile = TargetProfile {
            wants_exception_kind: Some("PermissionError".into()),
            prefers_propagate: true,
            wants_intermittent: true,
            ..TargetProfile::default()
        };
        let mut tester = SimulatedTester::new(profile, 3);
        tester.noise = 0.0;
        let result = run_session(
            &mut injector,
            "simulate a small delay in process_transaction",
            &module,
            &tester,
            3,
        )
        .unwrap();
        assert_eq!(result.rounds.len(), 3);
        assert!(!result.accepted);
    }
}
