//! The campaign service: plan / execute / merge as separable steps.
//!
//! The paper's SFI campaigns are embarrassingly parallel at the plan
//! level; this module turns that into an operational workflow over the
//! plan IR ([`nfi_sfi::plan`]):
//!
//! ```text
//! plan    CampaignSpec  = enumerate once, serialize (JSONL)
//! exec    ShardRun      = execute any Shard of a spec anywhere
//! merge   ShardRun      = union shard runs back together
//! ```
//!
//! Two guarantees make the workflow trustworthy:
//!
//! 1. **Byte-stable documents.** A [`ShardRun`] renders outcome lines
//!    with one canonical encoder, and [`merge`] re-emits parsed lines
//!    verbatim — so the merged document of *any* partition is
//!    byte-for-byte the document of the unsharded run.
//! 2. **Associative merge.** Merging is a union keyed by global plan
//!    index (duplicates rejected), so `merge(a, merge(b, c))` equals
//!    `merge(merge(a, b), c)` equals the unsharded run.
//!
//! Execution routes through the engine ([`crate::exec`]) and therefore
//! through the content-addressed mutant/experiment caches.

use crate::exec::{self, CampaignRunReport, ExecConfig, PlanOutcome};
use nfi_sfi::jsontext::{
    escape, get_bool, get_hex_u64, get_opt_str, get_str, get_usize, parse_flat_object,
};
use nfi_sfi::{Campaign, CampaignSpec, FaultPlan};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a campaign's store misses execute — the dispatch abstraction
/// behind [`crate::store::Orchestrator::run_spec_with`]. Every tier
/// receives the same self-contained miss subset and returns shard
/// runs that [`merge`] back byte-identically, so tier selection is a
/// pure scheduling decision with no observable effect on documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchTier {
    /// Threads inside the calling process (offline `campaign run`,
    /// `--mode in-process` serving).
    LocalThreads,
    /// Supervised `nfi campaign exec` child processes on the
    /// scheduler's machine (watchdog, retry, per-unit isolation).
    LocalProcesses,
    /// Registered remote `nfi worker` nodes pulling hash-sharded
    /// assignments over HTTP (heartbeat, requeue, local fallback).
    RemoteWorkers,
}

impl DispatchTier {
    /// Stable lowercase label (log fields, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            DispatchTier::LocalThreads => "local_threads",
            DispatchTier::LocalProcesses => "local_processes",
            DispatchTier::RemoteWorkers => "remote_workers",
        }
    }
}

/// Builds the full-enumeration spec for a program source: parse, run
/// the operator registry over it, capture the plan IR.
///
/// # Errors
///
/// Reports an unparseable source.
pub fn plan_campaign(program: &str, source: &str, seed: u64) -> Result<CampaignSpec, String> {
    let _span = nfi_telemetry::Span::enter_with(
        "plan",
        Some(
            nfi_telemetry::registry()
                .histogram(nfi_telemetry::families::PHASE, &[("phase", "plan")]),
        ),
    );
    let module = nfi_pylite::parse(source).map_err(|e| format!("cannot parse {program}: {e}"))?;
    let campaign = Campaign::full(&module);
    Ok(CampaignSpec::from_campaign(program, &campaign, seed))
}

/// One executed outcome, addressable by global plan index. The
/// `line` field carries the canonical encoding — merge re-emits it
/// verbatim, which is what makes sharded output byte-identical to
/// unsharded output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Global plan index in the spec.
    pub index: usize,
    /// Canonical JSON line of this outcome.
    pub line: String,
    /// Operator mnemonic.
    pub operator: String,
    /// Fault-class key.
    pub class: String,
    /// Whether the plan still applied.
    pub applied: bool,
    /// Whether the fault had an observable effect.
    pub activated: bool,
    /// Whether the embedded suite detected it.
    pub detected: bool,
    /// Failure-mode key, when the plan applied.
    pub mode: Option<String>,
}

impl ShardOutcome {
    fn from_outcome(index: usize, o: &PlanOutcome) -> ShardOutcome {
        let mode = o.mode.as_ref().map(|m| m.key().to_string());
        let mut out = ShardOutcome {
            index,
            line: String::new(),
            operator: o.operator.to_string(),
            class: o.class.to_string(),
            applied: o.applied,
            activated: o.activated,
            detected: o.detected,
            mode,
        };
        out.line = out.render();
        out
    }

    /// The canonical encoding (what [`ShardRun::encode`] writes).
    fn render(&self) -> String {
        let mode = match &self.mode {
            Some(m) => format!("\"{}\"", escape(m)),
            None => "null".to_string(),
        };
        format!(
            "{{\"kind\":\"outcome\",\"index\":{},\"operator\":\"{}\",\"class\":\"{}\",\"applied\":{},\"activated\":{},\"detected\":{},\"mode\":{}}}",
            self.index,
            escape(&self.operator),
            escape(&self.class),
            self.applied,
            self.activated,
            self.detected,
            mode,
        )
    }

    /// The same outcome re-addressed to a new global plan index, with
    /// the canonical line re-rendered to match. This is the store's
    /// anchor-fallback replay primitive: a prior segment's outcome is
    /// valid for the current plan's unit, but enumeration indices
    /// shift across module versions, so the line must be re-emitted
    /// under the unit's current index. Because [`render`] is the one
    /// canonical encoder (executions produce lines the same way), a
    /// re-indexed replay is byte-identical to a fresh execution whose
    /// runtime outcome is unchanged.
    pub fn reindexed(mut self, index: usize) -> ShardOutcome {
        self.index = index;
        self.line = self.render();
        self
    }

    /// Decodes one canonical outcome line, keeping the line text
    /// verbatim (what the incremental store replays).
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn decode(line: &str) -> Result<ShardOutcome, String> {
        let fields = parse_flat_object(line)?;
        Ok(ShardOutcome {
            index: get_usize(&fields, "index")?,
            line: line.to_string(),
            operator: get_str(&fields, "operator")?,
            class: get_str(&fields, "class")?,
            applied: get_bool(&fields, "applied")?,
            activated: get_bool(&fields, "activated")?,
            detected: get_bool(&fields, "detected")?,
            mode: get_opt_str(&fields, "mode")?,
        })
    }
}

/// The result of executing one shard (or the whole plan, or a merge of
/// shards): outcomes keyed by global plan index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// Program name from the spec.
    pub program: String,
    /// Module fingerprint from the spec.
    pub module_fp: u64,
    /// Total units in the spec (across all shards).
    pub total: usize,
    /// Executed outcomes, sorted by global index.
    pub outcomes: Vec<ShardOutcome>,
}

impl ShardRun {
    /// Whether every unit of the spec has an outcome.
    pub fn complete(&self) -> bool {
        self.outcomes.len() == self.total
    }

    /// Aggregates the outcomes into the order-independent campaign
    /// report (string-keyed, since shard documents carry owned keys).
    pub fn report(&self) -> StringReport {
        let mut report = StringReport::default();
        for o in &self.outcomes {
            report.absorb(o);
        }
        report
    }

    /// Encodes the run as a JSONL document: header, outcome lines in
    /// index order, and — when coverage is complete — the aggregate
    /// report line.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"campaign_run\",\"program\":\"{}\",\"module_fp\":\"{:016x}\",\"total\":{},\"covered\":{}}}\n",
            escape(&self.program),
            self.module_fp,
            self.total,
            self.outcomes.len(),
        );
        for o in &self.outcomes {
            out.push_str(&o.line);
            out.push('\n');
        }
        if self.complete() {
            out.push_str(&self.report().render());
            out.push('\n');
        }
        out
    }

    /// Decodes a shard / run document.
    ///
    /// # Errors
    ///
    /// Reports the first undecodable line, a missing header, or a
    /// coverage-count mismatch.
    pub fn decode(text: &str) -> Result<ShardRun, String> {
        let mut run: Option<ShardRun> = None;
        let mut covered = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |e: String| format!("line {}: {e}", i + 1);
            if line.contains("\"kind\":\"campaign_run\"") {
                if run.is_some() {
                    return Err(format!(
                        "line {}: second campaign_run header (concatenated documents? \
                         merge shard files with `nfi campaign merge`, not `cat`)",
                        i + 1
                    ));
                }
                let fields = parse_flat_object(line).map_err(err)?;
                run = Some(ShardRun {
                    program: get_str(&fields, "program").map_err(err)?,
                    module_fp: get_hex_u64(&fields, "module_fp").map_err(err)?,
                    total: get_usize(&fields, "total").map_err(err)?,
                    outcomes: Vec::new(),
                });
                covered = get_usize(&fields, "covered").map_err(err)?;
            } else if line.contains("\"kind\":\"outcome\"") {
                let outcome = ShardOutcome::decode(line).map_err(err)?;
                run.as_mut()
                    .ok_or_else(|| format!("line {}: outcome before header", i + 1))?
                    .outcomes
                    .push(outcome);
            } else if line.contains("\"kind\":\"report\"") {
                // The aggregate is derived data; merge recomputes it.
                continue;
            } else {
                return Err(format!("line {}: unknown record kind", i + 1));
            }
        }
        let run = run.ok_or("no campaign_run header found")?;
        if run.outcomes.len() != covered {
            return Err(format!(
                "header declares {covered} outcomes, found {}",
                run.outcomes.len()
            ));
        }
        Ok(run)
    }
}

/// Executes one shard of a spec on the engine.
///
/// The spec is self-contained: its source is re-parsed here and
/// validated against the recorded module fingerprint, then every
/// covered unit resolves through the operator registry and executes
/// under its own scheduler seed.
///
/// # Errors
///
/// Reports an unparseable source, a fingerprint mismatch (the plan was
/// generated from different code), or an unresolvable operator key.
pub fn exec_spec(
    spec: &CampaignSpec,
    machine: &nfi_pylite::MachineConfig,
    config: ExecConfig,
) -> Result<ShardRun, String> {
    exec_units(spec, machine, config, |_| true)
}

/// [`exec_spec`] restricted to units `accept` selects (on top of
/// `config.shard`'s stride) — the orchestrator's entry point for
/// executing exactly the units the incremental store could not replay,
/// which are rarely a contiguous or strided slice.
///
/// # Errors
///
/// Same contract as [`exec_spec`].
pub fn exec_units(
    spec: &CampaignSpec,
    machine: &nfi_pylite::MachineConfig,
    config: ExecConfig,
    accept: impl Fn(&nfi_sfi::WorkUnit) -> bool,
) -> Result<ShardRun, String> {
    let module = nfi_pylite::parse(&spec.source)
        .map_err(|e| format!("cannot parse plan source for {}: {e}", spec.program))?;
    let module_fp = nfi_pylite::fingerprint(&module);
    if module_fp != spec.module_fp {
        return Err(format!(
            "plan fingerprint mismatch for {}: plan {:016x}, source {:016x}",
            spec.program, spec.module_fp, module_fp
        ));
    }
    let module = Arc::new(module);
    let worklist: Vec<&nfi_sfi::WorkUnit> = spec
        .units
        .iter()
        .filter(|u| config.shard.covers(u.index) && accept(u))
        .collect();
    let plans: Vec<(usize, FaultPlan, u64)> = worklist
        .iter()
        .map(|u| {
            u.to_plan()
                .map(|p| (u.index, p, u.seed))
                .ok_or_else(|| format!("unknown operator `{}` in unit {}", u.operator, u.index))
        })
        .collect::<Result<_, String>>()?;
    let outcomes = exec::par_map(config, &plans, |(index, plan, seed)| {
        let unit_machine = nfi_pylite::MachineConfig {
            seed: *seed,
            ..machine.clone()
        };
        let outcome = exec::execute_plan(&module, module_fp, plan, &unit_machine, config.use_cache);
        ShardOutcome::from_outcome(*index, &outcome)
    });
    Ok(ShardRun {
        program: spec.program.clone(),
        module_fp,
        total: spec.units.len(),
        outcomes,
    })
}

/// Merges shard runs into one: a union keyed by global plan index.
/// Associative and commutative by construction — inputs may be raw
/// shards, partial merges, or any mix, in any order.
///
/// # Protocol invariants
///
/// This is the byte-parity chokepoint every dispatch tier (threads,
/// spawned `nfi campaign exec` children, remote `nfi worker` nodes)
/// funnels through:
///
/// * **Byte-identical merge.** Outcome `line`s are re-emitted
///   verbatim and ordered by global index, so the merged document is
///   byte-for-byte the unsharded run's document no matter how the
///   work was partitioned, which machine executed each part, or in
///   what order results arrived.
/// * **No overlap tolerated.** A plan index covered by two inputs is
///   an error, never a silent pick — so callers with at-least-once
///   execution semantics (the remote-worker fleet, worker retries)
///   must deduplicate *before* merging. The fleet does this by
///   keeping only the first result per assignment; the store does it
///   by replaying each store key from exactly one segment line.
///
/// # Errors
///
/// Rejects empty input, mismatched programs/fingerprints/totals, and
/// duplicate coverage of a plan index.
pub fn merge(runs: &[ShardRun]) -> Result<ShardRun, String> {
    let first = runs.first().ok_or("nothing to merge")?;
    let mut by_index: BTreeMap<usize, ShardOutcome> = BTreeMap::new();
    for run in runs {
        if run.program != first.program {
            return Err(format!(
                "cannot merge runs of different programs: `{}` vs `{}`",
                first.program, run.program
            ));
        }
        if run.module_fp != first.module_fp || run.total != first.total {
            return Err(format!(
                "cannot merge runs of different plans for `{}`",
                run.program
            ));
        }
        for o in &run.outcomes {
            if o.index >= run.total {
                return Err(format!("outcome index {} out of range", o.index));
            }
            if let Some(prev) = by_index.insert(o.index, o.clone()) {
                return Err(format!(
                    "plan index {} covered twice (shards overlap)",
                    prev.index
                ));
            }
        }
    }
    Ok(ShardRun {
        program: first.program.clone(),
        module_fp: first.module_fp,
        total: first.total,
        outcomes: by_index.into_values().collect(),
    })
}

/// String-keyed mirror of [`CampaignRunReport`] for decoded shard
/// documents (whose operator/class keys are owned strings, not
/// `&'static str`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringReport {
    /// Plans executed.
    pub total: usize,
    /// Plans that still applied.
    pub applied: usize,
    /// Applied plans with observable effect.
    pub activated: usize,
    /// Applied plans the suite detected.
    pub detected: usize,
    /// Applied plans per fault-class key.
    pub per_class: BTreeMap<String, usize>,
    /// Applied plans per operator mnemonic.
    pub per_operator: BTreeMap<String, usize>,
    /// Failure-mode frequency (by mode key).
    pub modes: BTreeMap<String, usize>,
}

impl StringReport {
    fn absorb(&mut self, o: &ShardOutcome) {
        self.total += 1;
        if !o.applied {
            return;
        }
        self.applied += 1;
        if o.activated {
            self.activated += 1;
        }
        if o.detected {
            self.detected += 1;
        }
        *self.per_class.entry(o.class.clone()).or_insert(0) += 1;
        *self.per_operator.entry(o.operator.clone()).or_insert(0) += 1;
        if let Some(mode) = &o.mode {
            *self.modes.entry(mode.clone()).or_insert(0) += 1;
        }
    }

    /// Renders the aggregate as the final report line of a complete
    /// run document.
    fn render(&self) -> String {
        let map = |m: &BTreeMap<String, usize>| {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                .collect();
            format!("{{{}}}", inner.join(","))
        };
        format!(
            "{{\"kind\":\"report\",\"total\":{},\"applied\":{},\"activated\":{},\"detected\":{},\"per_class\":{},\"per_operator\":{},\"modes\":{}}}",
            self.total,
            self.applied,
            self.activated,
            self.detected,
            map(&self.per_class),
            map(&self.per_operator),
            map(&self.modes),
        )
    }

    /// Whether this aggregate equals an engine-side report (used by
    /// tests to tie the service back to [`exec::run_campaign`]).
    pub fn matches(&self, report: &CampaignRunReport) -> bool {
        self.total == report.total
            && self.applied == report.applied
            && self.activated == report.activated
            && self.detected == report.detected
            && self
                .per_class
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .eq(report.per_class.iter().map(|(k, v)| (*k, *v)))
            && self
                .per_operator
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .eq(report.per_operator.iter().map(|(k, v)| (*k, *v)))
            && self
                .modes
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .eq(report.modes.iter().map(|(k, v)| (k.as_str(), *v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfi_pylite::MachineConfig;
    use nfi_sfi::Shard;

    const SOURCE: &str = "\
m = lock()
total = 0
def add(v):
    global total
    m.acquire()
    total = total + v
    m.release()
    return total
def test_add():
    assert add(1) == 1
";

    fn spec() -> CampaignSpec {
        plan_campaign("demo", SOURCE, 7).unwrap()
    }

    fn machine() -> MachineConfig {
        MachineConfig {
            step_budget: 200_000,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn unsharded_exec_covers_every_unit() {
        let s = spec();
        let run = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        assert!(run.complete());
        assert_eq!(run.outcomes.len(), s.units.len());
        assert!(run.report().applied > 0);
    }

    #[test]
    fn two_way_shard_merge_is_byte_identical_to_unsharded() {
        let s = spec();
        let full = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        let shard = |i: usize, n: usize| {
            exec_spec(
                &s,
                &machine(),
                ExecConfig::sequential().sharded(Shard { index: i, count: n }),
            )
            .unwrap()
        };
        let merged = merge(&[shard(0, 2), shard(1, 2)]).unwrap();
        assert_eq!(merged.encode(), full.encode());
    }

    #[test]
    fn merge_is_associative_over_three_shards() {
        let s = spec();
        let full = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        let shard = |i: usize| {
            exec_spec(
                &s,
                &machine(),
                ExecConfig::sequential().sharded(Shard { index: i, count: 3 }),
            )
            .unwrap()
        };
        let (a, b, c) = (shard(0), shard(1), shard(2));
        let left = merge(&[merge(&[a.clone(), b.clone()]).unwrap(), c.clone()]).unwrap();
        let right = merge(&[a.clone(), merge(&[b.clone(), c.clone()]).unwrap()]).unwrap();
        assert_eq!(left.encode(), right.encode());
        assert_eq!(left.encode(), full.encode());
    }

    #[test]
    fn run_documents_roundtrip_and_survive_merge_of_decoded_shards() {
        let s = spec();
        let full = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        let roundtrip = ShardRun::decode(&full.encode()).unwrap();
        assert_eq!(roundtrip.encode(), full.encode());
        let shard = |i: usize| {
            exec_spec(
                &s,
                &machine(),
                ExecConfig::sequential().sharded(Shard { index: i, count: 2 }),
            )
            .unwrap()
        };
        let decoded: Vec<ShardRun> = [shard(0), shard(1)]
            .iter()
            .map(|r| ShardRun::decode(&r.encode()).unwrap())
            .collect();
        assert_eq!(merge(&decoded).unwrap().encode(), full.encode());
    }

    #[test]
    fn merge_rejects_overlap_and_mismatch() {
        let s = spec();
        let full = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        assert!(merge(&[]).is_err());
        let overlap = merge(&[full.clone(), full.clone()]);
        assert!(overlap.unwrap_err().contains("covered twice"));
        let other = plan_campaign("other", "x = 1\n", 0).unwrap();
        let other_run = exec_spec(&other, &machine(), ExecConfig::sequential()).unwrap();
        assert!(merge(&[full, other_run]).is_err());
    }

    #[test]
    fn decode_rejects_concatenated_documents() {
        let s = spec();
        let shard = exec_shard_doc(&s, 0);
        let other = exec_shard_doc(&s, 1);
        let cat = format!("{shard}{other}");
        let err = ShardRun::decode(&cat).unwrap_err();
        assert!(err.contains("second campaign_run header"), "{err}");
    }

    fn exec_shard_doc(s: &CampaignSpec, index: usize) -> String {
        exec_spec(
            s,
            &machine(),
            ExecConfig::sequential().sharded(Shard { index, count: 2 }),
        )
        .unwrap()
        .encode()
    }

    #[test]
    fn exec_rejects_fingerprint_mismatch() {
        let mut s = spec();
        s.module_fp ^= 1;
        let err = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn service_report_matches_engine_report() {
        let s = spec();
        let run = exec_spec(&s, &machine(), ExecConfig::sequential()).unwrap();
        let module = nfi_pylite::parse(SOURCE).unwrap();
        let campaign = Campaign::full(&module);
        let engine = exec::run_campaign(
            &campaign,
            &MachineConfig {
                seed: 7,
                ..machine()
            },
            ExecConfig::sequential(),
        );
        assert!(run.report().matches(&engine.report));
    }
}
